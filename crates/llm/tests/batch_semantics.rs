//! `complete_batch` partial-failure semantics, through every layer
//! that batches: the trait-level default, [`FaultyLlm`]'s injector, and
//! the [`BatchedLlm`] service's ticket protocol.
//!
//! The contract under test: a failed prompt fails *its own* slot and
//! nothing else. Sibling prompts in the same batch get exactly the
//! completions a failure-free run would have delivered, and the
//! accounting ([`Usage`]) reflects only the completions that actually
//! arrived — a batch with failures in it never books phantom calls.

use uvllm_llm::{
    AgentRole, BatchConfig, BatchedLlm, FaultPlan, FaultyLlm, LlmError, LlmService, RepairPrompt,
    ScriptedLlm, Usage,
};

fn prompt(tag: &str) -> RepairPrompt {
    RepairPrompt::new(
        AgentRole::SyntaxFixer,
        format!("spec {tag}"),
        format!("module {tag}; endmodule"),
    )
}

fn scripts(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{{\"module name\": \"m{i}\", \"analysis\": \"a\"}}")).collect()
}

/// Trait-level default batch: an exhausted scripted backend answers the
/// prefix it has scripts for and fails the tail, slot by slot.
#[test]
fn batch_failures_land_in_their_own_slots() {
    use uvllm_llm::LanguageModel;
    let mut model = ScriptedLlm::new(scripts(2));
    let prompts: Vec<RepairPrompt> = ["a", "b", "c", "d"].iter().map(|t| prompt(t)).collect();
    let results = model.complete_batch(&prompts);
    assert_eq!(results.len(), 4, "one result per prompt, failures included");
    assert!(results[0].is_ok() && results[1].is_ok());
    for failed in &results[2..] {
        assert!(
            matches!(failed, Err(LlmError::NoResponse(_))),
            "exhausted slots fail as NoResponse: {failed:?}"
        );
    }
    // Accounting counts the two delivered completions, nothing else.
    assert_eq!(model.usage().calls, 2);
    let delivered: u64 =
        results.iter().flatten().map(|c| c.prompt_tokens + c.completion_tokens).sum();
    assert_eq!(model.usage().prompt_tokens + model.usage().completion_tokens, delivered);
}

/// Injected faults error their own slot; sibling slots receive the
/// fault-free completions in script order (the injector fabricates
/// faults without consuming the inner model's stream).
#[test]
fn injected_batch_faults_do_not_shift_sibling_answers() {
    use uvllm_llm::LanguageModel;
    let plan = FaultPlan { error_rate: 0.4, ..FaultPlan::default() };
    let mut model = FaultyLlm::new(ScriptedLlm::new(scripts(8)), plan);
    let prompts: Vec<RepairPrompt> = (0..8).map(|i| prompt(&format!("p{i}"))).collect();
    let results = model.complete_batch(&prompts);
    let errors = results.iter().filter(|r| r.is_err()).count();
    assert!(errors > 0 && errors < 8, "0.4 over 8 draws must fault some but not all: {errors}");
    // The k-th delivered completion is the k-th script — faulted
    // siblings did not consume (or shift) the inner stream.
    let delivered: Vec<&str> = results.iter().flatten().map(|c| c.content.as_str()).collect();
    let expected = scripts(8);
    for (k, content) in delivered.iter().enumerate() {
        assert_eq!(*content, expected[k], "delivered completion #{k} shifted");
    }
    assert_eq!(model.inner().remaining(), 8 - delivered.len(), "faults never drain the script");
    assert_eq!(model.usage().calls, delivered.len() as u64);
}

/// The batched service routes per-slot failures to the right tickets
/// and books usage only for delivered completions: a 4-ticket flush
/// with 2 failures accounts exactly like a 2-ticket failure-free run.
#[test]
fn service_tickets_isolate_batch_failures() {
    let service = BatchedLlm::start(BatchConfig { max_batch: 4, ..BatchConfig::default() });
    let mut client = service.client(ScriptedLlm::new(scripts(2)));
    let tickets: Vec<_> = ["a", "b", "c", "d"].iter().map(|t| client.submit(&prompt(t))).collect();
    let mut outcomes = Vec::new();
    for ticket in tickets {
        outcomes.push(client.await_completion(ticket));
    }
    assert!(outcomes[0].is_ok() && outcomes[1].is_ok(), "scripted slots answer");
    assert!(
        matches!(&outcomes[2], Err(LlmError::NoResponse(_)))
            && matches!(&outcomes[3], Err(LlmError::NoResponse(_))),
        "exhausted slots fail their own tickets: {outcomes:?}"
    );
    let mixed_usage = client.usage();

    // Reference: the same two surviving prompts, no failures.
    let mut reference = service.client(ScriptedLlm::new(scripts(2)));
    let tickets: Vec<_> = ["a", "b"].iter().map(|t| reference.submit(&prompt(t))).collect();
    for ticket in tickets {
        reference.await_completion(ticket).expect("failure-free run");
    }
    assert_eq!(mixed_usage, reference.usage(), "failed siblings must not perturb accounting");
    assert_ne!(mixed_usage, Usage::default(), "the comparison is not vacuous");
}
