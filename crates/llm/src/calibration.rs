//! Calibration tables for the oracle backend.
//!
//! The probabilities below are the per-call success rates of the
//! simulated GPT-4-turbo, chosen so that the *pipeline-level* fix rates
//! reproduce the shape of the paper's evaluation (Figures 5–7,
//! Tables II–III); see EXPERIMENTS.md for the measured outcomes. They
//! encode two robust qualitative findings from the LLM-debugging
//! literature that the paper leans on:
//!
//! 1. richer error context → higher fix rate (lint log < raw sim log <
//!    mismatch signals < suspicious lines), and
//! 2. syntax errors are substantially easier than functional ones.

use crate::prompt::ErrorInfo;
use uvllm_errgen::ErrorKind;

/// The information mode the pipeline supplied to the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InfoMode {
    /// Specification and code only (GPT-direct baseline).
    SpecOnly,
    /// Linter log (pre-processing stage).
    Lint,
    /// Raw simulation log (MEIC-style iteration).
    RawLog,
    /// Extracted mismatch signals with IO values (MS mode).
    Ms,
    /// Mismatch signals plus dynamic-slice suspicious lines (SL mode).
    Sl,
}

impl InfoMode {
    /// Classifies a prompt's error-info section.
    pub fn of(info: &ErrorInfo) -> InfoMode {
        match info {
            ErrorInfo::None => InfoMode::SpecOnly,
            ErrorInfo::LintLog(_) => InfoMode::Lint,
            ErrorInfo::RawLog(_) => InfoMode::RawLog,
            ErrorInfo::MismatchSignals(_) => InfoMode::Ms,
            ErrorInfo::SuspiciousLines { .. } => InfoMode::Sl,
        }
    }
}

/// A named per-call success-probability profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelProfile {
    /// GPT-4-turbo driven by UVLLM's segmented information extraction.
    Gpt4Turbo,
    /// The same model behind a weaker harness (MEIC / direct prompting):
    /// identical pair, but it only ever sees low-density information.
    Gpt4TurboWeakHarness,
}

impl ModelProfile {
    /// Per-call probability that the model emits the *true* fix for an
    /// error of `kind` given `mode` information.
    pub fn success_prob(&self, kind: ErrorKind, mode: InfoMode) -> f64 {
        let base = base_prob(kind, mode);
        match self {
            ModelProfile::Gpt4Turbo => base,
            // The weak harness does not change the model, only the
            // information it receives; the mode already captures that.
            ModelProfile::Gpt4TurboWeakHarness => base,
        }
    }

    /// Multiplier applied in complete-code output mode (Table III):
    /// regeneration is slightly less reliable for localized errors but
    /// handles context-dependent ones (missing port definitions) better.
    pub fn complete_mode_factor(&self, kind: ErrorKind) -> f64 {
        match kind {
            // Whole-file regeneration shines on structural omissions.
            ErrorKind::MissingEnd | ErrorKind::UnbalancedBlock => 1.05,
            _ => 0.78,
        }
    }

    /// Extra multiplier when the suspicious-line slice actually contains
    /// the faulty line (information quality bonus).
    pub fn sl_hit_factor(&self) -> f64 {
        1.5
    }
}

fn base_prob(kind: ErrorKind, mode: InfoMode) -> f64 {
    use ErrorKind::*;
    use InfoMode::*;
    match (kind, mode) {
        // ---- syntax errors -------------------------------------------
        // Lint logs carry exact line/column; LLMs repair these well.
        (MissingSemicolon, Lint) => 0.62,
        (MissingEnd, Lint) => 0.42,
        (UnbalancedBlock, Lint) => 0.38,
        (OperatorTypo, Lint) => 0.55,
        (KeywordTypo, Lint) => 0.60,
        (MalformedLiteral, Lint) => 0.50,
        // Raw compiler output without extraction (MEIC-style).
        (MissingSemicolon, RawLog) => 0.44,
        (MissingEnd, RawLog) => 0.26,
        (UnbalancedBlock, RawLog) => 0.22,
        (OperatorTypo, RawLog) => 0.37,
        (KeywordTypo, RawLog) => 0.42,
        (MalformedLiteral, RawLog) => 0.32,
        // Spec+code only: the model must spot the break unaided.
        (k, SpecOnly) if k.is_syntax() => 0.30,
        // Syntax errors surfacing in MS/SL mode (post-repair breakage)
        // still come with a lint log attached.
        (k, Ms | Sl) if k.is_syntax() => 0.45,

        // ---- functional errors ---------------------------------------
        // Declaration type misuse is visible to the linter.
        (DeclTypeMisuse, Lint) => 0.55,
        (DeclTypeMisuse, Ms) => 0.40,
        (DeclTypeMisuse, Sl) => 0.48,
        (BitwidthMisuse, Ms) => 0.34,
        (BitwidthMisuse, Sl) => 0.44,
        (OperatorMisuse, Ms) => 0.38,
        (OperatorMisuse, Sl) => 0.48,
        (VariableMisuse, Ms) => 0.30,
        (VariableMisuse, Sl) => 0.42,
        (ValueMisuse, Ms) => 0.38,
        (ValueMisuse, Sl) => 0.46,
        (WrongJudgment, Ms) => 0.30,
        (WrongJudgment, Sl) => 0.40,
        (WrongSensitivity, Ms) => 0.26,
        (WrongSensitivity, Sl) => 0.34,
        (WrongSensitivity, Lint) => 0.45,
        (PortMismatch, Ms) => 0.24,
        (PortMismatch, Sl) => 0.34,
        // Functional errors with thin information.
        (_, RawLog) => 0.20,
        (_, SpecOnly) => 0.11,
        (_, Lint) => 0.12,
        // Unreachable fallthrough (all Ms/Sl functional cases listed).
        (_, Ms) => 0.25,
        (_, Sl) => 0.32,
    }
}

/// Probability that an instance of `kind` is *out of distribution* for
/// the model when given rich, extracted information (lint logs, mismatch
/// signals, suspicious lines). Retrying a hard instance barely helps —
/// real LLM failures are strongly correlated across attempts — so these
/// asymptotes, not the per-call probabilities, set the final fix rates.
pub fn hardness_rich(kind: ErrorKind) -> f64 {
    use ErrorKind::*;
    match kind {
        MissingSemicolon => 0.04,
        KeywordTypo => 0.07,
        OperatorTypo => 0.12,
        MalformedLiteral => 0.12,
        MissingEnd => 0.17,
        UnbalancedBlock => 0.22,
        DeclTypeMisuse => 0.14,
        OperatorMisuse => 0.18,
        ValueMisuse => 0.20,
        BitwidthMisuse => 0.25,
        WrongJudgment => 0.26,
        VariableMisuse => 0.28,
        WrongSensitivity => 0.31,
        PortMismatch => 0.33,
    }
}

/// Hardness under low-density information (raw logs / spec only): a
/// superset of the rich-information hard set.
pub fn hardness_poor(kind: ErrorKind) -> f64 {
    let rich = hardness_rich(kind);
    if kind.is_syntax() {
        (rich * 1.6 + 0.12).min(0.95)
    } else {
        (rich * 1.0 + 0.18).min(0.95)
    }
}

/// Extra hardness for larger designs (long code dilutes attention); the
/// paper's Fig. 7 shows exactly this module-complexity effect.
pub fn complexity_bonus(source_len: usize) -> f64 {
    ((source_len as f64 - 400.0) / 6000.0).clamp(0.0, 0.22)
}

/// How a failed attempt manifests (drawn by the oracle on failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Patches an unrelated line, potentially damaging the design —
    /// exercises the rollback mechanism.
    WrongSite,
    /// Edits the right line but with a wrong value — the classic
    /// overfit-shaped failure that weak testbenches may accept.
    OverfitPerturb,
    /// Emits a pair whose `original` does not occur in the code
    /// (hallucinated context); the patch fails to apply.
    Unmatchable,
    /// Emits a patch that breaks the syntax; the pre-processor must
    /// recover on the next iteration.
    SyntaxBreak,
}

impl FailureMode {
    /// Cumulative-weight table used by the oracle's draw.
    pub const WEIGHTED: [(FailureMode, f64); 4] = [
        (FailureMode::WrongSite, 0.35),
        (FailureMode::OverfitPerturb, 0.30),
        (FailureMode::Unmatchable, 0.20),
        (FailureMode::SyntaxBreak, 0.15),
    ];

    /// Draws a failure mode from a uniform sample in `[0, 1)`.
    pub fn draw(u: f64) -> FailureMode {
        let mut acc = 0.0;
        for (mode, w) in Self::WEIGHTED {
            acc += w;
            if u < acc {
                return mode;
            }
        }
        FailureMode::SyntaxBreak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn information_quality_ordering_holds() {
        // For functional kinds: SpecOnly <= RawLog <= Ms <= Sl.
        for kind in ErrorKind::functional_kinds() {
            let p = ModelProfile::Gpt4Turbo;
            let spec = p.success_prob(kind, InfoMode::SpecOnly);
            let raw = p.success_prob(kind, InfoMode::RawLog);
            let ms = p.success_prob(kind, InfoMode::Ms);
            let sl = p.success_prob(kind, InfoMode::Sl);
            assert!(spec <= raw + 1e-9, "{kind}");
            assert!(raw <= ms + 1e-9, "{kind}");
            assert!(ms <= sl + 1e-9, "{kind}");
        }
    }

    #[test]
    fn syntax_easier_than_functional() {
        let p = ModelProfile::Gpt4Turbo;
        let avg = |kinds: Vec<ErrorKind>, mode: InfoMode| {
            kinds.iter().map(|k| p.success_prob(*k, mode)).sum::<f64>() / kinds.len() as f64
        };
        let syn = avg(ErrorKind::syntax_kinds(), InfoMode::Lint);
        let func = avg(ErrorKind::functional_kinds(), InfoMode::Ms);
        assert!(syn > func);
    }

    #[test]
    fn probabilities_are_valid() {
        for kind in ErrorKind::ALL {
            for mode in
                [InfoMode::SpecOnly, InfoMode::Lint, InfoMode::RawLog, InfoMode::Ms, InfoMode::Sl]
            {
                let p = ModelProfile::Gpt4Turbo.success_prob(kind, mode);
                assert!((0.0..=1.0).contains(&p), "{kind} {mode:?}: {p}");
            }
        }
    }

    #[test]
    fn failure_mode_draw_covers_space() {
        assert_eq!(FailureMode::draw(0.0), FailureMode::WrongSite);
        assert_eq!(FailureMode::draw(0.34), FailureMode::WrongSite);
        assert_eq!(FailureMode::draw(0.5), FailureMode::OverfitPerturb);
        assert_eq!(FailureMode::draw(0.75), FailureMode::Unmatchable);
        assert_eq!(FailureMode::draw(0.99), FailureMode::SyntaxBreak);
    }

    #[test]
    fn info_mode_classification() {
        assert_eq!(InfoMode::of(&ErrorInfo::None), InfoMode::SpecOnly);
        assert_eq!(InfoMode::of(&ErrorInfo::LintLog(String::new())), InfoMode::Lint);
        assert_eq!(
            InfoMode::of(&ErrorInfo::SuspiciousLines { signals: vec![], lines: vec![] }),
            InfoMode::Sl
        );
    }

    #[test]
    fn complete_mode_factor_shape() {
        let p = ModelProfile::Gpt4Turbo;
        assert!(p.complete_mode_factor(ErrorKind::ValueMisuse) < 1.0);
        assert!(p.complete_mode_factor(ErrorKind::MissingEnd) > 1.0);
    }
}
