//! The calibrated oracle backend: an offline digital twin of
//! GPT-4-turbo.
//!
//! The oracle holds the [`GroundTruth`] of the injected error (which the
//! *pipeline* never sees — only the harness constructs oracles) and
//! succeeds stochastically with probabilities from
//! [`crate::calibration`]. On success it emits the true fix in the
//! structured format of Fig. 4; on failure it emits one of four
//! realistic wrong answers (wrong-site patch, overfit perturbation,
//! hallucinated context, syntax-breaking patch), which is what gives the
//! rollback / damage-repair machinery real work to do.

use crate::calibration::{FailureMode, InfoMode, ModelProfile};
use crate::model::{count_tokens, Completion, LanguageModel, LatencyModel, LlmError, Usage};
use crate::prompt::{ErrorInfo, OutputMode, RepairPair, RepairPrompt};
use crate::response::{CompleteResponse, RepairResponse};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uvllm_errgen::GroundTruth;

/// Calibrated stochastic repair oracle (see module docs).
pub struct OracleLlm {
    ground_truth: GroundTruth,
    /// The pristine pre-mutation source (used for complete-code mode).
    correct_src: String,
    profile: ModelProfile,
    latency: LatencyModel,
    rng: StdRng,
    usage: Usage,
    /// Per-instance difficulty draw in `[0, 1)`: below the hardness
    /// threshold of the information mode, the instance is effectively
    /// out of distribution for the model (failures correlate across
    /// retries; see [`crate::calibration::hardness_rich`]).
    difficulty: f64,
}

impl std::fmt::Debug for OracleLlm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleLlm")
            .field("kind", &self.ground_truth.kind)
            .field("profile", &self.profile)
            .finish()
    }
}

impl OracleLlm {
    /// Creates an oracle for one benchmark instance.
    pub fn new(
        ground_truth: GroundTruth,
        correct_src: impl Into<String>,
        profile: ModelProfile,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00_D15E_A5E5);
        let difficulty = rng.random::<f64>();
        OracleLlm {
            ground_truth,
            correct_src: correct_src.into(),
            profile,
            latency: LatencyModel::default(),
            rng,
            usage: Usage::default(),
            difficulty,
        }
    }

    /// Per-call success probability for `prompt`.
    fn success_probability(&self, prompt: &RepairPrompt) -> f64 {
        let gt = &self.ground_truth;
        let mode = InfoMode::of(&prompt.error_info);
        let mut p = self.profile.success_prob(gt.kind, mode);
        // Out-of-distribution instances stay broken no matter how often
        // the model is asked — the mixture that sets the FR asymptotes.
        let bonus = crate::calibration::complexity_bonus(self.correct_src.len());
        let threshold = match mode {
            InfoMode::Lint | InfoMode::Ms | InfoMode::Sl => {
                crate::calibration::hardness_rich(gt.kind) + bonus
            }
            InfoMode::RawLog | InfoMode::SpecOnly => {
                crate::calibration::hardness_poor(gt.kind) + bonus
            }
        };
        let threshold = if prompt.output_mode == OutputMode::Complete {
            // Whole-file regeneration risks re-breaking untouched logic,
            // so more instances sit beyond the model's reach (Table III).
            // Under poor information the mode is already the bottleneck,
            // so the extra penalty is smaller.
            let factor = match mode {
                InfoMode::Lint | InfoMode::Ms | InfoMode::Sl => 1.45,
                InfoMode::RawLog | InfoMode::SpecOnly => 1.15,
            };
            (threshold * factor).min(0.95)
        } else {
            threshold
        };
        if self.difficulty < threshold {
            p *= 0.02;
        }
        if let ErrorInfo::SuspiciousLines { lines, .. } = &prompt.error_info {
            if lines.iter().any(|(n, _)| *n == gt.line) {
                p *= self.profile.sl_hit_factor();
            }
        }
        if prompt.output_mode == OutputMode::Complete {
            p *= self.profile.complete_mode_factor(gt.kind);
        }
        // Damage repairs prune the model's search space a little.
        p *= 1.0 + 0.05 * prompt.damage_repairs.len().min(4) as f64;
        p.clamp(0.0, 0.95)
    }

    fn success_content(&self, prompt: &RepairPrompt) -> String {
        let gt = &self.ground_truth;
        match prompt.output_mode {
            OutputMode::Pairs => {
                // A real model derives the fix from the code in front of
                // it: emit the hunk that turns the *current* code into
                // the correct one (falling back to the original windows
                // when the two are somehow identical).
                let pair =
                    diff_hunk_pair(&prompt.code, &self.correct_src).unwrap_or_else(|| RepairPair {
                        original: gt.buggy_window.clone(),
                        patched: gt.fixed_window.clone(),
                    });
                RepairResponse {
                    module_name: module_name_of(&prompt.code),
                    analysis: format!("The error is caused by: {}", gt.description),
                    correct: vec![pair],
                }
                .to_json()
            }
            OutputMode::Complete => CompleteResponse {
                module_name: module_name_of(&prompt.code),
                analysis: format!("Rewrote the module; {}", gt.description),
                code: self.correct_src.clone(),
            }
            .to_json(),
        }
    }

    fn failure_content(&mut self, prompt: &RepairPrompt) -> String {
        // Syntax-fix failures stay near the reported site (a model
        // handed a lint log does not vandalise unrelated logic); other
        // failures follow the generic mixture.
        let mode = if matches!(prompt.error_info, ErrorInfo::LintLog(_)) {
            let u = self.rng.random::<f64>();
            if u < 0.45 {
                FailureMode::OverfitPerturb
            } else if u < 0.85 {
                FailureMode::Unmatchable
            } else {
                FailureMode::SyntaxBreak
            }
        } else {
            FailureMode::draw(self.rng.random::<f64>())
        };
        let pair = match mode {
            FailureMode::WrongSite => self.wrong_site_pair(&prompt.code),
            FailureMode::OverfitPerturb => self.overfit_pair(),
            FailureMode::Unmatchable => Some(RepairPair {
                original: "/* context the model hallucinated */".to_string(),
                patched: self.ground_truth.fixed_line.clone(),
            }),
            FailureMode::SyntaxBreak => self.syntax_break_pair(&prompt.code),
        }
        .unwrap_or_else(|| RepairPair {
            original: "// nothing to change".to_string(),
            patched: "// nothing to change".to_string(),
        });
        match prompt.output_mode {
            OutputMode::Pairs => RepairResponse {
                module_name: module_name_of(&prompt.code),
                analysis: "The issue appears to be in the highlighted logic.".to_string(),
                correct: vec![pair],
            }
            .to_json(),
            OutputMode::Complete => {
                // Apply the wrong pair to the whole file.
                let code = match prompt.code.find(&pair.original) {
                    Some(at) => {
                        let mut c = prompt.code.clone();
                        c.replace_range(at..at + pair.original.len(), &pair.patched);
                        c
                    }
                    None => prompt.code.clone(),
                };
                CompleteResponse {
                    module_name: module_name_of(&prompt.code),
                    analysis: "Regenerated the module with the suspected fix.".to_string(),
                    code,
                }
                .to_json()
            }
        }
    }

    /// A plausible-but-wrong edit on an unrelated assignment line.
    fn wrong_site_pair(&mut self, code: &str) -> Option<RepairPair> {
        let buggy_line = self.ground_truth.buggy_line.clone();
        let lines: Vec<&str> = code
            .lines()
            .filter(|l| {
                let t = l.trim();
                (t.contains("<=") || t.contains("= ")) && t.ends_with(';') && t != buggy_line
            })
            .collect();
        if lines.is_empty() {
            return None;
        }
        let pick = lines[self.rng.random_range(0..lines.len())];
        let semi = pick.rfind(';')?;
        let mut patched = pick.to_string();
        patched.replace_range(semi..semi, " ^ 1'b1");
        Some(RepairPair { original: pick.to_string(), patched })
    }

    /// Edits the true faulty window, but wrongly (overfit-shaped).
    fn overfit_pair(&mut self) -> Option<RepairPair> {
        let gt = &self.ground_truth;
        let window = &gt.buggy_window;
        // Perturb the first decimal digit run in the window.
        let at = window.find(|c: char| c.is_ascii_digit())?;
        let end = window[at..]
            .find(|c: char| !c.is_ascii_digit())
            .map(|e| at + e)
            .unwrap_or(window.len());
        let v: u64 = window[at..end].parse().ok()?;
        let mut nv = v.wrapping_add(1 + self.rng.random_range(0..3u64));
        let mut patched = format!("{}{}{}", &window[..at], nv, &window[end..]);
        if patched == gt.fixed_window {
            nv += 1;
            patched = format!("{}{}{}", &window[..at], nv, &window[end..]);
        }
        if patched == *window {
            return None;
        }
        Some(RepairPair { original: window.clone(), patched })
    }

    /// A patch that breaks the syntax (drops a semicolon).
    fn syntax_break_pair(&mut self, code: &str) -> Option<RepairPair> {
        let lines: Vec<&str> =
            code.lines().filter(|l| l.trim().ends_with(';') && l.len() > 3).collect();
        if lines.is_empty() {
            return None;
        }
        let pick = lines[self.rng.random_range(0..lines.len())];
        let semi = pick.rfind(';')?;
        let mut patched = pick.to_string();
        patched.replace_range(semi..semi + 1, "");
        Some(RepairPair { original: pick.to_string(), patched })
    }
}

/// Computes the single contiguous hunk (with one line of context on
/// each side) that rewrites `current` into `correct`, or `None` when the
/// two are line-identical.
pub fn diff_hunk_pair(current: &str, correct: &str) -> Option<RepairPair> {
    let cur: Vec<&str> = current.lines().collect();
    let cor: Vec<&str> = correct.lines().collect();
    let mut prefix = 0;
    while prefix < cur.len() && prefix < cor.len() && cur[prefix] == cor[prefix] {
        prefix += 1;
    }
    if prefix == cur.len() && prefix == cor.len() {
        return None;
    }
    let mut suffix = 0;
    while suffix < cur.len() - prefix
        && suffix < cor.len() - prefix
        && cur[cur.len() - 1 - suffix] == cor[cor.len() - 1 - suffix]
    {
        suffix += 1;
    }
    // One line of context on each side anchors the hunk uniquely in
    // typical RTL.
    let start = prefix.saturating_sub(1);
    let cur_end = (cur.len() - suffix + 1).min(cur.len());
    let cor_end = (cor.len() - suffix + 1).min(cor.len());
    Some(RepairPair {
        original: cur[start..cur_end].join("\n"),
        patched: cor[start..cor_end].join("\n"),
    })
}

/// Extracts the first module name from Verilog text.
pub fn module_name_of(code: &str) -> String {
    for line in code.lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("module") {
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return name;
            }
        }
    }
    "unknown".to_string()
}

impl LanguageModel for OracleLlm {
    fn name(&self) -> &str {
        "gpt-4-turbo (calibrated oracle)"
    }

    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
        let text = prompt.render();
        let prompt_tokens = count_tokens(&text);
        let p = self.success_probability(prompt);
        let success = self.rng.random::<f64>() < p;
        let content =
            if success { self.success_content(prompt) } else { self.failure_content(prompt) };
        let completion_tokens = count_tokens(&content);
        let completion = Completion {
            content,
            prompt_tokens,
            completion_tokens,
            latency: self.latency.latency(prompt_tokens, completion_tokens),
        };
        self.usage.record(&completion);
        Ok(completion)
    }

    fn usage(&self) -> Usage {
        self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::AgentRole;
    use uvllm_errgen::{mutate, ErrorKind};

    const SRC: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
                       always @(posedge clk or negedge rst_n) begin\n\
                       if (!rst_n) q <= 4'd0;\n\
                       else if (en) q <= q + 4'd1;\n\
                       end\nendmodule\n";

    fn oracle(kind: ErrorKind, seed: u64) -> (OracleLlm, String) {
        let out = mutate(SRC, kind, seed).unwrap();
        (
            OracleLlm::new(out.ground_truth.clone(), SRC, ModelProfile::Gpt4Turbo, seed),
            out.mutated_src,
        )
    }

    #[test]
    fn success_pair_repairs_the_code() {
        // Run many seeds; successful responses must contain the exact
        // buggy window so the patch applies.
        let mut successes = 0;
        for seed in 0..40 {
            let (mut o, mutated) = oracle(ErrorKind::OperatorMisuse, seed);
            let prompt = RepairPrompt::new(AgentRole::MismatchDebugger, "spec", &mutated)
                .with_error_info(ErrorInfo::MismatchSignals(vec![]));
            let c = o.complete(&prompt).unwrap();
            if let Ok(r) = RepairResponse::parse(&c.content) {
                if r.correct.len() == 1 && mutated.contains(&r.correct[0].original) {
                    let fixed = mutated.replacen(&r.correct[0].original, &r.correct[0].patched, 1);
                    if fixed == SRC {
                        successes += 1;
                    }
                }
            }
        }
        assert!(successes >= 5, "expected some successes, got {successes}");
        assert!(successes <= 35, "expected some failures, got {successes}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (mut a, mutated) = oracle(ErrorKind::ValueMisuse, 5);
        let (mut b, _) = oracle(ErrorKind::ValueMisuse, 5);
        let prompt = RepairPrompt::new(AgentRole::MismatchDebugger, "spec", &mutated);
        assert_eq!(a.complete(&prompt).unwrap().content, b.complete(&prompt).unwrap().content);
    }

    #[test]
    fn sl_mode_with_hit_line_boosts_probability() {
        let (o, mutated) = oracle(ErrorKind::ValueMisuse, 3);
        let gt = o.ground_truth.clone();
        let ms = RepairPrompt::new(AgentRole::MismatchDebugger, "spec", &mutated)
            .with_error_info(ErrorInfo::MismatchSignals(vec![]));
        let sl_hit = RepairPrompt::new(AgentRole::SuspiciousLineDebugger, "spec", &mutated)
            .with_error_info(ErrorInfo::SuspiciousLines {
                signals: vec![],
                lines: vec![(gt.line, gt.buggy_line.clone())],
            });
        assert!(o.success_probability(&sl_hit) > o.success_probability(&ms));
    }

    #[test]
    fn complete_mode_returns_full_file_on_success() {
        let mut found = false;
        for seed in 0..60 {
            let (mut o, mutated) = oracle(ErrorKind::MissingEnd, seed);
            let prompt = RepairPrompt::new(AgentRole::SyntaxFixer, "spec", &mutated)
                .with_error_info(ErrorInfo::LintLog("%Error ...".to_string()))
                .with_output_mode(OutputMode::Complete);
            let c = o.complete(&prompt).unwrap();
            if let Ok(r) = CompleteResponse::parse(&c.content) {
                if r.code == SRC {
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "complete-mode success should return the pristine file");
    }

    #[test]
    fn usage_is_tracked() {
        let (mut o, mutated) = oracle(ErrorKind::ValueMisuse, 1);
        let prompt = RepairPrompt::new(AgentRole::MismatchDebugger, "spec", &mutated);
        o.complete(&prompt).unwrap();
        o.complete(&prompt).unwrap();
        let u = o.usage();
        assert_eq!(u.calls, 2);
        assert!(u.prompt_tokens > 50);
        assert!(u.latency.as_secs_f64() > 1.0);
    }

    #[test]
    fn module_name_extraction() {
        assert_eq!(module_name_of(SRC), "c");
        assert_eq!(module_name_of("  module foo_bar (a);"), "foo_bar");
        assert_eq!(module_name_of("wire x;"), "unknown");
    }
}
