//! The LLM *service* layer: a submit/await ticket protocol that
//! decouples asking for a completion from blocking on it.
//!
//! The repair pipeline historically called `complete(&mut M, prompt)`
//! directly — a blocking, exclusive, one-prompt-at-a-time coupling that
//! forces every campaign worker to stall on the model while its
//! simulator sits idle. This module replaces that call with a protocol:
//!
//! 1. [`LlmService::submit`] hands the service a [`RepairPrompt`] and
//!    returns a [`Ticket`] immediately;
//! 2. [`LlmService::await_completion`] redeems the ticket, blocking
//!    only until *that* prompt's answer is ready.
//!
//! Two implementations cover the two deployment shapes:
//!
//! * [`DirectService`] — the in-process adapter: wraps one
//!   [`LanguageModel`] and answers at submit time. Zero concurrency,
//!   zero overhead; behaviourally identical to the old direct call.
//! * [`BatchedLlm`] — a shared service owning the backend(s) on a
//!   dedicated thread. Callers register *sessions* (one per campaign
//!   job, carrying that job's own model so oracle determinism is
//!   untouched) and obtain [`LlmClient`] handles; submissions from all
//!   workers land in one bounded queue, are coalesced into batches by
//!   the [`BatchConfig`] flush policy (`max_batch` reached, or
//!   `max_wait` elapsed since the first pending prompt), fanned to the
//!   session models via [`LanguageModel::complete_batch`], and the
//!   blocked jobs are woken as each flush completes — so one worker's
//!   LLM round trip overlaps every other worker's simulation time.
//!
//! **Determinism contract:** a session's model sees exactly the prompts
//! submitted through that session, in submission order, no matter how
//! flushes interleave sessions. A campaign job therefore produces the
//! same completions (and the same usage accounting) through a
//! [`BatchedLlm`] session as through a [`DirectService`] — batch
//! schedule and worker count change wall-clock only.
//!
//! [`SlowLlm`] models the remote endpoint this layer is built for: a
//! fixed per-round-trip latency on an exclusive connection
//! ([`EndpointGate`]). One `complete` pays one round trip; one
//! `complete_batch` pays one round trip for the whole batch — which is
//! exactly the amortization the batched service exists to exploit
//! (`BatchConfig::round_trip` injects the same cost per flush).

use crate::model::{Completion, LanguageModel, LlmError, Usage};
use crate::prompt::RepairPrompt;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};
use uvllm_obs::{registry, Counter, Gauge, Histogram};

/// Registry handles for the service layer (`llm.*`), resolved once.
/// Per-handle [`WaitStats`] stay for per-job row telemetry (a global
/// registry cannot attribute waits to one job); these are the
/// service-wide aggregates campaigns snapshot.
#[derive(Debug)]
struct LlmMetrics {
    /// Prompts submitted but not yet pulled into a flush window.
    queue_depth: &'static Gauge,
    /// Tickets redeemed across all handles.
    tickets: &'static Counter,
    /// Submission-to-delivery wall time per ticket, in microseconds.
    ticket_wait_us: &'static Histogram,
    /// Prompts per flush.
    batch_size: &'static Histogram,
    /// Flushes answered (any reason).
    flushes: &'static Counter,
    /// Prompts answered across all flushes (`flushed_prompts / flushes`
    /// is the mean batch size).
    flushed_prompts: &'static Counter,
    /// Flushes triggered by a full batch window.
    flush_full: &'static Counter,
    /// Flushes triggered by the `max_wait` deadline.
    flush_timeout: &'static Counter,
    /// Flushes draining the queue at service shutdown.
    flush_shutdown: &'static Counter,
}

fn metrics() -> &'static LlmMetrics {
    static METRICS: OnceLock<LlmMetrics> = OnceLock::new();
    METRICS.get_or_init(|| LlmMetrics {
        queue_depth: registry().gauge("llm.queue_depth"),
        tickets: registry().counter("llm.tickets"),
        ticket_wait_us: registry().histogram("llm.ticket_wait_us"),
        batch_size: registry().histogram("llm.batch_size"),
        flushes: registry().counter("llm.flushes"),
        flushed_prompts: registry().counter("llm.flushed_prompts"),
        flush_full: registry().counter("llm.flush.full"),
        flush_timeout: registry().counter("llm.flush.timeout"),
        flush_shutdown: registry().counter("llm.flush.shutdown"),
    })
}

/// Why a flush fired (tallied per flush in the registry).
#[derive(Debug, Clone, Copy)]
enum FlushReason {
    Full,
    Timeout,
    Shutdown,
}

/// Flush policy and sizing of a [`BatchedLlm`] service.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Flush as soon as this many prompts are pending.
    pub max_batch: usize,
    /// Flush a partial batch this long after its first prompt arrived,
    /// so a lone straggler is never parked behind an empty queue.
    pub max_wait: Duration,
    /// Capacity of the bounded submission queue; `submit` blocks while
    /// it is full (backpressure instead of unbounded buffering).
    pub queue_cap: usize,
    /// Injected endpoint round-trip latency paid once per flush —
    /// simulates the remote-API cost the batching amortizes (zero in
    /// production use; the benchmarks set it).
    pub round_trip: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_cap: 256,
            round_trip: Duration::ZERO,
        }
    }
}

/// A claim on one submitted prompt, redeemed by
/// [`LlmService::await_completion`]. Tickets are per-handle: a ticket
/// from one client cannot be redeemed through another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// Mints a ticket — for service implementors in this crate only
    /// (callers obtain tickets from [`LlmService::submit`]).
    pub(crate) fn new(id: u64) -> Ticket {
        Ticket(id)
    }

    /// The handle-local ticket id.
    pub(crate) fn id(self) -> u64 {
        self.0
    }
}

/// Service-side accounting a handle accumulates ticket by ticket:
/// how long its caller spent blocked on the LLM and how large the
/// batches its prompts rode in were.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Tickets redeemed.
    pub tickets: u64,
    /// Total wall-clock time from submission to delivery.
    pub wait: Duration,
    /// Largest flush any of this handle's prompts was part of.
    pub max_batch: usize,
}

impl WaitStats {
    /// Total wait in whole milliseconds.
    pub fn wait_ms(&self) -> u64 {
        self.wait.as_millis() as u64
    }
}

/// The submission protocol every pipeline stage drives — the successor
/// of passing `&mut M` around.
///
/// `submit` is infallible by design: acceptance problems (a stopped
/// service, a model with no answer) surface when the ticket is
/// redeemed, so callers have one error path instead of two.
pub trait LlmService: Send {
    /// Human-readable backend name (shows up in experiment reports).
    fn backend_name(&self) -> &str;

    /// Enqueues a prompt, returning the ticket that redeems its answer.
    fn submit(&mut self, prompt: &RepairPrompt) -> Ticket;

    /// Blocks until the ticket's prompt is answered.
    ///
    /// # Errors
    ///
    /// The backend's own [`LlmError`] for this prompt,
    /// [`LlmError::ServiceClosed`] when the service shut down before
    /// answering, or [`LlmError::NoResponse`] for a ticket this handle
    /// never issued (or already redeemed).
    fn await_completion(&mut self, ticket: Ticket) -> Result<Completion, LlmError>;

    /// Submit-then-await in one call — the drop-in replacement for the
    /// old `LanguageModel::complete` call sites.
    ///
    /// # Errors
    ///
    /// See [`LlmService::await_completion`].
    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
        let ticket = self.submit(prompt);
        self.await_completion(ticket)
    }

    /// Usage attributed to this handle (for a [`DirectService`], the
    /// wrapped model's total; for an [`LlmClient`], the sum of its own
    /// redeemed tickets — the per-ticket deltas that keep per-job
    /// accounting exact on a shared service).
    fn usage(&self) -> Usage;

    /// Wait/batch telemetry accumulated by this handle.
    fn wait_stats(&self) -> WaitStats;

    /// What the resilience layer did on this handle. Plain services
    /// report the all-zero default; [`crate::ResilientService`]
    /// overrides it — campaign code reads it through `Box<dyn
    /// LlmService>` to tag degraded rows without downcasting.
    fn resilience_stats(&self) -> crate::resilient::ResilienceStats {
        crate::resilient::ResilienceStats::default()
    }
}

// Forwarding impls so pipelines generic over `S: LlmService` accept
// mutable borrows and boxed trait objects alike.

impl<S: LlmService + ?Sized> LlmService for &mut S {
    fn backend_name(&self) -> &str {
        (**self).backend_name()
    }

    fn submit(&mut self, prompt: &RepairPrompt) -> Ticket {
        (**self).submit(prompt)
    }

    fn await_completion(&mut self, ticket: Ticket) -> Result<Completion, LlmError> {
        (**self).await_completion(ticket)
    }

    fn usage(&self) -> Usage {
        (**self).usage()
    }

    fn wait_stats(&self) -> WaitStats {
        (**self).wait_stats()
    }

    fn resilience_stats(&self) -> crate::resilient::ResilienceStats {
        (**self).resilience_stats()
    }
}

impl<S: LlmService + ?Sized> LlmService for Box<S> {
    fn backend_name(&self) -> &str {
        (**self).backend_name()
    }

    fn submit(&mut self, prompt: &RepairPrompt) -> Ticket {
        (**self).submit(prompt)
    }

    fn await_completion(&mut self, ticket: Ticket) -> Result<Completion, LlmError> {
        (**self).await_completion(ticket)
    }

    fn usage(&self) -> Usage {
        (**self).usage()
    }

    fn wait_stats(&self) -> WaitStats {
        (**self).wait_stats()
    }

    fn resilience_stats(&self) -> crate::resilient::ResilienceStats {
        (**self).resilience_stats()
    }
}

// ----------------------------------------------------------------------
// DirectService: the unbatched in-process adapter
// ----------------------------------------------------------------------

/// Adapts one [`LanguageModel`] to the [`LlmService`] protocol with no
/// threads and no queue: the answer is computed at submit time and the
/// ticket redeems it. Batch size is always 1 and wait time always ~0 —
/// the baseline the batched service is measured against.
#[derive(Debug)]
pub struct DirectService<M: LanguageModel> {
    model: M,
    next_ticket: u64,
    ready: HashMap<u64, Result<Completion, LlmError>>,
    stats: WaitStats,
}

impl<M: LanguageModel> DirectService<M> {
    /// Wraps a model backend.
    pub fn new(model: M) -> Self {
        DirectService { model, next_ticket: 0, ready: HashMap::new(), stats: WaitStats::default() }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Consumes the adapter, returning the model (and its usage
    /// accounting).
    pub fn into_inner(self) -> M {
        self.model
    }
}

impl<M: LanguageModel> LlmService for DirectService<M> {
    fn backend_name(&self) -> &str {
        self.model.name()
    }

    fn submit(&mut self, prompt: &RepairPrompt) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        // The caller blocks right here while the model answers (that is
        // what "direct" means), so the elapsed time is this ticket's
        // wait — e.g. a SlowLlm endpoint round trip shows up in
        // telemetry exactly like a batched ticket's queue time.
        let asked = Instant::now();
        let result = self.model.complete(prompt);
        self.stats.wait += asked.elapsed();
        self.ready.insert(ticket.0, result);
        ticket
    }

    fn await_completion(&mut self, ticket: Ticket) -> Result<Completion, LlmError> {
        let result = self.ready.remove(&ticket.0).ok_or_else(|| {
            LlmError::NoResponse(format!("ticket #{} was never issued by this handle", ticket.0))
        })?;
        self.stats.tickets += 1;
        self.stats.max_batch = self.stats.max_batch.max(1);
        result
    }

    fn usage(&self) -> Usage {
        self.model.usage()
    }

    fn wait_stats(&self) -> WaitStats {
        self.stats
    }
}

// ----------------------------------------------------------------------
// A bounded MPSC channel (std-only; Mutex + two Condvars)
// ----------------------------------------------------------------------

struct ChanState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue: `send` applies backpressure when full,
/// `recv` drains remaining items after close (which is what gives the
/// service its drain-on-shutdown guarantee).
struct Chan<T> {
    state: Mutex<ChanState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

enum Recv<T> {
    Item(T),
    Timeout,
    Closed,
}

impl<T> Chan<T> {
    fn new(cap: usize) -> Self {
        Chan {
            state: Mutex::new(ChanState { queue: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks while the queue is full; returns the item back when the
    /// channel is closed.
    fn send(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("llm service queue poisoned");
        loop {
            if state.closed {
                return Err(item);
            }
            if state.queue.len() < self.cap {
                state.queue.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("llm service queue poisoned");
        }
    }

    /// Blocks for the next item; `None` once closed *and* drained.
    fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().expect("llm service queue poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("llm service queue poisoned");
        }
    }

    /// [`Chan::recv`] bounded by a timeout.
    fn recv_timeout(&self, timeout: Duration) -> Recv<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("llm service queue poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.not_full.notify_one();
                return Recv::Item(item);
            }
            if state.closed {
                return Recv::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Recv::Timeout;
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("llm service queue poisoned");
            state = guard;
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("llm service queue poisoned");
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().expect("llm service queue poisoned").closed
    }
}

// ----------------------------------------------------------------------
// BatchedLlm: the shared batching service
// ----------------------------------------------------------------------

/// What the service thread delivers into a ticket's slot.
struct Delivery {
    result: Result<Completion, LlmError>,
    /// Size of the flush this prompt was answered in.
    batch_size: usize,
}

/// One submitted prompt's rendezvous point between the blocked caller
/// and the service thread.
struct Slot {
    delivery: Mutex<Option<Delivery>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { delivery: Mutex::new(None), ready: Condvar::new() })
    }

    fn deliver(&self, result: Result<Completion, LlmError>, batch_size: usize) {
        let mut guard = self.delivery.lock().expect("llm ticket slot poisoned");
        *guard = Some(Delivery { result, batch_size });
        self.ready.notify_all();
    }

    /// Blocks until delivered. A slow flush (a long endpoint round
    /// trip) is *not* an error, however long it takes — the wait only
    /// gives up once `service_gone` reports the queue closed (shutdown
    /// or a panicked service thread) and a grace window for the
    /// shutdown drain has passed without a delivery.
    fn wait(&self, service_gone: &dyn Fn() -> bool) -> Delivery {
        let mut guard = self.delivery.lock().expect("llm ticket slot poisoned");
        let mut grace_passes = 0u32;
        loop {
            if let Some(delivery) = guard.take() {
                return delivery;
            }
            if service_gone() {
                // Closed queue: the drain (or the panic closer) is the
                // last writer that could still fill this slot. Give it
                // a bounded grace window, then report the loss.
                grace_passes += 1;
                if grace_passes > 50 {
                    return Delivery {
                        result: Err(LlmError::ServiceClosed(
                            "ticket was never answered (service shut down)".to_string(),
                        )),
                        batch_size: 0,
                    };
                }
                let (next, _) = self
                    .ready
                    .wait_timeout(guard, Duration::from_millis(100))
                    .expect("llm ticket slot poisoned");
                guard = next;
            } else {
                // Service alive: block until woken (re-polling liveness
                // once a second so a panic that closed the queue is
                // noticed even without a notification).
                let (next, _) = self
                    .ready
                    .wait_timeout(guard, Duration::from_secs(1))
                    .expect("llm ticket slot poisoned");
                guard = next;
            }
        }
    }
}

struct PendingRequest {
    session: u64,
    prompt: RepairPrompt,
    slot: Arc<Slot>,
}

enum Msg<M> {
    /// Register a session and the model that answers its prompts.
    Open {
        session: u64,
        model: M,
    },
    /// Drop a session's model (its client handle went away).
    Close {
        session: u64,
    },
    Request(PendingRequest),
}

/// The shared batched LLM service (see module docs).
///
/// Dropping the service closes the queue, drains every already-accepted
/// submission, and joins the thread; [`BatchedLlm::stop`] does the same
/// but hands the session models back (tests use this to audit usage).
pub struct BatchedLlm<M: LanguageModel + 'static> {
    chan: Arc<Chan<Msg<M>>>,
    thread: Mutex<Option<std::thread::JoinHandle<HashMap<u64, M>>>>,
    next_session: AtomicU64,
    config: BatchConfig,
}

impl<M: LanguageModel + 'static> std::fmt::Debug for BatchedLlm<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchedLlm").field("config", &self.config).finish()
    }
}

impl<M: LanguageModel + 'static> BatchedLlm<M> {
    /// Starts the service thread (sizes below 1 are clamped up).
    pub fn start(config: BatchConfig) -> Self {
        let config = BatchConfig {
            max_batch: config.max_batch.max(1),
            queue_cap: config.queue_cap.max(1),
            ..config
        };
        let chan = Arc::new(Chan::new(config.queue_cap));
        let worker_chan = Arc::clone(&chan);
        let worker_config = config.clone();
        let thread = std::thread::Builder::new()
            .name("uvllm-llm-service".to_string())
            .spawn(move || service_loop(worker_chan, worker_config))
            .expect("spawn llm service thread");
        BatchedLlm {
            chan,
            thread: Mutex::new(Some(thread)),
            next_session: AtomicU64::new(0),
            config,
        }
    }

    /// The (normalized) flush policy in force.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Sessions opened on this service so far. A resident worker holds
    /// one service across many leased shards (`Campaign::run_shared`),
    /// so this is its cumulative served-jobs gauge.
    pub fn sessions_opened(&self) -> u64 {
        self.next_session.load(Ordering::SeqCst)
    }

    /// Opens a session owning `model` and returns its client handle.
    ///
    /// Each campaign job opens a session with its own (seeded) model, so
    /// batching never mixes RNG streams across jobs; a deployment with
    /// one real endpoint opens a single session and hands out clones of
    /// the handle's accounting via per-ticket deltas.
    pub fn client(&self, model: M) -> LlmClient<M> {
        let session = self.next_session.fetch_add(1, Ordering::SeqCst);
        uvllm_obs::registry().counter("llm.sessions").inc();
        let name = model.name().to_string();
        // A closed service rejects the registration; the client's
        // submissions then poison their own tickets, so the error
        // surfaces at await time like every other service failure.
        let _ = self.chan.send(Msg::Open { session, model });
        LlmClient {
            chan: Arc::clone(&self.chan),
            session,
            name,
            next_ticket: 0,
            outstanding: HashMap::new(),
            usage: Usage::default(),
            stats: WaitStats::default(),
        }
    }

    /// Shuts the service down: closes the queue, drains and answers
    /// every accepted submission, joins the thread, and returns the
    /// session models (in session-open order) for auditing.
    pub fn stop(self) -> Vec<M> {
        self.chan.close();
        let handle = self.thread.lock().expect("llm service handle poisoned").take();
        let sessions = match handle {
            Some(h) => h.join().unwrap_or_default(),
            None => HashMap::new(),
        };
        let mut models: Vec<(u64, M)> = sessions.into_iter().collect();
        models.sort_by_key(|(session, _)| *session);
        models.into_iter().map(|(_, model)| model).collect()
    }
}

impl<M: LanguageModel + 'static> Drop for BatchedLlm<M> {
    fn drop(&mut self) {
        self.chan.close();
        if let Some(handle) = self.thread.lock().expect("llm service handle poisoned").take() {
            let _ = handle.join();
        }
    }
}

/// The dedicated service thread: accumulate → flush, forever.
/// Closes the queue if the service thread unwinds, so blocked callers
/// observe "service gone" (and error out after the grace window)
/// instead of waiting on slots a dead thread will never fill.
struct PanicCloser<'c, T>(&'c Chan<T>);

impl<T> Drop for PanicCloser<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.close();
        }
    }
}

fn service_loop<M: LanguageModel>(chan: Arc<Chan<Msg<M>>>, config: BatchConfig) -> HashMap<u64, M> {
    let _panic_closer = PanicCloser(&chan);
    let mut sessions: HashMap<u64, M> = HashMap::new();
    let mut pending: Vec<PendingRequest> = Vec::new();
    while let Some(msg) = chan.recv() {
        handle_msg(msg, &mut sessions, &mut pending);
        if pending.is_empty() {
            continue;
        }
        // The flush window opens with the first pending prompt: gather
        // until the batch fills or `max_wait` elapses.
        let deadline = Instant::now() + config.max_wait;
        while pending.len() < config.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match chan.recv_timeout(deadline - now) {
                Recv::Item(msg) => handle_msg(msg, &mut sessions, &mut pending),
                Recv::Timeout | Recv::Closed => break,
            }
        }
        let reason = if pending.len() >= config.max_batch {
            FlushReason::Full
        } else {
            FlushReason::Timeout
        };
        flush(&mut sessions, &mut pending, config.round_trip, reason);
    }
    // Drain on shutdown: the queue is closed and empty; anything still
    // pending (a partial window interrupted by close) is answered.
    flush(&mut sessions, &mut pending, config.round_trip, FlushReason::Shutdown);
    sessions
}

fn handle_msg<M: LanguageModel>(
    msg: Msg<M>,
    sessions: &mut HashMap<u64, M>,
    pending: &mut Vec<PendingRequest>,
) {
    match msg {
        Msg::Open { session, model } => {
            sessions.insert(session, model);
        }
        Msg::Close { session } => {
            sessions.remove(&session);
        }
        Msg::Request(request) => {
            metrics().queue_depth.dec();
            pending.push(request);
        }
    }
}

/// Answers one flush: one injected round trip for the whole batch, then
/// each session's prompts go to its own model as one
/// [`LanguageModel::complete_batch`] call, in submission order.
fn flush<M: LanguageModel>(
    sessions: &mut HashMap<u64, M>,
    pending: &mut Vec<PendingRequest>,
    round_trip: Duration,
    reason: FlushReason,
) {
    if pending.is_empty() {
        return;
    }
    let batch_size = pending.len();
    let m = metrics();
    m.flushes.inc();
    m.flushed_prompts.add(batch_size as u64);
    m.batch_size.record(batch_size as u64);
    match reason {
        FlushReason::Full => m.flush_full.inc(),
        FlushReason::Timeout => m.flush_timeout.inc(),
        FlushReason::Shutdown => m.flush_shutdown.inc(),
    }
    if !round_trip.is_zero() {
        std::thread::sleep(round_trip);
    }
    // Group by session, preserving both first-appearance session order
    // and submission order within each session.
    let mut groups: Vec<(u64, Vec<PendingRequest>)> = Vec::new();
    for request in pending.drain(..) {
        match groups.iter_mut().find(|(session, _)| *session == request.session) {
            Some((_, group)) => group.push(request),
            None => groups.push((request.session, vec![request])),
        }
    }
    for (session, group) in groups {
        let (prompts, slots): (Vec<RepairPrompt>, Vec<Arc<Slot>>) =
            group.into_iter().map(|r| (r.prompt, r.slot)).unzip();
        match sessions.get_mut(&session) {
            Some(model) => {
                let mut results = model.complete_batch(&prompts).into_iter();
                for slot in slots {
                    // A malformed override returning too few results
                    // must not strand a blocked caller.
                    let result = results.next().unwrap_or_else(|| {
                        Err(LlmError::NoResponse(
                            "backend returned fewer batch results than prompts".to_string(),
                        ))
                    });
                    slot.deliver(result, batch_size);
                }
            }
            None => {
                for slot in slots {
                    slot.deliver(
                        Err(LlmError::ServiceClosed(format!(
                            "session {session} is not registered"
                        ))),
                        batch_size,
                    );
                }
            }
        }
    }
}

/// A session handle onto a [`BatchedLlm`] — the [`LlmService`] the
/// pipeline actually holds when a campaign runs batched.
pub struct LlmClient<M: LanguageModel + 'static> {
    chan: Arc<Chan<Msg<M>>>,
    session: u64,
    name: String,
    next_ticket: u64,
    outstanding: HashMap<u64, OutstandingTicket>,
    usage: Usage,
    stats: WaitStats,
}

struct OutstandingTicket {
    slot: Arc<Slot>,
    submitted: Instant,
}

impl<M: LanguageModel + 'static> std::fmt::Debug for LlmClient<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LlmClient")
            .field("session", &self.session)
            .field("backend", &self.name)
            .finish()
    }
}

impl<M: LanguageModel + 'static> LlmService for LlmClient<M> {
    fn backend_name(&self) -> &str {
        &self.name
    }

    fn submit(&mut self, prompt: &RepairPrompt) -> Ticket {
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        let slot = Slot::new();
        let request = PendingRequest {
            session: self.session,
            prompt: prompt.clone(),
            slot: Arc::clone(&slot),
        };
        if self.chan.send(Msg::Request(request)).is_err() {
            // Service already stopped: poison the slot so the error
            // surfaces at redemption like any other failure.
            slot.deliver(
                Err(LlmError::ServiceClosed("service stopped before submission".to_string())),
                0,
            );
        } else {
            metrics().queue_depth.inc();
        }
        self.outstanding.insert(ticket.0, OutstandingTicket { slot, submitted: Instant::now() });
        ticket
    }

    fn await_completion(&mut self, ticket: Ticket) -> Result<Completion, LlmError> {
        let outstanding = self.outstanding.remove(&ticket.0).ok_or_else(|| {
            LlmError::NoResponse(format!("ticket #{} was never issued by this handle", ticket.0))
        })?;
        let delivery = outstanding.slot.wait(&|| self.chan.is_closed());
        let waited = outstanding.submitted.elapsed();
        self.stats.tickets += 1;
        self.stats.wait += waited;
        self.stats.max_batch = self.stats.max_batch.max(delivery.batch_size);
        let m = metrics();
        m.tickets.inc();
        m.ticket_wait_us.record(waited.as_micros() as u64);
        if let Ok(completion) = &delivery.result {
            // The per-ticket usage delta: exactly what the backend
            // recorded for this completion, attributed to this handle.
            self.usage.record(completion);
        }
        delivery.result
    }

    fn usage(&self) -> Usage {
        self.usage
    }

    fn wait_stats(&self) -> WaitStats {
        self.stats
    }
}

impl<M: LanguageModel + 'static> Drop for LlmClient<M> {
    fn drop(&mut self) {
        // Best effort: free the session's model on the service thread.
        let _ = self.chan.send(Msg::Close { session: self.session });
    }
}

// ----------------------------------------------------------------------
// SlowLlm: an injected-latency endpoint model
// ----------------------------------------------------------------------

/// The exclusive connection to a simulated remote endpoint: all
/// [`SlowLlm`] wrappers sharing a gate serialize their round trips, the
/// way requests on one API connection do.
pub type EndpointGate = Arc<Mutex<()>>;

/// A fresh exclusive endpoint connection.
pub fn endpoint_gate() -> EndpointGate {
    Arc::new(Mutex::new(()))
}

/// Wraps a backend with a fixed per-round-trip latency on an exclusive
/// connection: `complete` pays one round trip per prompt,
/// `complete_batch` one round trip for the whole batch. This is the
/// workload model under which the batched service's overlap win is
/// benchmarked (`BENCH_kernels.json`'s `llm_overlap` record).
#[derive(Debug)]
pub struct SlowLlm<M: LanguageModel> {
    inner: M,
    round_trip: Duration,
    gate: EndpointGate,
}

impl<M: LanguageModel> SlowLlm<M> {
    /// Wraps `inner` behind a `round_trip`-latency connection.
    pub fn new(inner: M, round_trip: Duration, gate: EndpointGate) -> Self {
        SlowLlm { inner, round_trip, gate }
    }
}

impl<M: LanguageModel> LanguageModel for SlowLlm<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
        let _connection = self.gate.lock().expect("endpoint gate poisoned");
        std::thread::sleep(self.round_trip);
        self.inner.complete(prompt)
    }

    fn complete_batch(&mut self, prompts: &[RepairPrompt]) -> Vec<Result<Completion, LlmError>> {
        let _connection = self.gate.lock().expect("endpoint gate poisoned");
        std::thread::sleep(self.round_trip);
        self.inner.complete_batch(prompts)
    }

    fn usage(&self) -> Usage {
        self.inner.usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::AgentRole;
    use crate::scripted::ScriptedLlm;

    fn prompt() -> RepairPrompt {
        RepairPrompt::new(AgentRole::SyntaxFixer, "spec", "module m; endmodule")
    }

    fn scripted(responses: &[&str]) -> ScriptedLlm {
        ScriptedLlm::new(responses.iter().map(|s| s.to_string()))
    }

    #[test]
    fn direct_service_round_trips() {
        let mut service = DirectService::new(scripted(&["one", "two"]));
        let a = service.submit(&prompt());
        let b = service.submit(&prompt());
        assert_eq!(service.await_completion(a).unwrap().content, "one");
        assert_eq!(service.await_completion(b).unwrap().content, "two");
        assert!(service.complete(&prompt()).is_err(), "scripted backend exhausted");
        assert_eq!(service.usage().calls, 2);
        let stats = service.wait_stats();
        // Three tickets were redeemed (the exhausted-backend error is a
        // redemption too); only two produced completions.
        assert_eq!(stats.tickets, 3);
        assert_eq!(stats.max_batch, 1);
        // Unknown tickets are an error, not a hang.
        assert!(matches!(service.await_completion(a), Err(LlmError::NoResponse(_))));
    }

    #[test]
    fn batched_flushes_when_max_batch_reached() {
        let service = BatchedLlm::start(BatchConfig {
            max_batch: 3,
            max_wait: Duration::from_secs(30),
            ..BatchConfig::default()
        });
        let mut client = service.client(scripted(&["one", "two", "three"]));
        let tickets: Vec<Ticket> = (0..3).map(|_| client.submit(&prompt())).collect();
        let contents: Vec<String> =
            tickets.into_iter().map(|t| client.await_completion(t).unwrap().content).collect();
        // The batch fills long before max_wait, answers arrive in
        // submission order, and all three rode one flush.
        assert_eq!(contents, ["one", "two", "three"]);
        assert_eq!(client.wait_stats().max_batch, 3);
        assert!(client.wait_stats().wait < Duration::from_secs(10));
    }

    #[test]
    fn batched_flushes_partial_batch_on_max_wait() {
        let service = BatchedLlm::start(BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(20),
            ..BatchConfig::default()
        });
        let mut client = service.client(scripted(&["lone"]));
        let ticket = client.submit(&prompt());
        assert_eq!(client.await_completion(ticket).unwrap().content, "lone");
        assert_eq!(client.wait_stats().max_batch, 1, "partial flush of one");
    }

    #[test]
    fn shutdown_drains_accepted_submissions() {
        let service = BatchedLlm::start(BatchConfig {
            max_batch: 64,
            max_wait: Duration::from_secs(30),
            ..BatchConfig::default()
        });
        let mut client = service.client(scripted(&["one", "two"]));
        let a = client.submit(&prompt());
        let b = client.submit(&prompt());
        // Stop while the flush window is still gathering: close must
        // flush the partial batch, not strand it.
        let models = service.stop();
        assert_eq!(models.len(), 1);
        assert_eq!(client.await_completion(a).unwrap().content, "one");
        assert_eq!(client.await_completion(b).unwrap().content, "two");
        // Submissions after shutdown fail at redemption.
        let late = client.submit(&prompt());
        assert!(matches!(client.await_completion(late), Err(LlmError::ServiceClosed(_))));
    }

    #[test]
    fn sessions_keep_their_own_models_and_order() {
        let service = BatchedLlm::start(BatchConfig {
            max_batch: 3,
            max_wait: Duration::from_secs(30),
            ..BatchConfig::default()
        });
        let mut alice = service.client(scripted(&["a1", "a2"]));
        let mut bob = service.client(scripted(&["b1"]));
        let a1 = alice.submit(&prompt());
        let b1 = bob.submit(&prompt());
        let a2 = alice.submit(&prompt());
        // One flush of three, two sessions: each model answers only its
        // own prompts, in its own submission order.
        assert_eq!(alice.await_completion(a1).unwrap().content, "a1");
        assert_eq!(alice.await_completion(a2).unwrap().content, "a2");
        assert_eq!(bob.await_completion(b1).unwrap().content, "b1");
        assert_eq!(alice.wait_stats().max_batch, 3);
        assert_eq!(bob.wait_stats().max_batch, 3);
    }

    #[test]
    fn per_ticket_usage_deltas_sum_to_backend_totals() {
        let service = BatchedLlm::start(BatchConfig::default());
        let mut alice = service.client(scripted(&["aaaa", "bb"]));
        let mut bob = service.client(scripted(&["cccccccc"]));
        alice.complete(&prompt()).unwrap();
        bob.complete(&prompt()).unwrap();
        alice.complete(&prompt()).unwrap();
        let models = service.stop();
        assert_eq!(models.len(), 2);
        // Session order == open order: alice first.
        assert_eq!(alice.usage(), models[0].usage(), "alice's deltas sum to her model's total");
        assert_eq!(bob.usage(), models[1].usage(), "bob's deltas sum to his model's total");
        assert_eq!(
            alice.usage() + bob.usage(),
            models[0].usage() + models[1].usage(),
            "handle attribution partitions the backend total"
        );
        assert_eq!(alice.usage().calls, 2);
        assert_eq!(bob.usage().calls, 1);
    }

    #[test]
    fn batched_session_matches_direct_service_byte_for_byte() {
        use uvllm_errgen::{mutate, ErrorKind};
        const SRC: &str = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
                           always @(posedge clk or negedge rst_n) begin\n\
                           if (!rst_n) q <= 4'd0;\n\
                           else if (en) q <= q + 4'd1;\n\
                           end\nendmodule\n";
        let mutated = mutate(SRC, ErrorKind::OperatorMisuse, 7).unwrap();
        let oracle = |seed| {
            crate::OracleLlm::new(
                mutated.ground_truth.clone(),
                SRC,
                crate::ModelProfile::Gpt4Turbo,
                seed,
            )
        };
        let p = RepairPrompt::new(AgentRole::MismatchDebugger, "spec", &mutated.mutated_src);

        let mut direct = DirectService::new(oracle(3));
        let direct_contents: Vec<String> =
            (0..4).map(|_| direct.complete(&p).unwrap().content).collect();

        let service = BatchedLlm::start(BatchConfig::default());
        let mut client = service.client(oracle(3));
        let batched_contents: Vec<String> =
            (0..4).map(|_| client.complete(&p).unwrap().content).collect();

        assert_eq!(
            direct_contents, batched_contents,
            "a session sees its prompts in order: identical RNG stream"
        );
        assert_eq!(direct.usage(), client.usage());
    }

    #[test]
    fn slow_llm_amortizes_round_trips_across_a_batch() {
        let gate = endpoint_gate();
        let rtt = Duration::from_millis(10);
        let mut slow = SlowLlm::new(scripted(&["a", "b", "c"]), rtt, Arc::clone(&gate));
        let prompts = vec![prompt(), prompt(), prompt()];
        let start = Instant::now();
        let results = slow.complete_batch(&prompts);
        let batched_elapsed = start.elapsed();
        assert!(results.iter().all(Result::is_ok));
        assert!(batched_elapsed < rtt * 3, "one round trip for the batch, not three");

        let mut slow = SlowLlm::new(scripted(&["a", "b", "c"]), rtt, gate);
        let start = Instant::now();
        for p in &prompts {
            slow.complete(p).unwrap();
        }
        assert!(start.elapsed() >= rtt * 3, "per-prompt completion pays per-prompt round trips");
    }
}
