//! The language-model abstraction: request/response types, token
//! counting, pricing and simulated latency.
//!
//! Every backend (calibrated oracle, heuristic, scripted) implements
//! [`LanguageModel`]; the UVLLM pipeline only sees this trait, exactly
//! as the paper's modularization section prescribes for swapping models.

use crate::prompt::RepairPrompt;
use std::fmt;
use std::time::Duration;

/// Approximate BPE token count (≈ 4 characters per token, the standard
/// rule of thumb for GPT-family tokenizers).
pub fn count_tokens(text: &str) -> u64 {
    (text.len() as u64).div_ceil(4)
}

/// GPT-4-turbo pricing from the paper: $0.01 per 1K input tokens and
/// $0.03 per 1K output tokens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    pub usd_per_1k_prompt: f64,
    pub usd_per_1k_completion: f64,
}

impl Pricing {
    /// The GPT-4-turbo price point quoted in §II of the paper.
    pub const GPT4_TURBO: Pricing =
        Pricing { usd_per_1k_prompt: 0.01, usd_per_1k_completion: 0.03 };

    /// Dollar cost of a token pair.
    pub fn cost(&self, prompt_tokens: u64, completion_tokens: u64) -> f64 {
        prompt_tokens as f64 / 1000.0 * self.usd_per_1k_prompt
            + completion_tokens as f64 / 1000.0 * self.usd_per_1k_completion
    }
}

/// Simulated API latency: a base round-trip plus per-token costs,
/// calibrated to public GPT-4-turbo throughput (~30 output tokens/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    pub base: Duration,
    /// Seconds per 1K prompt tokens (prefill).
    pub secs_per_1k_prompt: f64,
    /// Seconds per completion token (decode).
    pub secs_per_completion_token: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base: Duration::from_millis(500),
            secs_per_1k_prompt: 0.4,
            secs_per_completion_token: 1.0 / 30.0,
        }
    }
}

impl LatencyModel {
    /// Latency for a call with the given token counts.
    pub fn latency(&self, prompt_tokens: u64, completion_tokens: u64) -> Duration {
        let secs = self.base.as_secs_f64()
            + prompt_tokens as f64 / 1000.0 * self.secs_per_1k_prompt
            + completion_tokens as f64 * self.secs_per_completion_token;
        Duration::from_secs_f64(secs)
    }
}

/// One model completion with accounting attached.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Raw response text (JSON for structured-output agents).
    pub content: String,
    pub prompt_tokens: u64,
    pub completion_tokens: u64,
    /// Simulated wall-clock latency of the call.
    pub latency: Duration,
}

/// Cumulative usage across calls.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Usage {
    pub calls: u64,
    pub prompt_tokens: u64,
    pub completion_tokens: u64,
    /// Total simulated latency.
    pub latency: Duration,
}

impl Usage {
    /// Adds one completion's accounting.
    pub fn record(&mut self, c: &Completion) {
        self.calls += 1;
        self.prompt_tokens += c.prompt_tokens;
        self.completion_tokens += c.completion_tokens;
        self.latency += c.latency;
    }

    /// Dollar cost under `pricing`.
    pub fn cost(&self, pricing: Pricing) -> f64 {
        pricing.cost(self.prompt_tokens, self.completion_tokens)
    }
}

impl std::ops::Add for Usage {
    type Output = Usage;
    fn add(self, rhs: Usage) -> Usage {
        Usage {
            calls: self.calls + rhs.calls,
            prompt_tokens: self.prompt_tokens + rhs.prompt_tokens,
            completion_tokens: self.completion_tokens + rhs.completion_tokens,
            latency: self.latency + rhs.latency,
        }
    }
}

/// LLM invocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The backend has no response for this prompt (scripted backend
    /// exhausted, heuristic found nothing applicable). A *semantic*
    /// answer, not an infrastructure failure: retrying it yields the
    /// same result, so the resilience layer passes it through.
    NoResponse(String),
    /// The submission was accepted but the service shut down before the
    /// ticket was answered (see [`crate::service`]).
    ServiceClosed(String),
    /// A transient infrastructure failure (flaky endpoint, dropped
    /// connection, 5xx): the request may succeed if retried. Produced
    /// by real transports and by [`crate::fault::FaultyLlm`]; consumed
    /// by [`crate::resilient::ResilientService`]'s retry loop.
    Transient(String),
    /// The ticket's answer did not arrive within the configured
    /// per-ticket deadline (see
    /// [`crate::resilient::ResiliencePolicy::ticket_deadline`]).
    DeadlineExceeded(String),
}

impl LlmError {
    /// True for failures a retry can plausibly cure (transient
    /// infrastructure errors and blown deadlines) — the class the
    /// resilience layer retries and counts against its circuit
    /// breaker. Semantic answers ([`LlmError::NoResponse`]) and
    /// terminal shutdown ([`LlmError::ServiceClosed`]) are not
    /// retryable: retrying them changes nothing, and treating them as
    /// infrastructure faults would make the resilience layer perturb
    /// fault-free runs.
    pub fn is_retryable(&self) -> bool {
        matches!(self, LlmError::Transient(_) | LlmError::DeadlineExceeded(_))
    }
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::NoResponse(m) => write!(f, "no response: {m}"),
            LlmError::ServiceClosed(m) => write!(f, "llm service closed: {m}"),
            LlmError::Transient(m) => write!(f, "transient llm failure: {m}"),
            LlmError::DeadlineExceeded(m) => write!(f, "llm deadline exceeded: {m}"),
        }
    }
}

impl std::error::Error for LlmError {}

/// A chat-style language model consumed by the repair agents.
///
/// The `Send` supertrait is what lets the campaign engine move a
/// per-job model into a worker thread.
pub trait LanguageModel: Send {
    /// Human-readable backend name (shows up in experiment reports).
    fn name(&self) -> &str;

    /// Produces a completion for a repair prompt.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::NoResponse`] when the backend cannot answer.
    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError>;

    /// Answers a whole batch of prompts in one backend round trip — the
    /// primitive the [`crate::service::BatchedLlm`] fan-out is built on.
    ///
    /// The provided implementation answers sequentially, which keeps
    /// every backend's per-prompt behaviour (and RNG consumption order)
    /// identical to a loop of [`LanguageModel::complete`] calls — the
    /// property the campaign determinism contract rests on. Backends
    /// that can do better override it (the scripted backend dequeues a
    /// whole batch of replies in one step; a real endpoint would issue
    /// one HTTP request — see `SlowLlm`, which pays one round trip per
    /// batch); overrides must preserve the per-prompt results of the
    /// sequential default.
    fn complete_batch(&mut self, prompts: &[RepairPrompt]) -> Vec<Result<Completion, LlmError>> {
        prompts.iter().map(|p| self.complete(p)).collect()
    }

    /// Cumulative usage so far.
    fn usage(&self) -> Usage;
}

// Forwarding impls so pipelines generic over `M: LanguageModel` accept
// owned backends, boxed trait objects and mutable borrows alike.

impl<M: LanguageModel + ?Sized> LanguageModel for &mut M {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
        (**self).complete(prompt)
    }

    fn complete_batch(&mut self, prompts: &[RepairPrompt]) -> Vec<Result<Completion, LlmError>> {
        (**self).complete_batch(prompts)
    }

    fn usage(&self) -> Usage {
        (**self).usage()
    }
}

impl<M: LanguageModel + ?Sized> LanguageModel for Box<M> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
        (**self).complete(prompt)
    }

    fn complete_batch(&mut self, prompts: &[RepairPrompt]) -> Vec<Result<Completion, LlmError>> {
        (**self).complete_batch(prompts)
    }

    fn usage(&self) -> Usage {
        (**self).usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_counting_rounds_up() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("abc"), 1);
        assert_eq!(count_tokens("abcd"), 1);
        assert_eq!(count_tokens("abcde"), 2);
    }

    #[test]
    fn pricing_matches_paper() {
        let p = Pricing::GPT4_TURBO;
        // 1000 in + 1000 out = $0.04.
        assert!((p.cost(1000, 1000) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn latency_grows_with_tokens() {
        let m = LatencyModel::default();
        let short = m.latency(100, 10);
        let long = m.latency(100, 300);
        assert!(long > short);
        // 300 output tokens ≈ 10s of decode.
        assert!(long.as_secs_f64() > 9.0);
    }

    #[test]
    fn usage_accumulates() {
        let mut u = Usage::default();
        u.record(&Completion {
            content: String::new(),
            prompt_tokens: 100,
            completion_tokens: 50,
            latency: Duration::from_secs(2),
        });
        u.record(&Completion {
            content: String::new(),
            prompt_tokens: 200,
            completion_tokens: 100,
            latency: Duration::from_secs(3),
        });
        assert_eq!(u.calls, 2);
        assert_eq!(u.prompt_tokens, 300);
        assert_eq!(u.latency, Duration::from_secs(5));
        let sum = u + Usage::default();
        assert_eq!(sum.calls, 2);
    }
}
