//! Deterministic, seeded fault injection for the LLM boundary.
//!
//! [`FaultyLlm`] wraps any [`LanguageModel`] and injects the failures a
//! real deployment sees — transient endpoint errors, extra latency, and
//! malformed / truncated completions — at rates drawn from a seeded
//! [`FaultPlan`]. Two properties make it a *test instrument* rather
//! than mere chaos:
//!
//! 1. **Reproducibility.** Every fault decision comes from the plan's
//!    own xoshiro stream, with exactly two draws per call regardless of
//!    which fault (if any) fires. The same seed therefore produces the
//!    same fault sequence on every run, machine and worker count —
//!    campaign failure schedules replay from `--fault-seed`.
//! 2. **Inner-stream preservation.** An injected fault never touches
//!    the wrapped model: no call is forwarded, no RNG is consumed, no
//!    usage is recorded. When the resilience layer retries, the inner
//!    model answers exactly as it would have on a fault-free run —
//!    which is what makes "faults + retries ⇒ byte-identical rows"
//!    provable instead of aspirational.
//!
//! Injected latency is the exception to rule 2: the *decision* to
//! stall is seeded, but the stall itself only burns wall-clock before
//! forwarding the call unchanged, so it perturbs timelines, never rows.

use crate::model::{count_tokens, Completion, LanguageModel, LlmError, Usage};
use crate::prompt::RepairPrompt;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::sync::OnceLock;
use std::time::Duration;
use uvllm_obs::{registry, Counter};

/// Registry handles for injected faults (`llm.faults.*`), resolved once.
#[derive(Debug)]
struct FaultMetrics {
    /// Transient errors injected.
    errors: &'static Counter,
    /// Malformed / truncated completions injected.
    malformed: &'static Counter,
    /// Latency stalls injected.
    stalls: &'static Counter,
}

fn metrics() -> &'static FaultMetrics {
    static METRICS: OnceLock<FaultMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FaultMetrics {
        errors: registry().counter("llm.faults.errors"),
        malformed: registry().counter("llm.faults.malformed"),
        stalls: registry().counter("llm.faults.stalls"),
    })
}

/// A seeded fault schedule: what [`FaultyLlm`] injects, and how often.
///
/// Rates are independent probabilities per completion call, resolved in
/// the order error → malformed → truncated from a single uniform draw
/// (so the three are mutually exclusive per call); the latency decision
/// is a second, independent draw. All zeros (the default) injects
/// nothing while still consuming the same RNG stream, so enabling one
/// fault class never reshuffles another's schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed of the fault stream. Campaign wiring derives a per-job
    /// seed from this (see [`FaultPlan::derive`]) so every job replays
    /// its own schedule regardless of worker count.
    pub seed: u64,
    /// Probability of a transient error ([`LlmError::Transient`])
    /// replacing the call.
    pub error_rate: f64,
    /// Probability of a fabricated *malformed* completion (prose where
    /// the agents expect structured JSON) replacing the call.
    pub malform_rate: f64,
    /// Probability of a fabricated *truncated* completion (structured
    /// output cut mid-string, as when a stream drops) replacing the
    /// call.
    pub truncate_rate: f64,
    /// Probability of stalling the call by [`FaultPlan::latency`]
    /// before forwarding it unchanged.
    pub latency_rate: f64,
    /// The injected stall duration when the latency fault fires.
    pub latency: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17,
            error_rate: 0.0,
            malform_rate: 0.0,
            truncate_rate: 0.0,
            latency_rate: 0.0,
            latency: Duration::ZERO,
        }
    }
}

impl FaultPlan {
    /// The same plan with its seed mixed with `salt` — how the campaign
    /// gives every job an independent, reproducible fault stream from
    /// one `--fault-seed` (mirroring how oracle seeds are derived from
    /// instance seed × method salt).
    pub fn derive(&self, salt: u64) -> FaultPlan {
        FaultPlan { seed: self.seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F), ..self.clone() }
    }

    /// True when every rate is zero — wrapping is pointless.
    pub fn is_noop(&self) -> bool {
        self.error_rate <= 0.0
            && self.malform_rate <= 0.0
            && self.truncate_rate <= 0.0
            && self.latency_rate <= 0.0
    }
}

/// What the plan decided for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    None,
    Error,
    Malformed,
    Truncated,
}

/// Counts of faults this wrapper has injected (per-instance view of the
/// global `llm.faults.*` counters; tests assert on it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub errors: u64,
    pub malformed: u64,
    pub truncated: u64,
    pub stalls: u64,
}

/// A [`LanguageModel`] wrapper that injects seeded faults (module docs).
#[derive(Debug)]
pub struct FaultyLlm<M: LanguageModel> {
    inner: M,
    plan: FaultPlan,
    rng: StdRng,
    injected: FaultCounts,
}

impl<M: LanguageModel> FaultyLlm<M> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        FaultyLlm { inner, plan, rng, injected: FaultCounts::default() }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Consumes the wrapper, returning the model.
    pub fn into_inner(self) -> M {
        self.inner
    }

    /// Faults injected so far.
    pub fn injected(&self) -> FaultCounts {
        self.injected
    }

    /// Draws this call's fault decisions: exactly two uniform draws per
    /// call, whatever the rates, so the stream position is a function
    /// of the call index alone.
    fn decide(&mut self) -> (FaultKind, bool) {
        let fault_draw: f64 = self.rng.random();
        let latency_draw: f64 = self.rng.random();
        let kind = if fault_draw < self.plan.error_rate {
            FaultKind::Error
        } else if fault_draw < self.plan.error_rate + self.plan.malform_rate {
            FaultKind::Malformed
        } else if fault_draw
            < self.plan.error_rate + self.plan.malform_rate + self.plan.truncate_rate
        {
            FaultKind::Truncated
        } else {
            FaultKind::None
        };
        let stall = latency_draw < self.plan.latency_rate && !self.plan.latency.is_zero();
        (kind, stall)
    }

    /// A fabricated garbage completion. Deliberately unparsable as
    /// either structured-output schema (`RepairResponse` /
    /// `CompleteResponse`), so the resilience layer's validator — and
    /// an honest agent's own distilling step — reject it.
    fn fabricate(&mut self, prompt: &RepairPrompt, kind: FaultKind) -> Completion {
        let content = match kind {
            FaultKind::Malformed => {
                "I'm sorry, but as a language model I cannot complete this request \
                 without additional context about the design."
                    .to_string()
            }
            // A structured reply torn mid-string: the classic shape of
            // a dropped streaming connection.
            _ => "{\n  \"module name\": \"dut\",\n  \"analysis\": \"the always block".to_string(),
        };
        let prompt_tokens = count_tokens(&prompt.render());
        let completion_tokens = count_tokens(&content);
        Completion { content, prompt_tokens, completion_tokens, latency: Duration::ZERO }
    }
}

impl<M: LanguageModel> LanguageModel for FaultyLlm<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
        let (kind, stall) = self.decide();
        if stall {
            self.injected.stalls += 1;
            metrics().stalls.inc();
            std::thread::sleep(self.plan.latency);
        }
        match kind {
            FaultKind::None => self.inner.complete(prompt),
            FaultKind::Error => {
                self.injected.errors += 1;
                metrics().errors.inc();
                Err(LlmError::Transient("injected transient endpoint failure".to_string()))
            }
            FaultKind::Malformed => {
                self.injected.malformed += 1;
                metrics().malformed.inc();
                Ok(self.fabricate(prompt, kind))
            }
            FaultKind::Truncated => {
                self.injected.truncated += 1;
                metrics().malformed.inc();
                Ok(self.fabricate(prompt, kind))
            }
        }
    }

    fn complete_batch(&mut self, prompts: &[RepairPrompt]) -> Vec<Result<Completion, LlmError>> {
        // Per-prompt injection in submission order: the fault stream
        // advances identically whether prompts arrive one by one or as
        // a batch, so batching does not reshuffle fault schedules.
        prompts.iter().map(|p| self.complete(p)).collect()
    }

    fn usage(&self) -> Usage {
        // Fabricated faults never reach the inner model and never count
        // as usage: a retried run's accounting matches a fault-free one.
        self.inner.usage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::AgentRole;
    use crate::scripted::ScriptedLlm;

    fn prompt() -> RepairPrompt {
        RepairPrompt::new(AgentRole::SyntaxFixer, "spec", "module m; endmodule")
    }

    fn plan(error: f64, malform: f64) -> FaultPlan {
        FaultPlan { seed: 7, error_rate: error, malform_rate: malform, ..FaultPlan::default() }
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let mut sequences = Vec::new();
        for _ in 0..2 {
            let scripted = ScriptedLlm::new((0..64).map(|i| format!("r{i}")));
            let mut faulty = FaultyLlm::new(scripted, plan(0.3, 0.2));
            let seq: Vec<bool> = (0..64).map(|_| faulty.complete(&prompt()).is_ok()).collect();
            sequences.push((seq, faulty.injected()));
        }
        assert_eq!(sequences[0], sequences[1], "fault schedule must replay from the seed");
        assert!(sequences[0].1.errors > 0, "0.3 over 64 calls must fire");
    }

    #[test]
    fn faults_do_not_consume_the_inner_stream() {
        // A scripted inner model makes stream preservation observable:
        // the Nth *forwarded* call must always see the Nth response.
        let scripted = ScriptedLlm::new((0..64).map(|i| format!("r{i}")));
        let mut faulty = FaultyLlm::new(scripted, plan(0.4, 0.2));
        let mut forwarded = 0usize;
        for _ in 0..64 {
            match faulty.complete(&prompt()) {
                Ok(c) if c.content.starts_with('r') => {
                    assert_eq!(c.content, format!("r{forwarded}"));
                    forwarded += 1;
                }
                Ok(_) => {} // fabricated garbage: inner untouched
                Err(LlmError::Transient(_)) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        let counts = faulty.injected();
        assert_eq!(forwarded as u64 + counts.errors + counts.malformed + counts.truncated, 64);
        assert_eq!(faulty.usage().calls, forwarded as u64, "usage counts forwarded calls only");
    }

    #[test]
    fn derived_plans_replay_per_salt() {
        let base = plan(0.5, 0.0);
        let a1: Vec<bool> = {
            let mut f =
                FaultyLlm::new(ScriptedLlm::new((0..32).map(|_| "x".into())), base.derive(1));
            (0..32).map(|_| f.complete(&prompt()).is_ok()).collect()
        };
        let a2: Vec<bool> = {
            let mut f =
                FaultyLlm::new(ScriptedLlm::new((0..32).map(|_| "x".into())), base.derive(1));
            (0..32).map(|_| f.complete(&prompt()).is_ok()).collect()
        };
        let b: Vec<bool> = {
            let mut f =
                FaultyLlm::new(ScriptedLlm::new((0..32).map(|_| "x".into())), base.derive(2));
            (0..32).map(|_| f.complete(&prompt()).is_ok()).collect()
        };
        assert_eq!(a1, a2, "same salt, same schedule");
        assert_ne!(a1, b, "different salts draw independent schedules");
    }

    #[test]
    fn noop_plan_is_transparent() {
        let mut plain = ScriptedLlm::new((0..4).map(|i| format!("r{i}")));
        let mut faulty =
            FaultyLlm::new(ScriptedLlm::new((0..4).map(|i| format!("r{i}"))), FaultPlan::default());
        assert!(FaultPlan::default().is_noop());
        for _ in 0..4 {
            assert_eq!(
                plain.complete(&prompt()).unwrap().content,
                faulty.complete(&prompt()).unwrap().content,
            );
        }
        assert_eq!(faulty.injected(), FaultCounts::default());
    }

    #[test]
    fn batch_and_sequential_injection_agree() {
        let mk =
            || FaultyLlm::new(ScriptedLlm::new((0..16).map(|i| format!("r{i}"))), plan(0.3, 0.3));
        let prompts: Vec<RepairPrompt> = (0..16).map(|_| prompt()).collect();
        let mut seq = mk();
        let sequential: Vec<Result<Completion, LlmError>> =
            prompts.iter().map(|p| seq.complete(p)).collect();
        let mut bat = mk();
        let batched = bat.complete_batch(&prompts);
        assert_eq!(sequential, batched);
        assert_eq!(seq.injected(), bat.injected());
    }

    #[test]
    fn fabricated_completions_are_unparsable() {
        use crate::response::{CompleteResponse, RepairResponse};
        let mut f = FaultyLlm::new(
            ScriptedLlm::new(std::iter::empty::<String>()),
            FaultPlan { malform_rate: 0.5, truncate_rate: 0.5, ..plan(0.0, 0.0) },
        );
        for _ in 0..8 {
            let c = f.complete(&prompt()).unwrap();
            assert!(RepairResponse::parse(&c.content).is_err());
            assert!(CompleteResponse::parse(&c.content).is_err());
        }
    }
}
