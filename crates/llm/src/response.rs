//! Structured-output parsing: the JSON schema of Fig. 4.

use crate::prompt::RepairPair;
use serde::{Deserialize, Serialize};

/// The pair-mode response: `{"module name", "analysis", "correct"}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairResponse {
    #[serde(rename = "module name")]
    pub module_name: String,
    pub analysis: String,
    /// `(original, patched)` fragments applied by exact-match
    /// substitution.
    pub correct: Vec<RepairPair>,
}

impl RepairResponse {
    /// Serialises to the canonical JSON the agents emit.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("response serialisation cannot fail")
    }

    /// Parses a completion, tolerating surrounding prose or markdown
    /// fences (the "distilling" step of §III-D).
    ///
    /// # Errors
    ///
    /// Returns the serde error message when no valid JSON object is
    /// found.
    pub fn parse(content: &str) -> Result<Self, String> {
        parse_json_relaxed(content)
    }
}

/// The complete-code response of the Table III ablation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompleteResponse {
    #[serde(rename = "module name")]
    pub module_name: String,
    pub analysis: String,
    /// The full corrected file.
    pub code: String,
}

impl CompleteResponse {
    /// Serialises to canonical JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("response serialisation cannot fail")
    }

    /// Parses a completion (see [`RepairResponse::parse`]).
    ///
    /// # Errors
    ///
    /// Returns the serde error message when no valid JSON object is
    /// found.
    pub fn parse(content: &str) -> Result<Self, String> {
        parse_json_relaxed(content)
    }
}

/// Extracts the first top-level JSON object from `content` and
/// deserialises it.
fn parse_json_relaxed<T: for<'de> Deserialize<'de>>(content: &str) -> Result<T, String> {
    // Fast path: the whole content is JSON.
    if let Ok(v) = serde_json::from_str::<T>(content) {
        return Ok(v);
    }
    // Otherwise find balanced braces.
    let bytes = content.as_bytes();
    let mut start = None;
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for (i, b) in bytes.iter().enumerate() {
        match (*b, in_str) {
            (b'"', _) if !escape => in_str = !in_str,
            (b'\\', true) => {
                escape = !escape;
                continue;
            }
            (b'{', false) => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            (b'}', false) => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start {
                        if let Ok(v) = serde_json::from_str::<T>(&content[s..=i]) {
                            return Ok(v);
                        }
                        start = None;
                    }
                }
            }
            _ => {}
        }
        escape = false;
    }
    Err("no valid JSON object found in response".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_repair_response() {
        let r = RepairResponse {
            module_name: "accu".into(),
            analysis: "The error is caused by a wrong operator.".into(),
            correct: vec![RepairPair { original: "a - b".into(), patched: "a + b".into() }],
        };
        let json = r.to_json();
        assert!(json.contains("\"module name\""));
        let back = RepairResponse::parse(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parses_with_markdown_fences() {
        // Serde deserialises `RepairPair` from both the tuple form the
        // prompt suggests and the object form.
        let content = "Here is the fix:\n```json\n{\"module name\": \"m\", \
                       \"analysis\": \"x\", \"correct\": [[\"a\", \"b\"]]}\n```\nDone.";
        let content2 = "prose {\"module name\": \"m\", \"analysis\": \"x\", \
                        \"correct\": [{\"original\": \"a\", \"patched\": \"b\"}]} trailing";
        let r1 = RepairResponse::parse(content).unwrap();
        assert_eq!(r1.correct[0].patched, "b");
        let r = RepairResponse::parse(content2).unwrap();
        assert_eq!(r.correct.len(), 1);
        assert_eq!(r.correct[0].original, "a");
    }

    #[test]
    fn complete_response_round_trip() {
        let r = CompleteResponse {
            module_name: "m".into(),
            analysis: "rewrite".into(),
            code: "module m;\nendmodule\n".into(),
        };
        let back = CompleteResponse::parse(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(RepairResponse::parse("not json at all").is_err());
        assert!(RepairResponse::parse("{\"wrong\": 1}").is_err());
    }
}
