//! Structured-output parsing: the JSON schema of Fig. 4.
//!
//! Serialisation is hand-rolled over [`uvllm_json`] (the workspace
//! builds without serde); the wire format is unchanged — pretty-printed
//! objects with the `"module name"` / `"analysis"` / `"correct"` (or
//! `"code"`) members the prompts specify.

use crate::prompt::RepairPair;
use uvllm_json::Json;

/// The pair-mode response: `{"module name", "analysis", "correct"}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairResponse {
    pub module_name: String,
    pub analysis: String,
    /// `(original, patched)` fragments applied by exact-match
    /// substitution.
    pub correct: Vec<RepairPair>,
}

impl RepairResponse {
    /// Serialises to the canonical JSON the agents emit.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("module name".into(), Json::Str(self.module_name.clone())),
            ("analysis".into(), Json::Str(self.analysis.clone())),
            (
                "correct".into(),
                Json::Arr(
                    self.correct
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("original".into(), Json::Str(p.original.clone())),
                                ("patched".into(), Json::Str(p.patched.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render_pretty()
    }

    /// Parses a completion, tolerating surrounding prose or markdown
    /// fences (the "distilling" step of §III-D).
    ///
    /// # Errors
    ///
    /// Returns an error message when no valid JSON object with the
    /// required members is found.
    pub fn parse(content: &str) -> Result<Self, String> {
        parse_json_relaxed(content, |v| {
            let correct = v
                .get("correct")
                .and_then(Json::as_array)
                .ok_or("missing 'correct' array")?
                .iter()
                .map(pair_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(RepairResponse {
                module_name: required_str(v, "module name")?,
                analysis: required_str(v, "analysis")?,
                correct,
            })
        })
    }
}

/// The complete-code response of the Table III ablation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompleteResponse {
    pub module_name: String,
    pub analysis: String,
    /// The full corrected file.
    pub code: String,
}

impl CompleteResponse {
    /// Serialises to canonical JSON.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("module name".into(), Json::Str(self.module_name.clone())),
            ("analysis".into(), Json::Str(self.analysis.clone())),
            ("code".into(), Json::Str(self.code.clone())),
        ])
        .render_pretty()
    }

    /// Parses a completion (see [`RepairResponse::parse`]).
    ///
    /// # Errors
    ///
    /// Returns an error message when no valid JSON object with the
    /// required members is found.
    pub fn parse(content: &str) -> Result<Self, String> {
        parse_json_relaxed(content, |v| {
            Ok(CompleteResponse {
                module_name: required_str(v, "module name")?,
                analysis: required_str(v, "analysis")?,
                code: required_str(v, "code")?,
            })
        })
    }
}

fn required_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string member '{key}'"))
}

/// A repair pair deserialises from both the object form
/// `{"original": ..., "patched": ...}` and the two-element tuple form
/// `["original", "patched"]` that models sometimes emit.
fn pair_from_json(v: &Json) -> Result<RepairPair, String> {
    if let Json::Arr(items) = v {
        if let [Json::Str(original), Json::Str(patched)] = items.as_slice() {
            return Ok(RepairPair { original: original.clone(), patched: patched.clone() });
        }
        return Err("tuple-form pair must be two strings".to_string());
    }
    Ok(RepairPair { original: required_str(v, "original")?, patched: required_str(v, "patched")? })
}

/// Extracts the first top-level JSON object from `content` that
/// `convert` accepts.
fn parse_json_relaxed<T>(
    content: &str,
    convert: impl Fn(&Json) -> Result<T, String>,
) -> Result<T, String> {
    // Fast path: the whole content is JSON of the right shape. A
    // failed conversion is not final — the object may be nested inside
    // other JSON (e.g. wrapped in an array), which the brace scan below
    // still finds.
    let mut last_err = None;
    if let Ok(v) = Json::parse(content.trim()) {
        match convert(&v) {
            Ok(out) => return Ok(out),
            Err(e) => last_err = Some(e),
        }
    }
    // Otherwise find balanced brace spans and try each.
    let bytes = content.as_bytes();
    let mut start = None;
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for (i, b) in bytes.iter().enumerate() {
        match (*b, in_str) {
            (b'"', _) if !escape => in_str = !in_str,
            (b'\\', true) => {
                escape = !escape;
                continue;
            }
            (b'{', false) => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            (b'}', false) => {
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = start {
                        match Json::parse(&content[s..=i]).and_then(|v| convert(&v)) {
                            Ok(v) => return Ok(v),
                            Err(e) => last_err = Some(e),
                        }
                        start = None;
                    }
                } else if depth < 0 {
                    depth = 0;
                }
            }
            _ => {}
        }
        escape = false;
    }
    Err(last_err.unwrap_or_else(|| "no valid JSON object found in response".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_repair_response() {
        let r = RepairResponse {
            module_name: "accu".into(),
            analysis: "The error is caused by a wrong operator.".into(),
            correct: vec![RepairPair { original: "a - b".into(), patched: "a + b".into() }],
        };
        let json = r.to_json();
        assert!(json.contains("\"module name\""));
        let back = RepairResponse::parse(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parses_with_markdown_fences() {
        // Pairs deserialise from both the tuple form the prompt suggests
        // and the object form.
        let content = "Here is the fix:\n```json\n{\"module name\": \"m\", \
                       \"analysis\": \"x\", \"correct\": [[\"a\", \"b\"]]}\n```\nDone.";
        let content2 = "prose {\"module name\": \"m\", \"analysis\": \"x\", \
                        \"correct\": [{\"original\": \"a\", \"patched\": \"b\"}]} trailing";
        let r1 = RepairResponse::parse(content).unwrap();
        assert_eq!(r1.correct[0].patched, "b");
        let r = RepairResponse::parse(content2).unwrap();
        assert_eq!(r.correct.len(), 1);
        assert_eq!(r.correct[0].original, "a");
    }

    #[test]
    fn complete_response_round_trip() {
        let r = CompleteResponse {
            module_name: "m".into(),
            analysis: "rewrite".into(),
            code: "module m;\nendmodule\n".into(),
        };
        let back = CompleteResponse::parse(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(RepairResponse::parse("not json at all").is_err());
        assert!(RepairResponse::parse("{\"wrong\": 1}").is_err());
    }

    #[test]
    fn object_nested_in_other_json_is_found() {
        // The whole completion parses as an array; the brace scan must
        // still recover the embedded response object.
        let content = "[{\"module name\": \"m\", \"analysis\": \"x\", \
                       \"correct\": [[\"a\", \"b\"]]}]";
        let r = RepairResponse::parse(content).unwrap();
        assert_eq!(r.correct[0].original, "a");
    }

    #[test]
    fn multiline_code_survives_the_round_trip() {
        let r = CompleteResponse {
            module_name: "m".into(),
            analysis: "with \"quotes\" and\ttabs".into(),
            code: "module m(input a, output y);\n  assign y = ~a;\nendmodule\n".into(),
        };
        let back = CompleteResponse::parse(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }
}
