//! Prompt construction for the repair agents (Fig. 4 of the paper).
//!
//! Prompts are kept structured so backends can both render them to text
//! (for token accounting) and introspect which information the pipeline
//! supplied (the calibrated oracle's success probability depends on the
//! information mode, mirroring how real LLM fix rates improve with
//! richer error context).

use std::fmt;

/// Which agent is being invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AgentRole {
    /// Pre-processing syntax fixer (consumes lint logs).
    SyntaxFixer,
    /// Repair in Mismatch-Signal mode (§III-C segmented extraction).
    MismatchDebugger,
    /// Repair in Suspicious-Line mode (deep localization).
    SuspiciousLineDebugger,
    /// Whole-file repair from spec + code only (GPT-direct baseline).
    WholeCodeReviewer,
    /// Reference-model author (UVM construction phase).
    RefModelWriter,
}

impl AgentRole {
    /// System-prompt preamble for the role.
    pub fn preamble(&self) -> &'static str {
        match self {
            AgentRole::SyntaxFixer => {
                "You are an expert in Verilog verification. Fix the compile \
                 errors reported by the linter without changing behaviour."
            }
            AgentRole::MismatchDebugger => {
                "You are an expert in Verilog verification. The UVM testbench \
                 found output mismatches; repair the functional error."
            }
            AgentRole::SuspiciousLineDebugger => {
                "You are an expert in Verilog verification. Suspicious lines \
                 from dynamic slicing are given; repair the functional error."
            }
            AgentRole::WholeCodeReviewer => {
                "You are an expert in Verilog verification. Review the design \
                 against its specification and output a corrected version."
            }
            AgentRole::RefModelWriter => {
                "You are an expert verification engineer. Write an executable \
                 reference model for the specification below."
            }
        }
    }
}

/// A mismatch record included in MS-mode prompts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MismatchInfo {
    pub time: u64,
    pub signal: String,
    pub expected: String,
    pub actual: String,
    /// Input pin values at the mismatch timestamp (Algorithm 2's `IV`).
    pub input_values: Vec<(String, String)>,
}

/// The error information section of the prompt — the paper's segmented
/// information extraction strategy decides which variant is sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorInfo {
    /// No error context (GPT-direct baseline).
    None,
    /// Rendered linter log (pre-processing stage).
    LintLog(String),
    /// Raw simulation log (MEIC-style baselines).
    RawLog(String),
    /// Mismatch signals with IO values (MS mode).
    MismatchSignals(Vec<MismatchInfo>),
    /// Mismatch signals plus suspicious source lines (SL mode).
    SuspiciousLines { signals: Vec<MismatchInfo>, lines: Vec<(u32, String)> },
}

impl ErrorInfo {
    /// Short tag used in reports.
    pub fn mode_name(&self) -> &'static str {
        match self {
            ErrorInfo::None => "none",
            ErrorInfo::LintLog(_) => "lint",
            ErrorInfo::RawLog(_) => "rawlog",
            ErrorInfo::MismatchSignals(_) => "ms",
            ErrorInfo::SuspiciousLines { .. } => "sl",
        }
    }
}

/// An original → patched snippet pair (the JSON `correct` entries of
/// Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairPair {
    pub original: String,
    pub patched: String,
}

/// How the agent must format its repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputMode {
    /// `(original, patched)` pairs — UVLLM's default.
    Pairs,
    /// Regenerate the complete file — the Table III ablation.
    Complete,
}

/// A fully assembled repair prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairPrompt {
    pub role: AgentRole,
    /// Natural-language specification of the DUT.
    pub spec: String,
    /// Current DUT source.
    pub code: String,
    pub error_info: ErrorInfo,
    /// Previously rejected repairs (rollback's "damage repairs").
    pub damage_repairs: Vec<RepairPair>,
    pub output_mode: OutputMode,
}

impl RepairPrompt {
    /// Creates a prompt with no error info or damage repairs.
    pub fn new(role: AgentRole, spec: impl Into<String>, code: impl Into<String>) -> Self {
        RepairPrompt {
            role,
            spec: spec.into(),
            code: code.into(),
            error_info: ErrorInfo::None,
            damage_repairs: Vec::new(),
            output_mode: OutputMode::Pairs,
        }
    }

    /// Builder: attach error information.
    pub fn with_error_info(mut self, info: ErrorInfo) -> Self {
        self.error_info = info;
        self
    }

    /// Builder: attach damage repairs.
    pub fn with_damage_repairs(mut self, repairs: Vec<RepairPair>) -> Self {
        self.damage_repairs = repairs;
        self
    }

    /// Builder: select the output mode.
    pub fn with_output_mode(mut self, mode: OutputMode) -> Self {
        self.output_mode = mode;
        self
    }

    /// Renders the full prompt text sent to the model.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(self.role.preamble());
        out.push_str("\n\n## Specification\n");
        out.push_str(&self.spec);
        out.push_str("\n\n## DUT code\n```verilog\n");
        out.push_str(&self.code);
        out.push_str("```\n");
        match &self.error_info {
            ErrorInfo::None => {}
            ErrorInfo::LintLog(log) => {
                out.push_str("\n## Linter output\n");
                out.push_str(log);
                out.push('\n');
            }
            ErrorInfo::RawLog(log) => {
                out.push_str("\n## Simulation log\n");
                out.push_str(log);
                out.push('\n');
            }
            ErrorInfo::MismatchSignals(ms) => {
                out.push_str("\n## Mismatch signals\n");
                for m in ms {
                    out.push_str(&format!(
                        "- @{} signal '{}' expected {} actual {} (inputs: {})\n",
                        m.time,
                        m.signal,
                        m.expected,
                        m.actual,
                        m.input_values
                            .iter()
                            .map(|(k, v)| format!("{k}={v}"))
                            .collect::<Vec<_>>()
                            .join(" ")
                    ));
                }
            }
            ErrorInfo::SuspiciousLines { signals, lines } => {
                out.push_str("\n## Mismatch signals\n");
                for m in signals {
                    out.push_str(&format!(
                        "- @{} signal '{}' expected {} actual {}\n",
                        m.time, m.signal, m.expected, m.actual
                    ));
                }
                out.push_str("\n## Suspicious lines (dynamic slice)\n");
                for (n, text) in lines {
                    out.push_str(&format!("{n}: {text}\n"));
                }
            }
        }
        if !self.damage_repairs.is_empty() {
            out.push_str("\n## Damage repairs (previously rejected, do NOT repeat)\n");
            for r in &self.damage_repairs {
                out.push_str(&format!("- `{}` -> `{}`\n", r.original, r.patched));
            }
        }
        match self.output_mode {
            OutputMode::Pairs => out.push_str(
                "\n## Repair instructions\nRespond with JSON: {\"module name\": \
                 ..., \"analysis\": ..., \"correct\": [[\"original\", \
                 \"patched\"], ...]} where each pair replaces one code \
                 fragment.\n",
            ),
            OutputMode::Complete => out.push_str(
                "\n## Repair instructions\nRespond with JSON: {\"module name\": \
                 ..., \"analysis\": ..., \"code\": \"<the complete corrected \
                 file>\"}.\n",
            ),
        }
        out
    }
}

impl fmt::Display for RepairPrompt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_sections() {
        let p = RepairPrompt::new(AgentRole::MismatchDebugger, "adds numbers", "module x;")
            .with_error_info(ErrorInfo::MismatchSignals(vec![MismatchInfo {
                time: 125,
                signal: "sum".into(),
                expected: "8'h1a".into(),
                actual: "8'h0a".into(),
                input_values: vec![("a".into(), "8'h10".into())],
            }]))
            .with_damage_repairs(vec![RepairPair {
                original: "a - b".into(),
                patched: "a + b".into(),
            }]);
        let text = p.render();
        assert!(text.contains("## Specification"));
        assert!(text.contains("## Mismatch signals"));
        assert!(text.contains("sum"));
        assert!(text.contains("Damage repairs"));
        assert!(text.contains("\"correct\""));
    }

    #[test]
    fn complete_mode_changes_instructions() {
        let p = RepairPrompt::new(AgentRole::WholeCodeReviewer, "spec", "code")
            .with_output_mode(OutputMode::Complete);
        assert!(p.render().contains("complete corrected"));
    }

    #[test]
    fn mode_names() {
        assert_eq!(ErrorInfo::None.mode_name(), "none");
        assert_eq!(ErrorInfo::LintLog(String::new()).mode_name(), "lint");
        assert_eq!(ErrorInfo::SuspiciousLines { signals: vec![], lines: vec![] }.mode_name(), "sl");
    }
}
