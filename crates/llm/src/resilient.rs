//! Resilient serving: retry/backoff, circuit breaking and graceful
//! degradation on top of any [`LlmService`].
//!
//! [`ResilientService`] wraps an inner service and re-drives its
//! submit/await protocol so callers see a *policy* instead of raw
//! failures:
//!
//! * **Retry with exponential backoff + seeded jitter.** Retryable
//!   failures ([`LlmError::is_retryable`], malformed completions when
//!   validation is on) are retried up to a per-ticket budget, with
//!   delays of `base · 2^(attempt-1)` capped at `max` and scaled by a
//!   seeded jitter factor — the jitter *sequence* replays from the
//!   policy seed, so fault-injection campaigns are reproducible while
//!   real deployments still avoid thundering-herd synchronization.
//! * **Per-ticket deadline.** An optional wall-clock budget across all
//!   of a ticket's attempts: once blown, the layer stops retrying and
//!   degrades (an already-delivered good completion is never discarded
//!   — paid-for answers are kept, which also keeps deadline-free runs
//!   deterministic).
//! * **Circuit breaker.** Closed → Open on a run of consecutive
//!   failures; Open fast-fails submissions without touching the inner
//!   service for a *ticket-counted* cooldown (ticket counts, not wall
//!   clock, so breaker behaviour is identical at any worker count);
//!   then HalfOpen lets one probe ticket through — success closes the
//!   breaker, failure re-opens it.
//! * **Graceful degradation.** When the retry budget, deadline or
//!   breaker exhausts a ticket, the prompt is answered by the
//!   rule-based [`HeuristicLlm`] fallback instead of erroring the whole
//!   job; every such ticket is counted in
//!   [`ResilienceStats::degraded`] so campaign rows can be tagged
//!   honestly rather than passing degraded output off as the primary
//!   backend's.
//!
//! **Transparency contract:** with no faults arriving, the wrapper is
//! invisible — completions, usage totals and semantic errors
//! ([`LlmError::NoResponse`], [`LlmError::ServiceClosed`]) pass through
//! unchanged, so enabling resilience cannot perturb a healthy
//! campaign's rows.
//!
//! **Usage accounting:** the wrapper keeps its *own* [`Usage`],
//! recording only finally-accepted completions. The inner handle's
//! per-ticket deltas would count fabricated garbage and abandoned
//! attempts; accepted-only accounting makes a faulted-but-retried run's
//! numbers equal a fault-free run's, which is what the byte-identity
//! gate checks.

use crate::heuristic::HeuristicLlm;
use crate::model::{Completion, LanguageModel, LlmError, Usage};
use crate::prompt::RepairPrompt;
use crate::response::{CompleteResponse, RepairResponse};
use crate::service::{LlmService, Ticket, WaitStats};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use uvllm_obs::{registry, Counter, Histogram};

/// Registry handles for the resilience layer (`llm.*`), resolved once.
#[derive(Debug)]
struct ResilienceMetrics {
    /// Retry attempts issued (not counting first attempts).
    retries: &'static Counter,
    /// Backoff delay per retry, in microseconds.
    retry_delay_us: &'static Histogram,
    /// Circuit-breaker state changes (any direction).
    breaker_transitions: &'static Counter,
    /// Tickets answered by the degradation fallback.
    degraded: &'static Counter,
    /// Tickets that blew their wall-clock deadline.
    deadline_misses: &'static Counter,
}

fn metrics() -> &'static ResilienceMetrics {
    static METRICS: OnceLock<ResilienceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ResilienceMetrics {
        retries: registry().counter("llm.retries"),
        retry_delay_us: registry().histogram("llm.retry_delay_us"),
        breaker_transitions: registry().counter("llm.breaker_transitions"),
        degraded: registry().counter("llm.degraded"),
        deadline_misses: registry().counter("llm.deadline_misses"),
    })
}

/// Knobs of a [`ResilientService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Retry attempts per ticket beyond the first (0 disables retry).
    pub retries: u32,
    /// First retry's backoff; attempt `n` waits `base · 2^(n-1)`.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Seed of the jitter stream (campaigns derive a per-job seed so
    /// every job's delays replay independently of worker count).
    pub jitter_seed: u64,
    /// Optional wall-clock budget per ticket across all attempts; blown
    /// budgets stop retrying and degrade. `None` (the default) keeps
    /// retry decisions free of wall-clock and therefore deterministic.
    pub ticket_deadline: Option<Duration>,
    /// Consecutive failures that trip the breaker Closed → Open.
    pub breaker_threshold: u32,
    /// Submissions fast-failed while Open before probing (HalfOpen).
    pub breaker_cooldown: u32,
    /// Treat completions that parse as neither [`RepairResponse`] nor
    /// [`CompleteResponse`] as retryable failures. On for campaign
    /// wiring (every genuine backend emits structured output); off by
    /// default so plain-text services are not penalized.
    pub validate: bool,
    /// Route exhausted tickets to the [`HeuristicLlm`] fallback instead
    /// of surfacing the final failure.
    pub degrade: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            retries: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x5E11_1E57,
            ticket_deadline: None,
            breaker_threshold: 5,
            breaker_cooldown: 8,
            validate: false,
            degrade: true,
        }
    }
}

impl ResiliencePolicy {
    /// The same policy with its jitter seed mixed with `salt` (per-job
    /// derivation, mirroring [`crate::fault::FaultPlan::derive`]).
    pub fn derive(&self, salt: u64) -> ResiliencePolicy {
        ResiliencePolicy {
            jitter_seed: self.jitter_seed ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D),
            ..self.clone()
        }
    }
}

/// What the resilience layer did on one handle — surfaced through
/// [`LlmService::resilience_stats`] so campaign rows can be tagged
/// without downcasting the boxed service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Retry attempts issued.
    pub retries: u64,
    /// Retryable failures observed (injected errors, malformed
    /// completions, breaker fast-fails).
    pub faults_seen: u64,
    /// Tickets answered by the degradation fallback.
    pub degraded: u64,
    /// Breaker state transitions.
    pub breaker_transitions: u64,
    /// Tickets that blew their wall-clock deadline.
    pub deadline_misses: u64,
}

/// Circuit-breaker state machine (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { cooldown_left: u32 },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    threshold: u32,
    cooldown: u32,
    transitions: u64,
}

impl Breaker {
    fn new(policy: &ResiliencePolicy) -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            threshold: policy.breaker_threshold.max(1),
            cooldown: policy.breaker_cooldown.max(1),
            transitions: 0,
        }
    }

    fn transition(&mut self, to: BreakerState) {
        if self.state != to {
            self.state = to;
            self.transitions += 1;
            metrics().breaker_transitions.inc();
        }
    }

    /// Consulted per submission: `true` lets the attempt through to the
    /// inner service (Closed, or the HalfOpen probe); `false` fast-fails
    /// it and ticks the Open cooldown.
    fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { cooldown_left } => {
                if cooldown_left <= 1 {
                    self.transition(BreakerState::HalfOpen);
                } else {
                    self.state = BreakerState::Open { cooldown_left: cooldown_left - 1 };
                }
                false
            }
        }
    }

    fn on_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.transition(BreakerState::Closed);
        }
    }

    fn on_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to Open.
                self.consecutive_failures = self.threshold;
                self.transition(BreakerState::Open { cooldown_left: self.cooldown });
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.transition(BreakerState::Open { cooldown_left: self.cooldown });
                }
            }
            BreakerState::Open { .. } => {}
        }
    }
}

/// One submitted-but-unredeemed prompt.
struct PendingTicket {
    prompt: RepairPrompt,
    /// The inner service's ticket for the eager first attempt; `None`
    /// when the breaker fast-failed the submission.
    inner_ticket: Option<Ticket>,
    submitted: Instant,
}

/// The resilience wrapper (module docs).
pub struct ResilientService<S: LlmService> {
    inner: S,
    policy: ResiliencePolicy,
    fallback: HeuristicLlm,
    jitter: StdRng,
    breaker: Breaker,
    pending: HashMap<u64, PendingTicket>,
    next_ticket: u64,
    usage: Usage,
    stats: ResilienceStats,
}

impl<S: LlmService> std::fmt::Debug for ResilientService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientService")
            .field("backend", &self.inner.backend_name())
            .field("policy", &self.policy)
            .field("breaker", &self.breaker.state)
            .finish()
    }
}

impl<S: LlmService> ResilientService<S> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: S, policy: ResiliencePolicy) -> Self {
        let jitter = StdRng::seed_from_u64(policy.jitter_seed);
        let breaker = Breaker::new(&policy);
        ResilientService {
            inner,
            policy,
            fallback: HeuristicLlm::new(),
            jitter,
            breaker,
            pending: HashMap::new(),
            next_ticket: 0,
            usage: Usage::default(),
            stats: ResilienceStats::default(),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner service.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// True once any ticket was answered by the degradation fallback.
    pub fn degraded(&self) -> bool {
        self.stats.degraded > 0
    }

    /// Submits through the breaker: `None` means fast-failed.
    fn guarded_submit(&mut self, prompt: &RepairPrompt) -> Option<Ticket> {
        if self.breaker.admit() {
            Some(self.inner.submit(prompt))
        } else {
            None
        }
    }

    /// A completion is acceptable when validation is off or it parses
    /// as one of the structured-output schemas every genuine backend
    /// emits.
    fn acceptable(&self, completion: &Completion) -> bool {
        !self.policy.validate
            || RepairResponse::parse(&completion.content).is_ok()
            || CompleteResponse::parse(&completion.content).is_ok()
    }

    /// Backoff for retry attempt `n` (1-based): `base · 2^(n-1)` capped
    /// at `max`, scaled by a seeded jitter factor in `[0.5, 1.0)`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        let raw = self.policy.base_backoff.saturating_mul(1u32 << exp);
        let capped = raw.min(self.policy.max_backoff);
        let factor = 0.5 + 0.5 * self.jitter.random::<f64>();
        capped.mul_f64(factor)
    }

    /// Answers an exhausted ticket via the fallback chain.
    fn degrade(&mut self, pending: &PendingTicket, last: LlmError) -> Result<Completion, LlmError> {
        if !self.policy.degrade {
            return Err(last);
        }
        self.stats.degraded += 1;
        metrics().degraded.inc();
        match self.fallback.complete(&pending.prompt) {
            Ok(completion) => {
                self.usage.record(&completion);
                Ok(completion)
            }
            // The fallback had no applicable rule: surface its semantic
            // "no response" (the repair loops already degrade on it)
            // rather than the transient failure a caller might retry.
            Err(err) => Err(err),
        }
    }
}

impl<S: LlmService> LlmService for ResilientService<S> {
    fn backend_name(&self) -> &str {
        self.inner.backend_name()
    }

    fn submit(&mut self, prompt: &RepairPrompt) -> Ticket {
        let ticket = Ticket::new(self.next_ticket);
        self.next_ticket += 1;
        // Eager first attempt: submitting to the inner service right
        // away preserves whatever pipelining/batching it does; retries
        // (synchronous submit+await rounds) only begin once the caller
        // blocks on redemption.
        let inner_ticket = self.guarded_submit(prompt);
        self.pending.insert(
            ticket.id(),
            PendingTicket { prompt: prompt.clone(), inner_ticket, submitted: Instant::now() },
        );
        ticket
    }

    fn await_completion(&mut self, ticket: Ticket) -> Result<Completion, LlmError> {
        let mut pending = self.pending.remove(&ticket.id()).ok_or_else(|| {
            LlmError::NoResponse(format!("ticket #{} was never issued by this handle", ticket.id()))
        })?;
        let mut attempt = 0u32;
        loop {
            // A fast-failed attempt (breaker open) says nothing about
            // the backend's health, so it must not feed the breaker —
            // otherwise the rejected ticket that ticked Open → HalfOpen
            // would itself count as a failed probe and re-open it.
            let was_real_attempt = pending.inner_ticket.is_some();
            let outcome = match pending.inner_ticket.take() {
                Some(inner_ticket) => self.inner.await_completion(inner_ticket),
                None => Err(LlmError::Transient("circuit breaker open".to_string())),
            };
            let failure = match outcome {
                Ok(completion) if self.acceptable(&completion) => {
                    self.breaker.on_success();
                    self.stats.breaker_transitions = self.breaker.transitions;
                    self.usage.record(&completion);
                    return Ok(completion);
                }
                Ok(_) => {
                    LlmError::Transient("malformed completion (failed validation)".to_string())
                }
                // Semantic answers and terminal shutdown pass through
                // untouched: retrying cannot change them, and counting
                // them against the breaker would make the resilience
                // layer perturb fault-free runs.
                Err(err) if !err.is_retryable() => return Err(err),
                Err(err) => err,
            };
            if was_real_attempt {
                self.breaker.on_failure();
            }
            self.stats.faults_seen += 1;
            self.stats.breaker_transitions = self.breaker.transitions;
            if attempt >= self.policy.retries {
                return self.degrade(&pending, failure);
            }
            if let Some(deadline) = self.policy.ticket_deadline {
                if pending.submitted.elapsed() >= deadline {
                    self.stats.deadline_misses += 1;
                    metrics().deadline_misses.inc();
                    let miss = LlmError::DeadlineExceeded(format!(
                        "ticket #{} exceeded its {deadline:?} budget after {attempt} retries",
                        ticket.id()
                    ));
                    return self.degrade(&pending, miss);
                }
            }
            attempt += 1;
            self.stats.retries += 1;
            metrics().retries.inc();
            let delay = self.backoff(attempt);
            metrics().retry_delay_us.record(delay.as_micros() as u64);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            pending.inner_ticket = self.guarded_submit(&pending.prompt);
        }
    }

    fn usage(&self) -> Usage {
        self.usage
    }

    fn wait_stats(&self) -> WaitStats {
        self.inner.wait_stats()
    }

    fn resilience_stats(&self) -> ResilienceStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultyLlm};
    use crate::model::{count_tokens, LanguageModel};
    use crate::prompt::AgentRole;
    use crate::scripted::ScriptedLlm;
    use crate::service::DirectService;

    fn prompt() -> RepairPrompt {
        RepairPrompt::new(AgentRole::SyntaxFixer, "spec", "module m; endmodule")
    }

    fn scripted(n: usize) -> ScriptedLlm {
        ScriptedLlm::new((0..n).map(|i| format!("r{i}")))
    }

    fn fast_policy() -> ResiliencePolicy {
        ResiliencePolicy {
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(400),
            ..ResiliencePolicy::default()
        }
    }

    /// A backend that fails its first `fail_first` calls with a
    /// transient error, then answers.
    struct FlakyLlm {
        fail_first: usize,
        calls: usize,
        usage: Usage,
    }

    impl FlakyLlm {
        fn new(fail_first: usize) -> Self {
            FlakyLlm { fail_first, calls: 0, usage: Usage::default() }
        }
    }

    impl LanguageModel for FlakyLlm {
        fn name(&self) -> &str {
            "flaky"
        }

        fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
            self.calls += 1;
            if self.calls <= self.fail_first {
                return Err(LlmError::Transient("flake".to_string()));
            }
            let content = format!("ok{}", self.calls);
            let completion = Completion {
                content,
                prompt_tokens: count_tokens(&prompt.render()),
                completion_tokens: 1,
                latency: Duration::ZERO,
            };
            self.usage.record(&completion);
            Ok(completion)
        }

        fn usage(&self) -> Usage {
            self.usage
        }
    }

    #[test]
    fn transparent_without_faults() {
        let mut plain = DirectService::new(scripted(3));
        let mut resilient = ResilientService::new(DirectService::new(scripted(3)), fast_policy());
        for _ in 0..3 {
            assert_eq!(
                plain.complete(&prompt()).unwrap().content,
                resilient.complete(&prompt()).unwrap().content,
            );
        }
        assert_eq!(resilient.usage(), plain.usage(), "accepted-only accounting matches");
        assert_eq!(resilient.resilience_stats(), ResilienceStats::default());
        // Semantic errors pass through unchanged (exhausted backend).
        assert!(matches!(resilient.complete(&prompt()), Err(LlmError::NoResponse(_))));
        assert_eq!(resilient.resilience_stats().faults_seen, 0);
    }

    #[test]
    fn retries_recover_the_fault_free_stream() {
        // 40% injected transient errors; with retries on, the delivered
        // contents and usage must equal a fault-free run's.
        let mut baseline = DirectService::new(scripted(16));
        let expected: Vec<String> =
            (0..16).map(|_| baseline.complete(&prompt()).unwrap().content).collect();

        let plan = FaultPlan { seed: 11, error_rate: 0.4, ..FaultPlan::default() };
        let faulty = DirectService::new(FaultyLlm::new(scripted(16), plan));
        let mut resilient = ResilientService::new(
            faulty,
            ResiliencePolicy { retries: 8, breaker_threshold: 100, ..fast_policy() },
        );
        let delivered: Vec<String> =
            (0..16).map(|_| resilient.complete(&prompt()).unwrap().content).collect();

        assert_eq!(delivered, expected);
        assert_eq!(resilient.usage(), baseline.usage());
        let stats = resilient.resilience_stats();
        assert!(stats.retries > 0, "0.4 error rate over 16 tickets must retry");
        assert_eq!(stats.degraded, 0);
    }

    #[test]
    fn malformed_completions_are_retried_under_validation() {
        let good = RepairResponse {
            module_name: "m".to_string(),
            analysis: "a".to_string(),
            correct: vec![],
        }
        .to_json();
        let plan =
            FaultPlan { seed: 3, malform_rate: 0.3, truncate_rate: 0.2, ..FaultPlan::default() };
        let inner = ScriptedLlm::new((0..16).map(|_| good.clone()));
        let faulty = DirectService::new(FaultyLlm::new(inner, plan));
        let mut resilient = ResilientService::new(
            faulty,
            ResiliencePolicy {
                retries: 8,
                validate: true,
                breaker_threshold: 100,
                ..fast_policy()
            },
        );
        for _ in 0..16 {
            let c = resilient.complete(&prompt()).unwrap();
            assert_eq!(c.content, good, "garbage must never be delivered");
        }
        let stats = resilient.resilience_stats();
        assert!(stats.retries > 0, "injected garbage must have forced retries");
        assert_eq!(stats.degraded, 0);
    }

    #[test]
    fn budget_exhaustion_degrades_and_is_counted() {
        let plan = FaultPlan { seed: 5, error_rate: 1.0, ..FaultPlan::default() };
        let faulty = DirectService::new(FaultyLlm::new(scripted(4), plan));
        let mut resilient = ResilientService::new(
            faulty,
            ResiliencePolicy { retries: 2, breaker_threshold: 100, ..fast_policy() },
        );
        // The heuristic fallback has no lint log to work from, so the
        // degraded answer is its semantic NoResponse — but the ticket is
        // still tagged degraded, which is what row honesty rests on.
        let result = resilient.complete(&prompt());
        assert!(matches!(result, Err(LlmError::NoResponse(_))), "got {result:?}");
        let stats = resilient.resilience_stats();
        assert_eq!(stats.degraded, 1);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.faults_seen, 3, "initial attempt + 2 retries all failed");
        assert!(resilient.degraded());
    }

    #[test]
    fn degradation_can_answer_via_heuristic() {
        use crate::prompt::ErrorInfo;
        // A prompt the rule-based fallback CAN repair: missing ';'.
        let code = "module m(input a, output y);\nassign y = a\nendmodule\n";
        let log = "%Error: dut.v:3:1: syntax error, unexpected 'endmodule', expected ';'";
        let p = RepairPrompt::new(AgentRole::SyntaxFixer, "passes a through", code)
            .with_error_info(ErrorInfo::LintLog(log.to_string()));
        let plan = FaultPlan { seed: 5, error_rate: 1.0, ..FaultPlan::default() };
        let faulty = DirectService::new(FaultyLlm::new(scripted(1), plan));
        let mut resilient = ResilientService::new(
            faulty,
            ResiliencePolicy { retries: 1, breaker_threshold: 100, ..fast_policy() },
        );
        let completion = resilient.complete(&p).expect("heuristic fallback answers");
        let parsed = RepairResponse::parse(&completion.content).expect("structured output");
        assert_eq!(parsed.correct[0].patched, "assign y = a;");
        assert_eq!(resilient.resilience_stats().degraded, 1);
        assert_eq!(resilient.usage().calls, 1, "the degraded answer is accounted");
    }

    #[test]
    fn breaker_opens_and_fast_fails_without_touching_inner() {
        let plan = FaultPlan { seed: 9, error_rate: 1.0, ..FaultPlan::default() };
        let faulty = DirectService::new(FaultyLlm::new(scripted(0), plan));
        let policy = ResiliencePolicy {
            retries: 0,
            degrade: false,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            ..fast_policy()
        };
        let mut resilient = ResilientService::new(faulty, policy);
        for _ in 0..3 {
            assert!(resilient.complete(&prompt()).is_err());
        }
        let tripped = resilient.inner().model().injected().errors;
        assert_eq!(tripped, 3, "three real attempts tripped the breaker");
        assert!(resilient.resilience_stats().breaker_transitions >= 1);
        // While Open, submissions fast-fail: the inner model sees nothing.
        for _ in 0..3 {
            assert!(resilient.complete(&prompt()).is_err());
        }
        assert_eq!(
            resilient.inner().model().injected().errors,
            tripped,
            "open breaker must not touch the inner service"
        );
    }

    #[test]
    fn halfopen_probe_closes_the_breaker_on_success() {
        // Fails 3 calls (tripping threshold 3), then recovers.
        let policy = ResiliencePolicy {
            retries: 0,
            degrade: false,
            breaker_threshold: 3,
            breaker_cooldown: 2,
            ..fast_policy()
        };
        let mut resilient = ResilientService::new(DirectService::new(FlakyLlm::new(3)), policy);
        for _ in 0..3 {
            assert!(resilient.complete(&prompt()).is_err());
        }
        // Two fast-failed tickets tick the cooldown to the probe.
        assert!(resilient.complete(&prompt()).is_err());
        assert!(resilient.complete(&prompt()).is_err());
        // Probe ticket reaches the (now healthy) backend and closes the
        // breaker; subsequent tickets flow normally.
        assert_eq!(resilient.complete(&prompt()).unwrap().content, "ok4");
        assert_eq!(resilient.complete(&prompt()).unwrap().content, "ok5");
        let stats = resilient.resilience_stats();
        // Closed→Open, Open→HalfOpen, HalfOpen→Closed.
        assert_eq!(stats.breaker_transitions, 3);
    }

    #[test]
    fn jitter_sequence_replays_from_the_seed() {
        let mk = || {
            let plan = FaultPlan { seed: 21, error_rate: 0.5, ..FaultPlan::default() };
            let faulty = DirectService::new(FaultyLlm::new(scripted(8), plan));
            ResilientService::new(
                faulty,
                ResiliencePolicy { retries: 4, breaker_threshold: 100, ..fast_policy() },
            )
        };
        let run = |mut s: ResilientService<_>| -> (Vec<String>, ResilienceStats) {
            let out = (0..8).map(|_| s.complete(&prompt()).unwrap().content).collect();
            (out, s.resilience_stats())
        };
        assert_eq!(run(mk()), run(mk()), "same seeds, same schedule and stats");
    }

    #[test]
    fn deadline_stops_retrying() {
        let plan = FaultPlan { seed: 2, error_rate: 1.0, ..FaultPlan::default() };
        let faulty = DirectService::new(FaultyLlm::new(scripted(0), plan));
        let policy = ResiliencePolicy {
            retries: 1_000,
            degrade: false,
            breaker_threshold: u32::MAX,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(5),
            ticket_deadline: Some(Duration::from_millis(20)),
            ..ResiliencePolicy::default()
        };
        let mut resilient = ResilientService::new(faulty, policy);
        let result = resilient.complete(&prompt());
        assert!(matches!(result, Err(LlmError::DeadlineExceeded(_))), "got {result:?}");
        let stats = resilient.resilience_stats();
        assert_eq!(stats.deadline_misses, 1);
        assert!(stats.retries < 1_000, "the deadline, not the budget, stopped the loop");
    }
}
