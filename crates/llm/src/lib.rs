//! # uvllm-llm
//!
//! The language-model substrate of UVLLM: prompts (Fig. 4), structured
//! JSON outputs, token/cost/latency accounting at GPT-4-turbo price
//! points, and three offline backends behind one [`LanguageModel`]
//! trait:
//!
//! * [`OracleLlm`] — a *calibrated digital twin* of GPT-4-turbo. It is
//!   constructed with the injected error's ground truth (known only to
//!   the evaluation harness) and succeeds stochastically with per-
//!   (error-kind × information-mode) probabilities from
//!   [`calibration`]; on failure it produces realistic wrong answers
//!   that exercise the rollback machinery. This is the substitution for
//!   the OpenAI API documented in DESIGN.md.
//! * [`HeuristicLlm`] — a genuinely rule-based syntax fixer working
//!   purely from lint logs (no ground truth).
//! * [`ScriptedLlm`] — canned responses for deterministic tests.
//!
//! The pipeline does not call these backends directly: it drives an
//! [`LlmService`] handle through the submit/await ticket protocol of
//! [`service`] — either a [`DirectService`] around one model, or an
//! [`LlmClient`] session of a shared [`BatchedLlm`] that coalesces
//! prompts from many workers into [`LanguageModel::complete_batch`]
//! round trips.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use uvllm_llm::{
//!     AgentRole, ErrorInfo, HeuristicLlm, LanguageModel, RepairPrompt, RepairResponse,
//! };
//!
//! let code = "module m(input a, output y);\nassign y = a\nendmodule\n";
//! let log = "%Error: dut.v:3:1: syntax error, unexpected 'endmodule', expected ';'";
//! let prompt = RepairPrompt::new(AgentRole::SyntaxFixer, "passes a through", code)
//!     .with_error_info(ErrorInfo::LintLog(log.to_string()));
//! let mut model = HeuristicLlm::new();
//! let completion = model.complete(&prompt)?;
//! let response = RepairResponse::parse(&completion.content).map_err(std::io::Error::other)?;
//! assert_eq!(response.correct[0].patched, "assign y = a;");
//! # Ok(())
//! # }
//! ```

pub mod calibration;
pub mod fault;
pub mod heuristic;
pub mod model;
pub mod oracle;
pub mod prompt;
pub mod resilient;
pub mod response;
pub mod scripted;
pub mod service;

pub use calibration::{FailureMode, InfoMode, ModelProfile};
pub use fault::{FaultCounts, FaultPlan, FaultyLlm};
pub use heuristic::HeuristicLlm;
pub use model::{count_tokens, Completion, LanguageModel, LatencyModel, LlmError, Pricing, Usage};
pub use oracle::{module_name_of, OracleLlm};
pub use prompt::{AgentRole, ErrorInfo, MismatchInfo, OutputMode, RepairPair, RepairPrompt};
pub use resilient::{ResiliencePolicy, ResilienceStats, ResilientService};
pub use response::{CompleteResponse, RepairResponse};
pub use scripted::ScriptedLlm;
pub use service::{
    endpoint_gate, BatchConfig, BatchedLlm, DirectService, EndpointGate, LlmClient, LlmService,
    SlowLlm, Ticket, WaitStats,
};
