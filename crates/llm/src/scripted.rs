//! A scripted backend that replays canned completions — used by unit
//! and integration tests to drive the pipeline deterministically.

use crate::model::{count_tokens, Completion, LanguageModel, LlmError, Usage};
use crate::prompt::RepairPrompt;
use std::collections::VecDeque;

/// Replays a fixed queue of response strings.
#[derive(Debug, Default)]
pub struct ScriptedLlm {
    responses: VecDeque<String>,
    usage: Usage,
}

impl ScriptedLlm {
    /// Creates a backend that returns `responses` in order.
    pub fn new(responses: impl IntoIterator<Item = String>) -> Self {
        ScriptedLlm { responses: responses.into_iter().collect(), usage: Usage::default() }
    }

    /// Remaining queued responses.
    pub fn remaining(&self) -> usize {
        self.responses.len()
    }
}

impl LanguageModel for ScriptedLlm {
    fn name(&self) -> &str {
        "scripted"
    }

    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
        let content = self
            .responses
            .pop_front()
            .ok_or_else(|| LlmError::NoResponse("scripted backend exhausted".to_string()))?;
        let prompt_tokens = count_tokens(&prompt.render());
        let completion_tokens = count_tokens(&content);
        let completion = Completion {
            content,
            prompt_tokens,
            completion_tokens,
            latency: std::time::Duration::from_millis(10),
        };
        self.usage.record(&completion);
        Ok(completion)
    }

    /// Answers the whole batch in one step: the next `prompts.len()`
    /// responses are dequeued up front (one drain, not N pops through
    /// `complete`), then paired with the prompts in batch order — the
    /// same results and usage the sequential default produces, which is
    /// what lets deterministic tests replay through the batched
    /// service.
    fn complete_batch(&mut self, prompts: &[RepairPrompt]) -> Vec<Result<Completion, LlmError>> {
        let served: Vec<Option<String>> =
            prompts.iter().map(|_| self.responses.pop_front()).collect();
        prompts
            .iter()
            .zip(served)
            .map(|(prompt, content)| {
                let content = content.ok_or_else(|| {
                    LlmError::NoResponse("scripted backend exhausted".to_string())
                })?;
                let prompt_tokens = count_tokens(&prompt.render());
                let completion_tokens = count_tokens(&content);
                let completion = Completion {
                    content,
                    prompt_tokens,
                    completion_tokens,
                    latency: std::time::Duration::from_millis(10),
                };
                self.usage.record(&completion);
                Ok(completion)
            })
            .collect()
    }

    fn usage(&self) -> Usage {
        self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::AgentRole;

    #[test]
    fn replays_in_order_then_errors() {
        let mut s = ScriptedLlm::new(["one".to_string(), "two".to_string()]);
        let p = RepairPrompt::new(AgentRole::SyntaxFixer, "s", "c");
        assert_eq!(s.complete(&p).unwrap().content, "one");
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.complete(&p).unwrap().content, "two");
        assert!(s.complete(&p).is_err());
        assert_eq!(s.usage().calls, 2);
    }
}
