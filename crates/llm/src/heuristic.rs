//! A genuinely rule-based repair backend for syntax errors.
//!
//! Unlike [`crate::OracleLlm`], this backend has **no ground truth**: it
//! reads the rendered lint log out of the prompt and applies compiler-
//! style heuristics (insert the missing `;`, fix a keyword typo by edit
//! distance, repair a malformed literal base). It demonstrates that the
//! pre-processing stage's contract is honest — any backend that can turn
//! error logs into `(original, patched)` pairs slots in.

use crate::model::{count_tokens, Completion, LanguageModel, LatencyModel, LlmError, Usage};
use crate::oracle::module_name_of;
use crate::prompt::{ErrorInfo, RepairPair, RepairPrompt};
use crate::response::RepairResponse;
use uvllm_verilog::token::Keyword;

/// Rule-based syntax fixer (see module docs).
#[derive(Debug, Default)]
pub struct HeuristicLlm {
    usage: Usage,
    latency: LatencyModel,
}

impl HeuristicLlm {
    /// Creates the backend.
    pub fn new() -> Self {
        HeuristicLlm::default()
    }

    /// Attempts to derive a repair pair from a lint log and the code.
    pub fn repair_from_log(log: &str, code: &str) -> Option<RepairPair> {
        // First error line: `%Error[-TAG]: dut.v:LINE:COL: message`.
        let line = log.lines().find(|l| l.starts_with("%Error"))?;
        let loc = line.split("dut.v:").nth(1)?;
        let mut parts = loc.splitn(3, ':');
        let err_line: usize = parts.next()?.trim().parse().ok()?;
        let _col: usize = parts.next()?.trim().parse().ok()?;
        let message = parts.next()?.trim();
        let lines: Vec<&str> = code.lines().collect();

        if message.contains("expected ';'") {
            // The parser trips on the token *after* the missing
            // semicolon; append one to the previous non-empty line.
            let mut idx = err_line.saturating_sub(2);
            loop {
                let text = lines.get(idx)?;
                if !text.trim().is_empty() {
                    return Some(RepairPair {
                        original: text.to_string(),
                        patched: format!("{text};"),
                    });
                }
                if idx == 0 {
                    return None;
                }
                idx -= 1;
            }
        }

        if message.contains("invalid base specifier") {
            let text = lines.get(err_line - 1)?;
            let at = text.find("'q")?;
            let digits: String =
                text[at + 2..].chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
            let base = if digits.chars().any(|c| matches!(c, 'a'..='f' | 'A'..='F')) {
                'h'
            } else if digits.chars().all(|c| matches!(c, '0' | '1' | 'x' | 'z')) {
                'b'
            } else {
                'd'
            };
            let mut patched = text.to_string();
            patched.replace_range(at + 1..at + 2, &base.to_string());
            return Some(RepairPair { original: text.to_string(), patched });
        }

        // Keyword typo: `unexpected 'IDENT'` where IDENT is close to a
        // keyword by edit distance.
        if let Some(rest) = message.split("unexpected '").nth(1) {
            let found = rest.split('\'').next()?;
            // Search the error line and the one before for a token that
            // is a near-miss of a keyword.
            for idx in [err_line.saturating_sub(1), err_line.saturating_sub(2)] {
                let Some(text) = lines.get(idx) else { continue };
                for word in text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
                    if word.len() < 3 || Keyword::lookup(word).is_some() {
                        continue;
                    }
                    if let Some(kw) = nearest_keyword(word) {
                        let patched = text.replacen(word, kw, 1);
                        if patched != *text {
                            return Some(RepairPair { original: text.to_string(), patched });
                        }
                    }
                }
            }
            let _ = found;
        }
        None
    }
}

/// The closest keyword within edit distance 2, if any.
fn nearest_keyword(word: &str) -> Option<&'static str> {
    const KEYWORDS: [&str; 16] = [
        "module",
        "endmodule",
        "always",
        "assign",
        "begin",
        "end",
        "case",
        "endcase",
        "wire",
        "reg",
        "input",
        "output",
        "posedge",
        "negedge",
        "if",
        "else",
    ];
    KEYWORDS
        .iter()
        .map(|kw| (*kw, edit_distance(word, kw)))
        .filter(|(kw, d)| *d > 0 && *d <= 2 && kw.len() >= 3)
        .min_by_key(|(_, d)| *d)
        .map(|(kw, _)| kw)
}

/// Levenshtein distance.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

impl LanguageModel for HeuristicLlm {
    fn name(&self) -> &str {
        "heuristic syntax fixer"
    }

    fn complete(&mut self, prompt: &RepairPrompt) -> Result<Completion, LlmError> {
        let ErrorInfo::LintLog(log) = &prompt.error_info else {
            return Err(LlmError::NoResponse(
                "heuristic backend only consumes lint logs".to_string(),
            ));
        };
        let pair = Self::repair_from_log(log, &prompt.code)
            .ok_or_else(|| LlmError::NoResponse("no heuristic matched".to_string()))?;
        let content = RepairResponse {
            module_name: module_name_of(&prompt.code),
            analysis: "Heuristic repair derived from the compiler message.".to_string(),
            correct: vec![pair],
        }
        .to_json();
        let prompt_tokens = count_tokens(&prompt.render());
        let completion_tokens = count_tokens(&content);
        let completion = Completion {
            content,
            prompt_tokens,
            completion_tokens,
            // Rule-based repairs are effectively instant; keep a small
            // epsilon so time accounting stays monotone.
            latency: std::time::Duration::from_millis(1),
        };
        self.usage.record(&completion);
        let _ = self.latency;
        Ok(completion)
    }

    // `complete_batch` keeps the provided sequential implementation:
    // rule application is pure per prompt, so the default already *is*
    // the one-pass batch answer.

    fn usage(&self) -> Usage {
        self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_lint::lint;

    fn fix_once(src: &str) -> String {
        let report = lint(src);
        let log = report.render(src);
        let pair = HeuristicLlm::repair_from_log(&log, src)
            .unwrap_or_else(|| panic!("no heuristic for log:\n{log}"));
        assert!(src.contains(&pair.original), "anchor must exist");
        src.replacen(&pair.original, &pair.patched, 1)
    }

    #[test]
    fn fixes_missing_semicolon() {
        let src = "module m(input a, output y);\nassign y = a\nendmodule\n";
        let fixed = fix_once(src);
        assert!(uvllm_verilog::parse(&fixed).is_ok(), "still broken:\n{fixed}");
    }

    #[test]
    fn fixes_keyword_typo() {
        let src = "module m(input a, output reg y);\nalway @(*) y = a;\nendmodule\n";
        let fixed = fix_once(src);
        assert!(fixed.contains("always @(*)"), "got:\n{fixed}");
        assert!(uvllm_verilog::parse(&fixed).is_ok());
    }

    #[test]
    fn fixes_malformed_literal() {
        let src = "module m(output reg [7:0] y);\nalways @(*) y = 8'qff;\nendmodule\n";
        let fixed = fix_once(src);
        assert!(fixed.contains("8'hff"), "got:\n{fixed}");
        assert!(uvllm_verilog::parse(&fixed).is_ok());
    }

    #[test]
    fn no_response_without_lint_info() {
        let mut h = HeuristicLlm::new();
        let prompt = crate::prompt::RepairPrompt::new(
            crate::prompt::AgentRole::MismatchDebugger,
            "spec",
            "module m; endmodule",
        );
        assert!(h.complete(&prompt).is_err());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("alway", "always"), 1);
        assert_eq!(edit_distance("asign", "assign"), 1);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(nearest_keyword("alway"), Some("always"));
        assert_eq!(nearest_keyword("zzzzz"), None);
    }
}
