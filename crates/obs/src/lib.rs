//! Zero-allocation observability substrate: a process-wide, preregistered
//! metrics registry, a span API for stage timing, and a deterministic
//! JSON snapshot.
//!
//! The design splits metric life into two phases with opposite budgets:
//!
//! * **Registration** (cold, may allocate): [`Registry::counter`] /
//!   [`Registry::gauge`] / [`Registry::histogram`] get-or-register a
//!   metric by name under a mutex and return a `&'static` handle
//!   (leaked once, shared forever). Callers resolve handles at
//!   construction time — a simulator instance, a service thread — never
//!   per event.
//! * **Recording** (hot, never allocates): [`Counter::add`],
//!   [`Gauge::set`] and [`Histogram::record`] are each a single relaxed
//!   atomic read-modify-write on a preallocated cell. No locks, no
//!   branches on shared state, no heap. This is what lets the
//!   simulation kernels stay inside the strict zero-allocations-per-
//!   cycle bound (`tests/alloc_steady_state.rs`) with metrics enabled.
//!
//! Histograms are fixed-shape: [`HISTOGRAM_BUCKETS`] log2 buckets
//! covering the whole `u64` range (bucket 0 holds exactly the value 0;
//! bucket `k ≥ 1` holds `[2^(k-1), 2^k)`), so recording is one atomic
//! add into `buckets[bucket_index(v)]` and two histograms of the same
//! data are bit-identical regardless of arrival order.
//!
//! [`MetricsSnapshot::to_json`] renders counters, gauges and histogram
//! bucket counts only — no timestamps, sums or rates — with every
//! object key sorted, so two runs that record the same values emit
//! byte-identical JSON (the determinism contract CI checks).
//!
//! [`Span::enter`] is the stage-timing sugar: an RAII guard that
//! records its elapsed microseconds into the `stage_us.<stage>`
//! histogram on drop. It resolves its histogram through the registry
//! per call, so it belongs around coarse pipeline stages (parse,
//! elaborate, simulate, repair), not inner loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;
use uvllm_json::Json;

/// Schema tag stamped into every snapshot (checked by
/// [`validate_snapshot_json`]).
pub const SNAPSHOT_SCHEMA: &str = "uvllm-metrics/v1";

/// Number of histogram buckets: one for the value 0, one per power of
/// two up to and including `2^63..=u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

// ----------------------------------------------------------------------
// Metric cells
// ----------------------------------------------------------------------

/// A monotonically increasing event count. `inc`/`add` are one relaxed
/// atomic op; allocation-free by construction.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    fn new() -> Counter {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (a batch of locally accumulated events — the idiom the
    /// kernels use to flush per-settle tallies in O(1) atomics).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous level (queue depth, pool occupancy).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    fn new() -> Gauge {
        Gauge { value: AtomicI64::new(0) }
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.set(0);
    }
}

/// A fixed-shape log2 histogram over `u64` values: recording is one
/// relaxed atomic add into the value's bucket; counts (not sums) are
/// what snapshots expose, so identical value multisets serialize
/// identically.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// The bucket a value lands in: 0 for the value 0, else
/// `floor(log2(v)) + 1` — bucket `k ≥ 1` covers `[2^(k-1), 2^k)` and
/// bucket 64 covers `[2^63, u64::MAX]`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The smallest value belonging to bucket `index` (its snapshot label).
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl Histogram {
    fn new() -> Histogram {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Records one observation — a single relaxed atomic op.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations in bucket `index`.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// Total observations (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The process-wide metric namespace. Names are flat dotted strings
/// (`sim.compiled.activations`); the map is only touched at
/// registration and snapshot time, never on the recording path.
#[derive(Debug, Default)]
pub struct Registry {
    map: Mutex<BTreeMap<String, Metric>>,
}

/// The global registry every instrumented layer shares.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// Gets or registers the counter `name`, returning its permanent
    /// handle. Registering may allocate; the handle never does.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind —
    /// a naming collision is a programming error, not a runtime state.
    pub fn counter(&self, name: &str) -> &'static Counter {
        match self.get_or_register(name, || Metric::Counter(Box::leak(Box::new(Counter::new())))) {
            Metric::Counter(c) => c,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or registers the gauge `name` (same contract as
    /// [`Registry::counter`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        match self.get_or_register(name, || Metric::Gauge(Box::leak(Box::new(Gauge::new())))) {
            Metric::Gauge(g) => g,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or registers the histogram `name` (same contract as
    /// [`Registry::counter`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        match self
            .get_or_register(name, || Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Metric::Histogram(h) => h,
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.map.lock().expect("metrics registry poisoned");
        match map.get(name) {
            Some(metric) => *metric,
            None => {
                let metric = make();
                map.insert(name.to_string(), metric);
                metric
            }
        }
    }

    /// A point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.map.lock().expect("metrics registry poisoned");
        let mut snapshot = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snapshot.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snapshot.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => {
                    let buckets = (0..HISTOGRAM_BUCKETS)
                        .map(|i| (bucket_floor(i), h.bucket(i)))
                        .filter(|(_, count)| *count > 0)
                        .collect();
                    snapshot.histograms.push((name.clone(), HistogramSnapshot { buckets }));
                }
            }
        }
        snapshot
    }

    /// Zeroes every registered metric, keeping the registrations (and
    /// every outstanding `&'static` handle) valid — test isolation and
    /// per-run deltas.
    pub fn reset(&self) {
        let map = self.map.lock().expect("metrics registry poisoned");
        for metric in map.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

// ----------------------------------------------------------------------
// Spans
// ----------------------------------------------------------------------

/// RAII stage timer: created at stage entry, records elapsed
/// microseconds into the stage's histogram when dropped.
#[derive(Debug)]
pub struct Span {
    hist: &'static Histogram,
    start: Instant,
}

impl Span {
    /// Times a named pipeline stage into the `stage_us.<stage>`
    /// histogram. Resolves through the registry (cheap, but not free):
    /// wrap stages, not inner loops.
    pub fn enter(stage: &str) -> Span {
        Span::into_histogram(registry().histogram(&format!("stage_us.{stage}")))
    }

    /// Times into a pre-resolved histogram (for callers that cache the
    /// handle).
    pub fn into_histogram(hist: &'static Histogram) -> Span {
        Span { hist, start: Instant::now() }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_micros() as u64);
    }
}

// ----------------------------------------------------------------------
// Snapshots
// ----------------------------------------------------------------------

/// Non-empty buckets of one histogram: `(bucket floor, count)` in
/// ascending floor order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(smallest value of the bucket, observations in it)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|(_, c)| c).sum()
    }
}

/// A deterministic point-in-time copy of the registry: every list is
/// sorted by metric name, histograms carry bucket counts only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, buckets)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks a counter value up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The snapshot as sorted-key JSON: counts and buckets only, no
    /// wall-clock-derived members — two runs recording identical values
    /// render byte-identically.
    pub fn to_json(&self) -> Json {
        let counters =
            self.counters.iter().map(|(n, v)| (n.clone(), Json::Num(*v as f64))).collect();
        let gauges = self.gauges.iter().map(|(n, v)| (n.clone(), Json::Num(*v as f64))).collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(floor, count)| (floor.to_string(), Json::Num(*count as f64)))
                    .collect();
                (
                    n.clone(),
                    Json::Obj(vec![
                        ("buckets".into(), Json::Obj(buckets)),
                        ("count".into(), Json::Num(h.count() as f64)),
                    ]),
                )
            })
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
            ("schema".into(), Json::Str(SNAPSHOT_SCHEMA.to_string())),
        ])
    }

    /// The snapshot rendered as one JSON document plus trailing newline
    /// — what `--metrics-out` writes.
    pub fn render(&self) -> String {
        format!("{}\n", self.to_json().render())
    }
}

/// Schema-checks a rendered snapshot (the CI gate behind
/// `campaign metrics-check`): parses, verifies the schema tag, the
/// three sections, numeric members, and that histogram bucket labels
/// are valid bucket floors with counts summing to `count`.
///
/// # Errors
///
/// A message naming the first violated constraint.
pub fn validate_snapshot_json(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("snapshot is not valid JSON: {e}"))?;
    let Json::Obj(members) = &doc else {
        return Err("snapshot root must be an object".to_string());
    };
    match doc.get("schema") {
        Some(Json::Str(s)) if s == SNAPSHOT_SCHEMA => {}
        other => return Err(format!("bad schema tag (want \"{SNAPSHOT_SCHEMA}\"): {other:?}")),
    }
    let expected_keys = ["counters", "gauges", "histograms", "schema"];
    let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
    if keys != expected_keys {
        return Err(format!("snapshot members must be exactly {expected_keys:?}, got {keys:?}"));
    }
    for section in ["counters", "gauges"] {
        let Some(Json::Obj(entries)) = doc.get(section) else {
            return Err(format!("'{section}' must be an object"));
        };
        sorted_keys(&entries[..], section)?;
        for (name, value) in entries {
            if !matches!(value, Json::Num(_)) {
                return Err(format!("{section}.{name} must be a number"));
            }
        }
    }
    let Some(Json::Obj(hists)) = doc.get("histograms") else {
        return Err("'histograms' must be an object".to_string());
    };
    sorted_keys(&hists[..], "histograms")?;
    for (name, hist) in hists {
        let Json::Obj(_) = hist else {
            return Err(format!("histograms.{name} must be an object"));
        };
        let Some(Json::Num(count)) = hist.get("count") else {
            return Err(format!("histograms.{name}.count must be a number"));
        };
        let Some(Json::Obj(buckets)) = hist.get("buckets") else {
            return Err(format!("histograms.{name}.buckets must be an object"));
        };
        let mut total = 0.0;
        let mut last_floor: Option<u64> = None;
        for (label, value) in buckets {
            let floor: u64 = label
                .parse()
                .map_err(|_| format!("histograms.{name}: bucket label '{label}' is not a u64"))?;
            if floor != bucket_floor(bucket_index(floor)) {
                return Err(format!(
                    "histograms.{name}: bucket label '{label}' is not a bucket floor"
                ));
            }
            if last_floor.is_some_and(|prev| prev >= floor) {
                return Err(format!("histograms.{name}: bucket labels out of order at '{label}'"));
            }
            last_floor = Some(floor);
            let Json::Num(n) = value else {
                return Err(format!("histograms.{name}: bucket '{label}' must be a number"));
            };
            total += n;
        }
        if total != *count {
            return Err(format!(
                "histograms.{name}: bucket counts sum to {total}, count says {count}"
            ));
        }
    }
    Ok(())
}

fn sorted_keys(entries: &[(String, Json)], section: &str) -> Result<(), String> {
    for pair in entries.windows(2) {
        if pair[0].0 >= pair[1].0 {
            return Err(format!("'{section}' keys are not sorted at '{}'", pair[1].0));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry (and every metric) is process-global; tests that
    /// reset or compare absolute values serialize on this.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let _guard = serial();
        let c = registry().counter("test.obs.counter");
        let base = c.get();
        c.inc();
        c.add(9);
        assert_eq!(c.get() - base, 10);
        // Same name, same cell.
        assert_eq!(registry().counter("test.obs.counter").get(), c.get());

        let g = registry().gauge("test.obs.gauge");
        g.set(5);
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // The satellite's boundary matrix: 0, 1, u64::MAX and exact
        // powers of two each land in their own well-defined bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for k in 0..64u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1, "2^{k} opens its own bucket");
            assert_eq!(bucket_floor(k as usize + 1), v, "floor of bucket {} is 2^{k}", k + 1);
            if v > 1 {
                assert_eq!(bucket_index(v - 1), k as usize, "2^{k}-1 stays one bucket down");
            }
        }
        assert_eq!(bucket_floor(0), 0);

        let _guard = serial();
        let h = registry().histogram("test.obs.boundaries");
        h.reset();
        for v in [0, 1, 2, 3, 4, u64::MAX, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2, "2 and 3 share [2,4)");
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(64), 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn kind_collisions_panic() {
        let _guard = serial();
        registry().counter("test.obs.kind");
        let err = std::panic::catch_unwind(|| registry().gauge("test.obs.kind"));
        assert!(err.is_err(), "re-registering a counter as a gauge must panic");
    }

    #[test]
    fn snapshot_is_deterministic_and_valid() {
        let _guard = serial();
        registry().reset();
        let record = || {
            registry().counter("test.obs.snap.jobs").add(3);
            registry().gauge("test.obs.snap.depth").set(2);
            let h = registry().histogram("test.obs.snap.wait_us");
            for v in [0, 1, 7, 1024, u64::MAX] {
                h.record(v);
            }
            registry().snapshot().render()
        };
        let first = record();
        registry().reset();
        let second = record();
        // Two identical runs → byte-identical metrics JSON.
        assert_eq!(first, second);
        validate_snapshot_json(&first).expect("snapshot must pass its own schema check");
        assert!(first.contains("\"schema\":\"uvllm-metrics/v1\""), "{first}");

        let snap = registry().snapshot();
        assert_eq!(snap.counter("test.obs.snap.jobs"), Some(3));
        let (_, wait) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "test.obs.snap.wait_us")
            .expect("histogram present");
        assert_eq!(wait.count(), 5);
        assert_eq!(wait.buckets, vec![(0, 1), (1, 1), (4, 1), (1024, 1), (1 << 63, 1)]);
    }

    #[test]
    fn validation_rejects_malformed_snapshots() {
        assert!(validate_snapshot_json("not json").is_err());
        assert!(validate_snapshot_json("{}").is_err(), "missing schema tag");
        let wrong_schema = r#"{"counters":{},"gauges":{},"histograms":{},"schema":"nope"}"#;
        assert!(validate_snapshot_json(wrong_schema).is_err());
        let unsorted =
            r#"{"counters":{"b":1,"a":2},"gauges":{},"histograms":{},"schema":"uvllm-metrics/v1"}"#;
        assert!(validate_snapshot_json(unsorted).unwrap_err().contains("not sorted"));
        let bad_label = r#"{"counters":{},"gauges":{},"histograms":{"h":{"buckets":{"3":1},"count":1}},"schema":"uvllm-metrics/v1"}"#;
        assert!(validate_snapshot_json(bad_label).unwrap_err().contains("bucket floor"));
        let bad_count = r#"{"counters":{},"gauges":{},"histograms":{"h":{"buckets":{"4":1},"count":2}},"schema":"uvllm-metrics/v1"}"#;
        assert!(validate_snapshot_json(bad_count).unwrap_err().contains("sum"));
        let ok = r#"{"counters":{"a":1},"gauges":{"g":-2},"histograms":{"h":{"buckets":{"0":2,"4":1},"count":3}},"schema":"uvllm-metrics/v1"}"#;
        validate_snapshot_json(ok).expect("well-formed snapshot validates");
    }

    #[test]
    fn span_records_into_stage_histogram() {
        let _guard = serial();
        let h = registry().histogram("stage_us.test_obs_span");
        let before = h.count();
        {
            let _span = Span::enter("test_obs_span");
        }
        assert_eq!(h.count() - before, 1);
    }
}
