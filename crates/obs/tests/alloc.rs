//! The registry's recording-path allocation contract, enforced: after
//! registration, `Counter::inc`/`add`, `Gauge::set` and
//! `Histogram::record` perform **zero** heap allocations — the property
//! that lets the simulation kernels carry metrics inside the strict
//! zero-allocations-per-cycle bound of `tests/alloc_steady_state.rs`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed
// atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn recording_allocates_nothing_after_registration() {
    // Registration (cold path) may allocate.
    let counter = uvllm_obs::registry().counter("test.alloc.counter");
    let gauge = uvllm_obs::registry().gauge("test.alloc.gauge");
    let histogram = uvllm_obs::registry().histogram("test.alloc.histogram");

    // Recording (hot path) must not: 100k mixed operations, zero heap.
    // The counting allocator is process-global, so a libtest harness
    // thread waking up mid-window can register a stray allocation that
    // has nothing to do with the recording path. Retrying the window a
    // few times filters that noise without weakening the contract: an
    // allocating hot path adds ≥600k to EVERY window and still fails.
    let mut delta = u64::MAX;
    for _ in 0..5 {
        let before = allocations();
        for i in 0..100_000u64 {
            counter.inc();
            counter.add(i);
            gauge.set(i as i64);
            gauge.add(-1);
            histogram.record(i);
            histogram.record(u64::MAX - i);
        }
        delta = allocations() - before;
        if delta == 0 {
            break;
        }
    }
    assert_eq!(
        delta, 0,
        "{delta} heap allocations across 600k metric records \
         (the recording path must be allocation-free)"
    );
    assert!(counter.get() > 0 && histogram.count() >= 200_000);
}
