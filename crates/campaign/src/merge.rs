//! `campaign merge`: combine N shard JSONL files into one validated
//! report.
//!
//! Sharded campaigns (`--shard i/n`) write independent JSONL files that
//! used to be `cat`-merged by hand — silently wrong when a shard file
//! was missing, truncated, or produced by a different configuration.
//! [`merge_rows`] replaces that with a checked merge:
//!
//! * **disjointness** — no `(instance, method)` job answered by more
//!   than one shard (or twice within one);
//! * **coverage** — every job of the expected job space (dataset size ×
//!   seed × methods) answered by exactly one shard;
//! * failures name the offending `(instance, method)` pairs and the
//!   shards involved, instead of producing a quietly short report.
//!
//! The merged rows come back sorted by job id, so two merges of the
//! same shards are byte-identical — the same canonical form the
//! determinism suites compare against.

use crate::eval::{EvalRow, MethodKind};
use crate::job::{expand_jobs, Job};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use uvllm::BenchInstance;

/// How many offending job ids an error message spells out before
/// switching to a count.
const MAX_NAMED_IDS: usize = 10;

/// A validated merge result.
#[derive(Debug)]
pub struct MergeOutcome {
    /// Every shard row, sorted by job id (the canonical report order).
    pub rows: Vec<EvalRow>,
    /// Shards that contributed rows.
    pub shards: usize,
}

/// Reads one shard JSONL file strictly, through the same
/// [`SinkTailer`](crate::sink::SinkTailer) the live aggregator polls —
/// one reader implementation for both consumers. Strict here means a
/// malformed line (located as `path:line:`, naming the offending
/// member) or a torn trailing tail is an error, not a skip: an
/// incomplete shard must fail the merge loudly rather than shrink the
/// report.
///
/// # Errors
///
/// I/O failures, unparsable lines (file:line located), torn tails.
pub fn read_shard(path: impl AsRef<Path>) -> Result<Vec<EvalRow>, String> {
    let path = path.as_ref();
    if !path.exists() {
        return Err(format!("cannot read shard {}: no such file", path.display()));
    }
    let mut tailer = crate::sink::SinkTailer::new(path);
    let batch = tailer.poll().map_err(|e| format!("cannot read shard {}: {e}", path.display()))?;
    if let Some(diag) = batch.diags.into_iter().next() {
        return Err(diag);
    }
    tailer.finish()?;
    Ok(batch.rows)
}

/// The full job-id space of a campaign configuration — what a complete
/// merge must cover.
pub fn expected_job_ids(
    dataset_size: usize,
    dataset_seed: u64,
    methods: &[MethodKind],
) -> Vec<String> {
    let dataset = uvllm::build_dataset(dataset_size, dataset_seed);
    let instances: Vec<Arc<BenchInstance>> = dataset.instances.into_iter().map(Arc::new).collect();
    expand_jobs(&instances, methods).iter().map(Job::id).collect()
}

/// Merges named shard row sets into one report, validating shard
/// disjointness and full coverage of `expected_ids` (see
/// [`expected_job_ids`]).
///
/// # Errors
///
/// * a shard that contributed zero rows (an empty file merges cleanly
///   when the other shards cover the job space — but a listed shard
///   with nothing in it is a truncated or mis-pathed file, not a
///   legitimate participant),
/// * a shard whose *every* row is a `worker_panic` quarantine record —
///   individual panic or degraded rows merge fine (they are honest
///   answers for their jobs), but a shard that crashed on everything it
///   touched is a broken environment, not data worth folding in,
/// * a job id answered by two shards (named, with both shards),
/// * a job id outside the expected job space (a shard from a different
///   dataset size/seed or method list),
/// * expected job ids no shard answered (named up to a limit).
pub fn merge_rows(
    shards: &[(String, Vec<EvalRow>)],
    expected_ids: &[String],
) -> Result<MergeOutcome, String> {
    let empty: Vec<String> =
        shards.iter().filter(|(_, rows)| rows.is_empty()).map(|(s, _)| s.clone()).collect();
    if !empty.is_empty() {
        return Err(format!(
            "{} shard(s) contributed zero rows (truncated or wrong file?): {}",
            empty.len(),
            named(&empty),
        ));
    }
    let crashed: Vec<String> = shards
        .iter()
        .filter(|(_, rows)| rows.iter().all(|row| row.outcome == "worker_panic"))
        .map(|(s, _)| s.clone())
        .collect();
    if !crashed.is_empty() {
        return Err(format!(
            "{} shard(s) consist entirely of worker_panic rows (broken worker environment?): {}",
            crashed.len(),
            named(&crashed),
        ));
    }
    let expected: HashSet<&str> = expected_ids.iter().map(String::as_str).collect();
    let mut owner: HashMap<&str, &str> = HashMap::new();
    let mut duplicates: Vec<String> = Vec::new();
    let mut unknown: Vec<String> = Vec::new();
    for (shard, rows) in shards {
        for row in rows {
            if !expected.contains(row.id.as_str()) {
                unknown.push(format!("{} (in {shard})", row.id));
                continue;
            }
            match owner.insert(&row.id, shard) {
                None => {}
                Some(first) => duplicates.push(format!("{} (in {first} and {shard})", row.id)),
            }
        }
    }
    if !duplicates.is_empty() {
        return Err(format!(
            "shards are not disjoint: {} duplicated (instance, method) pair(s): {}",
            duplicates.len(),
            named(&duplicates),
        ));
    }
    if !unknown.is_empty() {
        return Err(format!(
            "{} row(s) outside the expected job space (wrong dataset size/seed or methods?): {}",
            unknown.len(),
            named(&unknown),
        ));
    }
    let missing: Vec<String> =
        expected_ids.iter().filter(|id| !owner.contains_key(id.as_str())).cloned().collect();
    if !missing.is_empty() {
        return Err(format!(
            "incomplete coverage: {} of {} (instance, method) pair(s) missing from every shard: {}",
            missing.len(),
            expected_ids.len(),
            named(&missing),
        ));
    }
    let mut rows: Vec<EvalRow> = shards.iter().flat_map(|(_, rows)| rows.iter().cloned()).collect();
    rows.sort_by(|a, b| a.id.cmp(&b.id));
    Ok(MergeOutcome { rows, shards: shards.len() })
}

fn named(ids: &[String]) -> String {
    if ids.len() <= MAX_NAMED_IDS {
        ids.join(", ")
    } else {
        format!("{}, … ({} more)", ids[..MAX_NAMED_IDS].join(", "), ids.len() - MAX_NAMED_IDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Campaign, CampaignConfig};
    use crate::job::ShardSpec;
    use crate::sink::MemorySink;
    use uvllm_sim::SimBackend;

    fn config(shard: ShardSpec) -> CampaignConfig {
        CampaignConfig {
            dataset_size: 6,
            dataset_seed: 0x42,
            methods: vec![MethodKind::Strider, MethodKind::RtlRepair],
            workers: 2,
            shard,
            backend: SimBackend::default(),
            ..CampaignConfig::default()
        }
    }

    fn run_shard(index: usize, count: usize) -> Vec<EvalRow> {
        let mut sink = MemorySink::new();
        Campaign::new(config(ShardSpec { index, count })).unwrap().run(&mut sink).unwrap();
        sink.rows().to_vec()
    }

    fn expected() -> Vec<String> {
        expected_job_ids(6, 0x42, &[MethodKind::Strider, MethodKind::RtlRepair])
    }

    #[test]
    fn disjoint_shards_merge_to_full_coverage() {
        let shards: Vec<(String, Vec<EvalRow>)> =
            (0..3).map(|i| (format!("shard{i}.jsonl"), run_shard(i, 3))).collect();
        let merged = merge_rows(&shards, &expected()).unwrap();
        assert_eq!(merged.shards, 3);
        assert_eq!(merged.rows.len(), 12, "6 instances x 2 methods");
        let ids: Vec<&str> = merged.rows.iter().map(|r| r.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "merged rows come back in canonical id order");

        // The merged report equals an unsharded run, row for row.
        let whole = run_shard(0, 1);
        let mut whole_lines: Vec<String> = whole.iter().map(EvalRow::to_json_line).collect();
        whole_lines.sort();
        let merged_lines: Vec<String> = merged.rows.iter().map(EvalRow::to_json_line).collect();
        assert_eq!(merged_lines, whole_lines);
    }

    #[test]
    fn duplicated_jobs_are_named_with_both_shards() {
        let rows = run_shard(0, 2);
        let shards = vec![
            ("a.jsonl".to_string(), rows.clone()),
            ("b.jsonl".to_string(), vec![rows[0].clone()]),
        ];
        let err = merge_rows(&shards, &expected()).unwrap_err();
        assert!(err.contains("not disjoint"), "{err}");
        assert!(err.contains(&rows[0].id), "must name the duplicated pair: {err}");
        assert!(err.contains("a.jsonl") && err.contains("b.jsonl"), "{err}");
    }

    #[test]
    fn missing_jobs_fail_coverage_by_name() {
        // Only shard 0 of 2: everything shard 1 owns is missing.
        let shards = vec![("shard0.jsonl".to_string(), run_shard(0, 2))];
        let err = merge_rows(&shards, &expected()).unwrap_err();
        assert!(err.contains("incomplete coverage"), "{err}");
        let shard1 = run_shard(1, 2);
        assert!(!shard1.is_empty());
        assert!(err.contains(&shard1[0].id), "must name a missing pair: {err}");
    }

    #[test]
    fn empty_shards_are_rejected() {
        // A zero-row shard used to merge cleanly whenever the other
        // shards covered the job space — hiding a truncated file.
        let shards = vec![
            ("full.jsonl".to_string(), run_shard(0, 1)),
            ("empty.jsonl".to_string(), Vec::new()),
        ];
        let err = merge_rows(&shards, &expected()).unwrap_err();
        assert!(err.contains("zero rows"), "{err}");
        assert!(err.contains("empty.jsonl"), "must name the empty shard: {err}");
    }

    #[test]
    fn panic_and_degraded_rows_merge_like_any_other_answer() {
        // A quarantined or degraded job is still an answered job: the
        // merge must treat its row as coverage, not reject the shard.
        let mut shard0 = run_shard(0, 2);
        shard0[0].outcome = "worker_panic".to_string();
        let mut shard1 = run_shard(1, 2);
        shard1[0].degraded = Some(true);
        let shards =
            vec![("shard0.jsonl".to_string(), shard0), ("shard1.jsonl".to_string(), shard1)];
        let merged = merge_rows(&shards, &expected()).unwrap();
        assert_eq!(merged.rows.len(), 12);
        assert_eq!(merged.rows.iter().filter(|r| r.outcome == "worker_panic").count(), 1);
        assert_eq!(merged.rows.iter().filter(|r| r.degraded == Some(true)).count(), 1);
    }

    #[test]
    fn all_panic_shards_are_rejected() {
        let mut shard0 = run_shard(0, 2);
        for row in &mut shard0 {
            row.outcome = "worker_panic".to_string();
        }
        let shards =
            vec![("crashed.jsonl".to_string(), shard0), ("ok.jsonl".to_string(), run_shard(1, 2))];
        let err = merge_rows(&shards, &expected()).unwrap_err();
        assert!(err.contains("entirely of worker_panic"), "{err}");
        assert!(err.contains("crashed.jsonl"), "must name the crashed shard: {err}");
        assert!(!err.contains("ok.jsonl"), "{err}");
    }

    #[test]
    fn foreign_rows_are_rejected() {
        let mut rows = run_shard(0, 1);
        rows[0].id = "not_a_design/op#0@UVLLM".to_string();
        let shards = vec![("weird.jsonl".to_string(), rows)];
        let err = merge_rows(&shards, &expected()).unwrap_err();
        assert!(err.contains("outside the expected job space"), "{err}");
        assert!(err.contains("not_a_design"), "{err}");
    }

    #[test]
    fn strict_shard_reading_rejects_torn_lines() {
        let dir = std::env::temp_dir().join(format!("uvllm-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let rows = run_shard(0, 1);
        let mut text: String = rows.iter().map(|r| format!("{}\n", r.to_json_line())).collect();
        text.push_str("{\"id\": \"torn");
        std::fs::write(&path, text).unwrap();
        let err = read_shard(&path).unwrap_err();
        assert!(err.contains("torn.jsonl"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
