//! The shared work queue and the supervised worker pool that drains it.
//!
//! Deliberately boring concurrency: a `Mutex<VecDeque<Job>>` popped by
//! `N` OS threads (`std::thread::scope`). Jobs are coarse — one job is
//! a full verification run with hundreds of simulated cycles — so a
//! single uncontended lock per job is noise, and plain `std` keeps the
//! engine dependency-free. Determinism does not depend on pop order:
//! every record is a pure function of its job.
//!
//! The pool is *supervision-grade* (fault isolation, the campaign-side
//! half of the resilience layer):
//!
//! * Every evaluation runs inside `catch_unwind`, so one panicking job
//!   cannot kill its worker thread (which would abort the scope and the
//!   whole run) or poison the shared mutexes.
//! * A failed job is **requeued once** — transient failures (a flaky
//!   model, an OOM-killed subprocess in a real deployment) get one more
//!   chance; a second failure quarantines the job as a distinct
//!   [`Verdict::WorkerPanic`] row so the campaign stays complete and
//!   honest instead of silently losing coverage.
//! * An optional per-job wall-clock deadline is enforced by a watchdog
//!   thread that flags overrunning jobs. Safe Rust cannot preempt a
//!   compute-bound thread, so the flag is honored when the evaluation
//!   returns: the late result is discarded and the job is requeued once
//!   / quarantined as [`Verdict::JobTimeout`]. (The row is pure
//!   wall-clock policy and therefore only meaningful when the deadline
//!   knob is set — deadline-free campaigns keep the determinism
//!   contract.)
//! * Shared-state locks recover from poisoning (`PoisonError::into_inner`)
//!   — a defense-in-depth layer behind `catch_unwind`: even a panic in
//!   an observability callback cannot wedge the remaining workers.
//!
//! Deterministic failure-injection knobs ([`PoolPolicy::inject_panic`],
//! [`PoolPolicy::inject_stall`]) exist so the supervision machinery is
//! testable end-to-end: they fire by job-id substring match inside the
//! supervised region, exactly where a real fault would.

use crate::eval::{evaluate_one_on, EvalRecord, LlmPolicy};
use crate::job::Job;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};
use uvllm::Verdict;
use uvllm_llm::Usage;
use uvllm_sim::SimBackend;

/// Registry handles for pool supervision (`campaign.*`), resolved once.
#[derive(Debug)]
struct PoolMetrics {
    /// Job evaluations that panicked (every attempt counts).
    panics: &'static uvllm_obs::Counter,
    /// Jobs given their one retry after a failed attempt.
    requeues: &'static uvllm_obs::Counter,
    /// Job attempts that blew the wall-clock deadline.
    job_timeouts: &'static uvllm_obs::Counter,
}

fn metrics() -> &'static PoolMetrics {
    static METRICS: std::sync::OnceLock<PoolMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        panics: uvllm_obs::registry().counter("campaign.panics"),
        requeues: uvllm_obs::registry().counter("campaign.requeues"),
        job_timeouts: uvllm_obs::registry().counter("campaign.job_timeouts"),
    })
}

/// A multi-consumer queue of jobs.
#[derive(Debug)]
pub struct WorkQueue {
    jobs: Mutex<VecDeque<Job>>,
}

impl WorkQueue {
    /// Wraps a job list.
    pub fn new(jobs: Vec<Job>) -> Self {
        WorkQueue { jobs: Mutex::new(jobs.into()) }
    }

    /// Takes the next job, or `None` when drained.
    pub fn pop(&self) -> Option<Job> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
    }

    /// Returns a job to the back of the queue (supervision requeue).
    pub fn push(&self, job: Job) {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner).push_back(job);
    }

    /// Jobs not yet claimed.
    pub fn remaining(&self) -> usize {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

/// Supervision policy of a worker pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolPolicy {
    /// Per-job wall-clock budget. `None` (default) disables the
    /// watchdog — the deterministic configuration.
    pub job_deadline: Option<Duration>,
    /// Fault injection: panic any job whose id contains this substring
    /// (deterministic, so the job fails its retry too and quarantines).
    pub inject_panic: Option<String>,
    /// Fault injection: stall any job whose id contains the substring
    /// by the given duration before evaluating (used with
    /// [`PoolPolicy::job_deadline`] to exercise the watchdog).
    pub inject_stall: Option<(String, Duration)>,
}

/// What supervision did during one pool run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Job attempts that panicked.
    pub panicked: u64,
    /// Jobs requeued for their single retry (panic or timeout).
    pub requeued: u64,
    /// Job attempts that blew the wall-clock deadline.
    pub timed_out: u64,
    /// Jobs quarantined with a `worker_panic` row.
    pub quarantined_panics: u64,
    /// Jobs quarantined with a `job_timeout` row.
    pub quarantined_timeouts: u64,
}

/// The row recorded for a quarantined job: every identity field comes
/// from the job itself (the evaluation never produced a record), the
/// verdict marks why, and all result fields are the honest zeros.
fn quarantine_record(job: &Job, backend: SimBackend, verdict: Verdict) -> EvalRecord {
    EvalRecord {
        instance_id: job.instance.id(),
        design: job.instance.design.name,
        group: job.instance.design.category,
        kind: job.instance.kind,
        category: job.instance.ground_truth.category,
        method: job.method,
        backend,
        hit: false,
        fixed: false,
        fix_outcome: verdict,
        claimed: false,
        texec: 0.0,
        stage_times: None,
        fixed_by: None,
        usage: Usage::default(),
        llm_wait: Duration::ZERO,
        llm_batch_max: 0,
        degraded: false,
    }
}

/// Runs `jobs` on `workers` OS threads with every evaluation on
/// `backend`, drawing LLM service handles from `llm` (a per-job
/// [`uvllm_llm::DirectService`], or sessions of the shared
/// [`crate::SharedLlm`] so workers' LLM round trips overlap);
/// `on_record` observes every finished job (from worker threads, in
/// completion order) and the returned list is sorted back into job
/// order.
///
/// `workers == 0` is treated as 1.
pub fn run_pool(
    jobs: Vec<Job>,
    workers: usize,
    backend: SimBackend,
    llm: &LlmPolicy<'_>,
    on_record: impl Fn(&Job, &EvalRecord) + Sync,
) -> Vec<EvalRecord> {
    run_pool_supervised(jobs, workers, backend, llm, &PoolPolicy::default(), on_record).0
}

/// [`run_pool`] under an explicit supervision policy, also returning
/// what supervision did (module docs describe the semantics).
pub fn run_pool_supervised(
    jobs: Vec<Job>,
    workers: usize,
    backend: SimBackend,
    llm: &LlmPolicy<'_>,
    policy: &PoolPolicy,
    on_record: impl Fn(&Job, &EvalRecord) + Sync,
) -> (Vec<EvalRecord>, PoolStats) {
    let workers = workers.max(1).min(jobs.len().max(1));
    let queue = WorkQueue::new(jobs);
    let results: Mutex<Vec<(usize, EvalRecord)>> = Mutex::new(Vec::new());
    // Job indices that already used their single retry.
    let retried: Mutex<HashSet<usize>> = Mutex::new(HashSet::new());
    let panicked = AtomicU64::new(0);
    let requeued = AtomicU64::new(0);
    let timed_out = AtomicU64::new(0);
    let quarantined_panics = AtomicU64::new(0);
    let quarantined_timeouts = AtomicU64::new(0);
    // `campaign.queue_depth` tracks unclaimed jobs; gauges are absolute,
    // so concurrent pools would fight over it — campaigns run one pool
    // at a time, which is the case the snapshot documents.
    let depth = uvllm_obs::registry().gauge("campaign.queue_depth");
    depth.set(queue.remaining() as i64);

    // Watchdog state: per-worker start instant of the in-flight job and
    // the overrun flag the watchdog raises.
    let inflight: Vec<Mutex<Option<Instant>>> = (0..workers).map(|_| Mutex::new(None)).collect();
    let overrun: Vec<AtomicBool> = (0..workers).map(|_| AtomicBool::new(false)).collect();
    let active = AtomicUsize::new(workers);

    std::thread::scope(|scope| {
        if let Some(deadline) = policy.job_deadline {
            let inflight = &inflight;
            let overrun = &overrun;
            let active = &active;
            // Poll a few times per deadline window; safe Rust cannot
            // preempt a compute-bound worker, so the flag is the whole
            // mechanism — workers honor it when the evaluation returns.
            let tick = (deadline / 4).clamp(Duration::from_millis(1), Duration::from_millis(200));
            scope.spawn(move || {
                while active.load(Ordering::Acquire) > 0 {
                    for (slot, flag) in inflight.iter().zip(overrun) {
                        let started = *slot.lock().unwrap_or_else(PoisonError::into_inner);
                        if let Some(started) = started {
                            if started.elapsed() >= deadline {
                                flag.store(true, Ordering::Release);
                            }
                        }
                    }
                    std::thread::sleep(tick);
                }
            });
        }

        for worker in 0..workers {
            let worker_jobs =
                uvllm_obs::registry().counter(&format!("campaign.worker.{worker}.jobs"));
            let queue = &queue;
            let results = &results;
            let retried = &retried;
            let on_record = &on_record;
            let slot = &inflight[worker];
            let flag = &overrun[worker];
            let active = &active;
            let panicked = &panicked;
            let requeued = &requeued;
            let timed_out = &timed_out;
            let quarantined_panics = &quarantined_panics;
            let quarantined_timeouts = &quarantined_timeouts;
            scope.spawn(move || {
                while let Some(job) = queue.pop() {
                    depth.dec();
                    flag.store(false, Ordering::Release);
                    let started = Instant::now();
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(started);
                    let job_id = job.id();
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if let Some(pattern) = &policy.inject_panic {
                            if job_id.contains(pattern.as_str()) {
                                panic!("injected worker panic for job {job_id}");
                            }
                        }
                        if let Some((pattern, stall)) = &policy.inject_stall {
                            if job_id.contains(pattern.as_str()) {
                                std::thread::sleep(*stall);
                            }
                        }
                        evaluate_one_on(job.method, &job.instance, backend, llm)
                    }));
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;

                    // Classify the attempt: a panic always fails it; a
                    // completed evaluation fails when the watchdog (or
                    // the elapsed clock, covering polling granularity)
                    // says the deadline was blown — the late result is
                    // discarded, never half-trusted.
                    let failure = match outcome {
                        Err(_) => {
                            panicked.fetch_add(1, Ordering::Relaxed);
                            metrics().panics.inc();
                            Some(Verdict::WorkerPanic)
                        }
                        Ok(_)
                            if flag.load(Ordering::Acquire)
                                || policy
                                    .job_deadline
                                    .is_some_and(|deadline| started.elapsed() >= deadline) =>
                        {
                            timed_out.fetch_add(1, Ordering::Relaxed);
                            metrics().job_timeouts.inc();
                            Some(Verdict::JobTimeout)
                        }
                        Ok(record) => {
                            worker_jobs.inc();
                            on_record(&job, &record);
                            results
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push((job.index, record));
                            None
                        }
                    };

                    if let Some(verdict) = failure {
                        let first_failure = retried
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .insert(job.index);
                        if first_failure {
                            // Requeue once: the worker stays in its
                            // loop, so the retried job cannot starve
                            // even if every other worker has exited.
                            requeued.fetch_add(1, Ordering::Relaxed);
                            metrics().requeues.inc();
                            depth.inc();
                            queue.push(job);
                        } else {
                            // Second failure: quarantine with a
                            // distinct outcome row so coverage stays
                            // complete and the failure visible.
                            match verdict {
                                Verdict::JobTimeout => {
                                    quarantined_timeouts.fetch_add(1, Ordering::Relaxed)
                                }
                                _ => quarantined_panics.fetch_add(1, Ordering::Relaxed),
                            };
                            let record = quarantine_record(&job, backend, verdict);
                            worker_jobs.inc();
                            on_record(&job, &record);
                            results
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push((job.index, record));
                        }
                    }
                }
                active.fetch_sub(1, Ordering::Release);
            });
        }
    });

    let mut results = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    results.sort_by_key(|(index, _)| *index);
    (
        results.into_iter().map(|(_, record)| record).collect(),
        PoolStats {
            panicked: panicked.into_inner(),
            requeued: requeued.into_inner(),
            timed_out: timed_out.into_inner(),
            quarantined_panics: quarantined_panics.into_inner(),
            quarantined_timeouts: quarantined_timeouts.into_inner(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MethodKind;
    use crate::job::expand_jobs;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use uvllm::build_instance;
    use uvllm_designs::by_name;
    use uvllm_errgen::ErrorKind;

    fn jobs_on(design: &str, methods: &[MethodKind], seeds: u64) -> Vec<Job> {
        let d = by_name(design).unwrap();
        let instances: Vec<_> = (0..seeds)
            .filter_map(|s| build_instance(d, ErrorKind::MissingSemicolon, s))
            .map(Arc::new)
            .collect();
        assert!(!instances.is_empty());
        expand_jobs(&instances, methods)
    }

    #[test]
    fn pool_preserves_job_order_in_results() {
        let jobs = jobs_on("mux4", &[MethodKind::Strider, MethodKind::RtlRepair], 3);
        let expected: Vec<String> = jobs.iter().map(Job::id).collect();
        let seen = AtomicUsize::new(0);
        let records = run_pool(jobs, 4, SimBackend::default(), &LlmPolicy::direct(), |_, _| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), expected.len());
        let got: Vec<String> = records.iter().map(EvalRecord::job_id).collect();
        assert_eq!(got, expected, "results must come back in job order");
    }

    #[test]
    fn empty_queue_is_fine() {
        let records =
            run_pool(Vec::new(), 8, SimBackend::default(), &LlmPolicy::direct(), |_, _| {});
        assert!(records.is_empty());
    }

    #[test]
    fn injected_panic_is_requeued_then_quarantined() {
        let jobs = jobs_on("mux4", &[MethodKind::Strider], 3);
        let expected: Vec<String> = jobs.iter().map(Job::id).collect();
        // Deterministic panic on the first job: it fails, gets its one
        // retry, fails again and quarantines — the other jobs complete.
        let policy = PoolPolicy { inject_panic: Some(expected[0].clone()), ..Default::default() };
        let (records, stats) = run_pool_supervised(
            jobs,
            2,
            SimBackend::default(),
            &LlmPolicy::direct(),
            &policy,
            |_, _| {},
        );
        let got: Vec<String> = records.iter().map(EvalRecord::job_id).collect();
        assert_eq!(got, expected, "quarantine keeps coverage complete and ordered");
        assert_eq!(records[0].fix_outcome, Verdict::WorkerPanic);
        assert!(!records[0].hit && !records[0].fixed && !records[0].claimed);
        assert!(records[1..].iter().all(|r| r.fix_outcome != Verdict::WorkerPanic));
        assert_eq!(stats.panicked, 2, "first attempt + retry");
        assert_eq!(stats.requeued, 1);
        assert_eq!(stats.quarantined_panics, 1);
        assert_eq!(stats.quarantined_timeouts, 0);
    }

    #[test]
    fn stalled_job_blows_the_deadline_and_quarantines() {
        let jobs = jobs_on("mux4", &[MethodKind::Strider], 2);
        let expected: Vec<String> = jobs.iter().map(Job::id).collect();
        let policy = PoolPolicy {
            job_deadline: Some(Duration::from_millis(100)),
            inject_stall: Some((expected[1].clone(), Duration::from_millis(400))),
            ..Default::default()
        };
        let (records, stats) = run_pool_supervised(
            jobs,
            2,
            SimBackend::default(),
            &LlmPolicy::direct(),
            &policy,
            |_, _| {},
        );
        let got: Vec<String> = records.iter().map(EvalRecord::job_id).collect();
        assert_eq!(got, expected);
        assert_eq!(records[1].fix_outcome, Verdict::JobTimeout);
        assert!(stats.timed_out >= 2, "stall is deterministic: attempt + retry both overrun");
        assert_eq!(stats.quarantined_timeouts, 1);
    }

    #[test]
    fn panic_rows_serialize_with_the_worker_panic_outcome() {
        let jobs = jobs_on("mux4", &[MethodKind::Strider], 1);
        let record = quarantine_record(&jobs[0], SimBackend::default(), Verdict::WorkerPanic);
        let row = record.to_row();
        assert_eq!(row.outcome, "worker_panic");
        let line = row.to_json_line();
        let back = crate::eval::EvalRow::from_json_line(&line).unwrap();
        assert_eq!(back, row, "worker_panic rows round-trip through JSONL");
    }
}
