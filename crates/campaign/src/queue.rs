//! The shared work queue and the worker pool that drains it.
//!
//! Deliberately boring concurrency: a `Mutex<VecDeque<Job>>` popped by
//! `N` OS threads (`std::thread::scope`). Jobs are coarse — one job is
//! a full verification run with hundreds of simulated cycles — so a
//! single uncontended lock per job is noise, and plain `std` keeps the
//! engine dependency-free. Determinism does not depend on pop order:
//! every record is a pure function of its job.

use crate::eval::{evaluate_one_on, EvalRecord, LlmPolicy};
use crate::job::Job;
use std::collections::VecDeque;
use std::sync::Mutex;
use uvllm_sim::SimBackend;

/// A multi-consumer queue of jobs.
#[derive(Debug)]
pub struct WorkQueue {
    jobs: Mutex<VecDeque<Job>>,
}

impl WorkQueue {
    /// Wraps a job list.
    pub fn new(jobs: Vec<Job>) -> Self {
        WorkQueue { jobs: Mutex::new(jobs.into()) }
    }

    /// Takes the next job, or `None` when drained.
    pub fn pop(&self) -> Option<Job> {
        self.jobs.lock().expect("work queue poisoned").pop_front()
    }

    /// Jobs not yet claimed.
    pub fn remaining(&self) -> usize {
        self.jobs.lock().expect("work queue poisoned").len()
    }
}

/// Runs `jobs` on `workers` OS threads with every evaluation on
/// `backend`, drawing LLM service handles from `llm` (a per-job
/// [`uvllm_llm::DirectService`], or sessions of the shared
/// [`crate::SharedLlm`] so workers' LLM round trips overlap);
/// `on_record` observes every finished job (from worker threads, in
/// completion order) and the returned list is sorted back into job
/// order.
///
/// `workers == 0` is treated as 1.
pub fn run_pool(
    jobs: Vec<Job>,
    workers: usize,
    backend: SimBackend,
    llm: &LlmPolicy<'_>,
    on_record: impl Fn(&Job, &EvalRecord) + Sync,
) -> Vec<EvalRecord> {
    let workers = workers.max(1).min(jobs.len().max(1));
    let queue = WorkQueue::new(jobs);
    let results: Mutex<Vec<(usize, EvalRecord)>> = Mutex::new(Vec::new());
    // `campaign.queue_depth` tracks unclaimed jobs; gauges are absolute,
    // so concurrent pools would fight over it — campaigns run one pool
    // at a time, which is the case the snapshot documents.
    let depth = uvllm_obs::registry().gauge("campaign.queue_depth");
    depth.set(queue.remaining() as i64);

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let worker_jobs =
                uvllm_obs::registry().counter(&format!("campaign.worker.{worker}.jobs"));
            let queue = &queue;
            let results = &results;
            let on_record = &on_record;
            scope.spawn(move || {
                while let Some(job) = queue.pop() {
                    depth.dec();
                    let record = evaluate_one_on(job.method, &job.instance, backend, llm);
                    worker_jobs.inc();
                    on_record(&job, &record);
                    results.lock().expect("result list poisoned").push((job.index, record));
                }
            });
        }
    });

    let mut results = results.into_inner().expect("result list poisoned");
    results.sort_by_key(|(index, _)| *index);
    results.into_iter().map(|(_, record)| record).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MethodKind;
    use crate::job::expand_jobs;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use uvllm::build_instance;
    use uvllm_designs::by_name;
    use uvllm_errgen::ErrorKind;

    #[test]
    fn pool_preserves_job_order_in_results() {
        let d = by_name("mux4").unwrap();
        let instances: Vec<_> = (0..3)
            .filter_map(|s| build_instance(d, ErrorKind::MissingSemicolon, s))
            .map(Arc::new)
            .collect();
        assert!(!instances.is_empty());
        let jobs = expand_jobs(&instances, &[MethodKind::Strider, MethodKind::RtlRepair]);
        let expected: Vec<String> = jobs.iter().map(Job::id).collect();
        let seen = AtomicUsize::new(0);
        let records = run_pool(jobs, 4, SimBackend::default(), &LlmPolicy::direct(), |_, _| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), expected.len());
        let got: Vec<String> = records.iter().map(EvalRecord::job_id).collect();
        assert_eq!(got, expected, "results must come back in job order");
    }

    #[test]
    fn empty_queue_is_fine() {
        let records =
            run_pool(Vec::new(), 8, SimBackend::default(), &LlmPolicy::direct(), |_, _| {});
        assert!(records.is_empty());
    }
}
