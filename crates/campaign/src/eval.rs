//! Per-job evaluation: method dispatch, the `EvalRecord` produced for
//! every (instance × method) pair, and its deterministic JSONL form.
//!
//! This logic moved here from `uvllm-bench::harness` so the campaign
//! engine can own it; the bench crate re-exports everything for
//! compatibility.

use uvllm::{BenchInstance, Stage, StageTimes, Uvllm, Verdict, VerifyConfig};
use uvllm_baselines::{GptDirect, MeicRepair, RepairMethod, RtlRepair, StriderRepair};
use uvllm_designs::Category;
use uvllm_errgen::{ErrorCategory, ErrorKind};
use uvllm_json::Json;
use uvllm_llm::{ModelProfile, OracleLlm, OutputMode, Usage};
use uvllm_sim::SimBackend;

/// Which method to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// The full framework (pair-wise repair generation).
    Uvllm,
    /// Table III ablation: complete-code regeneration.
    UvllmComplete,
    Meic,
    GptDirect,
    Strider,
    RtlRepair,
}

impl MethodKind {
    /// Every method, in table order.
    pub const ALL: [MethodKind; 6] = [
        MethodKind::Uvllm,
        MethodKind::UvllmComplete,
        MethodKind::Meic,
        MethodKind::GptDirect,
        MethodKind::Strider,
        MethodKind::RtlRepair,
    ];

    /// Display name used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Uvllm => "UVLLM",
            MethodKind::UvllmComplete => "UVLLM(comp)",
            MethodKind::Meic => "MEIC",
            MethodKind::GptDirect => "GPT-4-turbo",
            MethodKind::Strider => "Strider",
            MethodKind::RtlRepair => "RTLrepair",
        }
    }

    /// Parses a [`MethodKind::label`] back (CLI / row decoding).
    pub fn from_label(label: &str) -> Option<MethodKind> {
        MethodKind::ALL.into_iter().find(|m| m.label() == label)
    }

    /// Seed salt so each method draws independent oracle randomness.
    fn salt(&self) -> u64 {
        match self {
            MethodKind::Uvllm => 0x01,
            MethodKind::UvllmComplete => 0x02,
            MethodKind::Meic => 0x03,
            MethodKind::GptDirect => 0x04,
            MethodKind::Strider => 0x05,
            MethodKind::RtlRepair => 0x06,
        }
    }
}

/// One instance × method evaluation result.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    pub instance_id: String,
    pub design: &'static str,
    pub group: Category,
    pub kind: ErrorKind,
    pub category: ErrorCategory,
    pub method: MethodKind,
    /// Simulation kernel the job ran on.
    pub backend: SimBackend,
    /// Passed the public directed vectors (Hit Rate).
    pub hit: bool,
    /// Passed the extended differential validation (Fix Rate).
    pub fixed: bool,
    /// Classified Fix-Rate outcome (pass / mismatch / unstable /
    /// build-failed) — surfaces `SimError::Unstable` as a distinct
    /// outcome instead of a bare `fixed == false`.
    pub fix_outcome: Verdict,
    /// The method's own claim of success.
    pub claimed: bool,
    /// Total execution time in (simulated+measured) seconds.
    pub texec: f64,
    /// UVLLM-only: per-stage times.
    pub stage_times: Option<StageTimes>,
    /// UVLLM-only: which stage produced the final fix.
    pub fixed_by: Option<Stage>,
    /// LLM accounting.
    pub usage: Usage,
}

impl EvalRecord {
    /// The campaign job identifier this record answers.
    pub fn job_id(&self) -> String {
        job_id(&self.instance_id, self.method)
    }

    /// Projects the record onto its deterministic JSONL row.
    pub fn to_row(&self) -> EvalRow {
        EvalRow {
            id: self.job_id(),
            instance: self.instance_id.clone(),
            design: self.design.to_string(),
            group: self.group.label().to_string(),
            kind: self.kind.name().to_string(),
            syntax: self.kind.is_syntax(),
            category: self.category.label().to_string(),
            method: self.method.label().to_string(),
            backend: self.backend.label().to_string(),
            hit: self.hit,
            fixed: self.fixed,
            outcome: self.fix_outcome.label().to_string(),
            claimed: self.claimed,
            llm_calls: self.usage.calls,
            prompt_tokens: self.usage.prompt_tokens,
            completion_tokens: self.usage.completion_tokens,
            sim_latency_ms: self.usage.latency.as_millis() as u64,
            fixed_by: self.fixed_by.map(|s| s.label().to_string()),
        }
    }
}

/// Stable identifier of one campaign job.
pub fn job_id(instance_id: &str, method: MethodKind) -> String {
    format!("{instance_id}@{}", method.label())
}

/// The JSONL projection of an [`EvalRecord`].
///
/// Every field is a pure function of the job (instance × method ×
/// seeds): wall-clock measurements are deliberately excluded, which is
/// what makes campaign output byte-identical (modulo row order) at any
/// worker count. LLM latency is the calibrated *simulated* latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalRow {
    /// Job id: `<design>/<kind>#<seed>@<method>`.
    pub id: String,
    /// Benchmark instance id: `<design>/<kind>#<seed>`.
    pub instance: String,
    pub design: String,
    /// Design group label (Table II).
    pub group: String,
    /// Error-kind name (Table I).
    pub kind: String,
    /// True for syntax kinds (Fig. 5), false for functional (Fig. 6).
    pub syntax: bool,
    /// Error-category label (figure x-axes).
    pub category: String,
    /// Method label.
    pub method: String,
    /// Simulation-kernel label (`event` / `compiled`).
    pub backend: String,
    pub hit: bool,
    pub fixed: bool,
    /// Classified Fix-Rate outcome label
    /// (`pass` / `mismatch` / `unstable` / `build-failed`).
    pub outcome: String,
    pub claimed: bool,
    pub llm_calls: u64,
    pub prompt_tokens: u64,
    pub completion_tokens: u64,
    /// Simulated LLM latency (deterministic Texec proxy).
    pub sim_latency_ms: u64,
    /// Stage label that produced the fix (UVLLM methods only).
    pub fixed_by: Option<String>,
}

impl EvalRow {
    /// Serialises to one compact JSON line (fixed member order).
    pub fn to_json_line(&self) -> String {
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("instance".into(), Json::Str(self.instance.clone())),
            ("design".into(), Json::Str(self.design.clone())),
            ("group".into(), Json::Str(self.group.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("syntax".into(), Json::Bool(self.syntax)),
            ("category".into(), Json::Str(self.category.clone())),
            ("method".into(), Json::Str(self.method.clone())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("hit".into(), Json::Bool(self.hit)),
            ("fixed".into(), Json::Bool(self.fixed)),
            ("outcome".into(), Json::Str(self.outcome.clone())),
            ("claimed".into(), Json::Bool(self.claimed)),
            ("llm_calls".into(), Json::Num(self.llm_calls as f64)),
            ("prompt_tokens".into(), Json::Num(self.prompt_tokens as f64)),
            ("completion_tokens".into(), Json::Num(self.completion_tokens as f64)),
            ("sim_latency_ms".into(), Json::Num(self.sim_latency_ms as f64)),
            (
                "fixed_by".into(),
                match &self.fixed_by {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
        ])
        .render()
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not valid JSON or lacks a
    /// required member.
    pub fn from_json_line(line: &str) -> Result<EvalRow, String> {
        let v = Json::parse(line.trim())?;
        let str_member = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("row missing string member '{key}'"))
        };
        let bool_member = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("row missing bool member '{key}'"))
        };
        let num_member = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("row missing integer member '{key}'"))
        };
        Ok(EvalRow {
            id: str_member("id")?,
            instance: str_member("instance")?,
            design: str_member("design")?,
            group: str_member("group")?,
            kind: str_member("kind")?,
            syntax: bool_member("syntax")?,
            category: str_member("category")?,
            method: str_member("method")?,
            // Rows written before the backend/outcome schema fields
            // existed decode with their historical implicit values.
            backend: match v.get("backend") {
                Some(b) => {
                    b.as_str().ok_or_else(|| "bad 'backend' member".to_string())?.to_string()
                }
                None => SimBackend::EventDriven.label().to_string(),
            },
            hit: bool_member("hit")?,
            fixed: bool_member("fixed")?,
            outcome: match v.get("outcome") {
                Some(o) => {
                    o.as_str().ok_or_else(|| "bad 'outcome' member".to_string())?.to_string()
                }
                None => {
                    if bool_member("fixed")? {
                        Verdict::Pass.label().to_string()
                    } else {
                        Verdict::Mismatch.label().to_string()
                    }
                }
            },
            claimed: bool_member("claimed")?,
            llm_calls: num_member("llm_calls")?,
            prompt_tokens: num_member("prompt_tokens")?,
            completion_tokens: num_member("completion_tokens")?,
            sim_latency_ms: num_member("sim_latency_ms")?,
            fixed_by: match v.get("fixed_by") {
                Some(Json::Str(s)) => Some(s.clone()),
                Some(Json::Null) | None => None,
                Some(other) => return Err(format!("bad 'fixed_by' member: {other:?}")),
            },
        })
    }
}

/// Evaluates `method` on one instance on the process-default simulation
/// backend ([`SimBackend::from_env`]).
pub fn evaluate_one(method: MethodKind, inst: &BenchInstance) -> EvalRecord {
    evaluate_one_with(method, inst, SimBackend::from_env())
}

/// Evaluates `method` on one instance on an explicit simulation backend.
///
/// Everything stochastic is derived from the instance seed and the
/// method salt, so the record is a pure function of its job — the
/// bedrock of campaign determinism and resumability. The two backends
/// are waveform-identical (enforced by the differential equivalence
/// suite), so the backend changes wall-clock, not verdicts.
///
/// Per-job cost model: every metric run crosses the scoreboard
/// boundary through the index-based `IoFrame` exchange (zero
/// allocations per checked cycle), and on the compiled backend the
/// repeated runs over one candidate text share a pooled, state-reset
/// `CompiledSim` instance (`uvllm_sim::checkout_sim`) instead of
/// re-instantiating per run — `reset_state` makes a reused instance
/// indistinguishable from a fresh one, so determinism is unaffected.
pub fn evaluate_one_with(
    method: MethodKind,
    inst: &BenchInstance,
    backend: SimBackend,
) -> EvalRecord {
    let oracle_seed = inst.seed ^ method.salt().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let design = inst.design;
    let oracle =
        |profile| OracleLlm::new(inst.ground_truth.clone(), design.source, profile, oracle_seed);
    let (final_code, claimed, texec, stage_times, fixed_by, usage) = match method {
        MethodKind::Uvllm | MethodKind::UvllmComplete => {
            let config = VerifyConfig {
                output_mode: if method == MethodKind::UvllmComplete {
                    OutputMode::Complete
                } else {
                    OutputMode::Pairs
                },
                backend,
                ..VerifyConfig::default()
            };
            // The framework owns its (job-local) model: the whole run
            // is Send and carries no state shared across jobs.
            let mut framework = Uvllm::new(oracle(ModelProfile::Gpt4Turbo), config);
            let out = framework.verify(design, &inst.mutated_src);
            (
                out.final_code,
                out.success,
                out.times.total().as_secs_f64(),
                Some(out.times),
                out.fixed_by,
                out.usage,
            )
        }
        MethodKind::Meic => {
            let mut llm = oracle(ModelProfile::Gpt4TurboWeakHarness);
            let mut m = MeicRepair::new(&mut llm).with_backend(backend);
            let out = m.repair(design, &inst.mutated_src);
            (out.final_code, out.claimed_success, out.time.as_secs_f64(), None, None, out.usage)
        }
        MethodKind::GptDirect => {
            let mut llm = oracle(ModelProfile::Gpt4TurboWeakHarness);
            let mut m = GptDirect::new(&mut llm).with_backend(backend);
            let out = m.repair(design, &inst.mutated_src);
            (out.final_code, out.claimed_success, out.time.as_secs_f64(), None, None, out.usage)
        }
        MethodKind::Strider => {
            let mut m = StriderRepair::new().with_backend(backend);
            let out = m.repair(design, &inst.mutated_src);
            (out.final_code, out.claimed_success, out.time.as_secs_f64(), None, None, out.usage)
        }
        MethodKind::RtlRepair => {
            let mut m = RtlRepair::new().with_backend(backend);
            let out = m.repair(design, &inst.mutated_src);
            (out.final_code, out.claimed_success, out.time.as_secs_f64(), None, None, out.usage)
        }
    };
    let hit = uvllm::metrics::hit_confirmed_with(design, &final_code, backend);
    let fix_outcome = uvllm::metrics::fix_verdict_with(design, &final_code, backend);
    EvalRecord {
        instance_id: inst.id(),
        design: design.name,
        group: design.category,
        kind: inst.kind,
        category: inst.ground_truth.category,
        method,
        backend,
        hit,
        fixed: fix_outcome.passed(),
        fix_outcome,
        claimed,
        texec,
        stage_times,
        fixed_by,
        usage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm::build_instance;
    use uvllm_designs::by_name;

    #[test]
    fn row_round_trips_through_jsonl() {
        let d = by_name("adder_8bit").unwrap();
        let inst = build_instance(d, ErrorKind::OperatorMisuse, 5).expect("instance");
        let rec = evaluate_one(MethodKind::Uvllm, &inst);
        let row = rec.to_row();
        let line = row.to_json_line();
        assert!(!line.contains('\n'));
        let back = EvalRow::from_json_line(&line).unwrap();
        assert_eq!(back, row);
        assert_eq!(back.id, rec.job_id());
        assert!(back.id.ends_with("@UVLLM"));
    }

    #[test]
    fn rows_are_a_pure_function_of_the_job() {
        let d = by_name("counter_12").unwrap();
        let inst = build_instance(d, ErrorKind::ValueMisuse, 9).expect("instance");
        for method in [MethodKind::Uvllm, MethodKind::Meic, MethodKind::Strider] {
            let a = evaluate_one(method, &inst).to_row();
            let b = evaluate_one(method, &inst).to_row();
            assert_eq!(a.to_json_line(), b.to_json_line(), "{method:?}");
        }
    }

    #[test]
    fn method_labels_round_trip() {
        for m in MethodKind::ALL {
            assert_eq!(MethodKind::from_label(m.label()), Some(m));
        }
        assert_eq!(MethodKind::from_label("nope"), None);
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert!(EvalRow::from_json_line("not json").is_err());
        assert!(EvalRow::from_json_line("{\"id\": \"x\"}").is_err());
    }
}
