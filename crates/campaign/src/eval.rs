//! Per-job evaluation: method dispatch, the `EvalRecord` produced for
//! every (instance × method) pair, and its deterministic JSONL form.
//!
//! This logic moved here from `uvllm-bench::harness` so the campaign
//! engine can own it; the bench crate re-exports everything for
//! compatibility.

use std::time::Duration;
use uvllm::{BenchInstance, Stage, StageTimes, Uvllm, Verdict, VerifyConfig};
use uvllm_baselines::{GptDirect, MeicRepair, RepairMethod, RtlRepair, StriderRepair};
use uvllm_designs::Category;
use uvllm_errgen::{ErrorCategory, ErrorKind};
use uvllm_json::Json;
use uvllm_llm::{
    endpoint_gate, BatchedLlm, DirectService, EndpointGate, FaultPlan, FaultyLlm, LanguageModel,
    LlmService, ModelProfile, OracleLlm, OutputMode, ResiliencePolicy, ResilienceStats,
    ResilientService, SlowLlm, Usage, WaitStats,
};
use uvllm_sim::SimBackend;

/// The shared batched LLM service a campaign pool hangs its sessions
/// off: per-job models are boxed so latency-injection wrappers and
/// different backend kinds ride the same service.
pub type SharedLlm = BatchedLlm<Box<dyn LanguageModel>>;

/// How campaign jobs obtain their [`LlmService`] handle.
///
/// *Direct* policy gives each job an in-process [`DirectService`]
/// around its own model — the historical exclusive path. *Batched*
/// policy opens a session per job on one [`SharedLlm`], so every
/// worker's LLM round trips coalesce into batches while the other
/// workers keep simulating. Either way the job's model sees the same
/// prompts in the same order, so rows are byte-identical across
/// policies (the batching determinism contract).
#[derive(Debug)]
pub struct LlmPolicy<'s> {
    batched: Option<&'s SharedLlm>,
    latency: Option<Duration>,
    /// The exclusive endpoint connection that direct-mode injected
    /// latency serializes on (one gate per campaign = one endpoint).
    gate: EndpointGate,
    /// Seeded fault injection applied to every job's model (each job
    /// derives its own stream from the plan seed × its oracle seed, so
    /// fault schedules replay at any worker count).
    fault: Option<FaultPlan>,
    /// Retry/backoff + circuit-breaker + degradation policy wrapped
    /// around every job's service handle (per-job jitter derivation,
    /// same salt discipline as the fault plan).
    resilience: Option<ResiliencePolicy>,
}

impl LlmPolicy<'static> {
    /// Per-job direct services, no injected latency: the default.
    pub fn direct() -> Self {
        LlmPolicy {
            batched: None,
            latency: None,
            gate: endpoint_gate(),
            fault: None,
            resilience: None,
        }
    }
}

impl<'s> LlmPolicy<'s> {
    /// Sessions on a shared batched service.
    pub fn batched(service: &'s SharedLlm) -> LlmPolicy<'s> {
        LlmPolicy {
            batched: Some(service),
            latency: None,
            gate: endpoint_gate(),
            fault: None,
            resilience: None,
        }
    }

    /// Injects a per-round-trip endpoint latency in *direct* mode
    /// (batched mode injects it per flush via
    /// [`uvllm_llm::BatchConfig::round_trip`] instead — the engine
    /// wires both from one knob).
    pub fn with_latency(mut self, latency: Option<Duration>) -> Self {
        self.latency = latency;
        self
    }

    /// Wraps every job's model in a seeded [`FaultyLlm`].
    pub fn with_faults(mut self, fault: Option<FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    /// Wraps every job's service handle in a [`ResilientService`].
    pub fn with_resilience(mut self, resilience: Option<ResiliencePolicy>) -> Self {
        self.resilience = resilience;
        self
    }

    /// Builds the service handle a job drives its repair loop through
    /// (no fault/jitter salt — standalone call sites outside a campaign
    /// job).
    pub fn service_for(&self, model: Box<dyn LanguageModel>) -> Box<dyn LlmService> {
        self.service_for_job(model, 0)
    }

    /// Builds a job's service handle, deriving its fault and jitter
    /// streams from `salt` (the job's oracle seed) so both replay
    /// per-job regardless of worker count or pop order.
    ///
    /// Layering, inside out: model → [`FaultyLlm`] (faults originate at
    /// the backend) → latency wrapper / batched session (transport) →
    /// [`ResilientService`] (retries sit above the transport, exactly
    /// where a production client's retry loop lives).
    pub fn service_for_job(&self, model: Box<dyn LanguageModel>, salt: u64) -> Box<dyn LlmService> {
        let model: Box<dyn LanguageModel> = match &self.fault {
            Some(plan) => Box::new(FaultyLlm::new(model, plan.derive(salt))),
            None => model,
        };
        let service: Box<dyn LlmService> = match self.batched {
            Some(service) => Box::new(service.client(model)),
            None => match self.latency {
                Some(latency) => Box::new(DirectService::new(SlowLlm::new(
                    model,
                    latency,
                    EndpointGate::clone(&self.gate),
                ))),
                None => Box::new(DirectService::new(model)),
            },
        };
        match &self.resilience {
            Some(policy) => Box::new(ResilientService::new(service, policy.derive(salt))),
            None => service,
        }
    }
}

/// Which method to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// The full framework (pair-wise repair generation).
    Uvllm,
    /// Table III ablation: complete-code regeneration.
    UvllmComplete,
    Meic,
    GptDirect,
    Strider,
    RtlRepair,
}

impl MethodKind {
    /// Every method, in table order.
    pub const ALL: [MethodKind; 6] = [
        MethodKind::Uvllm,
        MethodKind::UvllmComplete,
        MethodKind::Meic,
        MethodKind::GptDirect,
        MethodKind::Strider,
        MethodKind::RtlRepair,
    ];

    /// Display name used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Uvllm => "UVLLM",
            MethodKind::UvllmComplete => "UVLLM(comp)",
            MethodKind::Meic => "MEIC",
            MethodKind::GptDirect => "GPT-4-turbo",
            MethodKind::Strider => "Strider",
            MethodKind::RtlRepair => "RTLrepair",
        }
    }

    /// Parses a [`MethodKind::label`] back (CLI / row decoding).
    pub fn from_label(label: &str) -> Option<MethodKind> {
        MethodKind::ALL.into_iter().find(|m| m.label() == label)
    }

    /// Seed salt so each method draws independent oracle randomness.
    fn salt(&self) -> u64 {
        match self {
            MethodKind::Uvllm => 0x01,
            MethodKind::UvllmComplete => 0x02,
            MethodKind::Meic => 0x03,
            MethodKind::GptDirect => 0x04,
            MethodKind::Strider => 0x05,
            MethodKind::RtlRepair => 0x06,
        }
    }
}

/// One instance × method evaluation result.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    pub instance_id: String,
    pub design: &'static str,
    pub group: Category,
    pub kind: ErrorKind,
    pub category: ErrorCategory,
    pub method: MethodKind,
    /// Simulation kernel the job ran on.
    pub backend: SimBackend,
    /// Passed the public directed vectors (Hit Rate).
    pub hit: bool,
    /// Passed the extended differential validation (Fix Rate).
    pub fixed: bool,
    /// Classified Fix-Rate outcome (pass / mismatch / unstable /
    /// build-failed) — surfaces `SimError::Unstable` as a distinct
    /// outcome instead of a bare `fixed == false`.
    pub fix_outcome: Verdict,
    /// The method's own claim of success.
    pub claimed: bool,
    /// Total execution time in (simulated+measured) seconds.
    pub texec: f64,
    /// UVLLM-only: per-stage times.
    pub stage_times: Option<StageTimes>,
    /// UVLLM-only: which stage produced the final fix.
    pub fixed_by: Option<Stage>,
    /// LLM accounting.
    pub usage: Usage,
    /// Wall-clock time this job spent blocked on the LLM service
    /// (scheduling telemetry — not part of the deterministic row).
    pub llm_wait: Duration,
    /// Largest service flush any of this job's prompts rode in
    /// (1 on a direct service; telemetry, like `llm_wait`).
    pub llm_batch_max: u64,
    /// True when any of this job's completions came from the
    /// resilience layer's degradation fallback (retry budget, deadline
    /// or breaker exhausted) — the row-honesty tag the fault-tolerance
    /// byte-identity gate filters on.
    pub degraded: bool,
}

impl EvalRecord {
    /// The campaign job identifier this record answers.
    pub fn job_id(&self) -> String {
        job_id(&self.instance_id, self.method)
    }

    /// Projects the record onto its deterministic JSONL row. The
    /// telemetry members stay `None` here; the engine fills them in
    /// only when the campaign opts into `llm_telemetry` (they are
    /// wall-clock measurements, excluded from the byte-identity
    /// contract).
    pub fn to_row(&self) -> EvalRow {
        EvalRow {
            id: self.job_id(),
            instance: self.instance_id.clone(),
            design: self.design.to_string(),
            group: self.group.label().to_string(),
            kind: self.kind.name().to_string(),
            syntax: self.kind.is_syntax(),
            category: self.category.label().to_string(),
            method: self.method.label().to_string(),
            backend: self.backend.label().to_string(),
            hit: self.hit,
            fixed: self.fixed,
            outcome: self.fix_outcome.label().to_string(),
            claimed: self.claimed,
            llm_calls: self.usage.calls,
            prompt_tokens: self.usage.prompt_tokens,
            completion_tokens: self.usage.completion_tokens,
            sim_latency_ms: self.usage.latency.as_millis() as u64,
            fixed_by: self.fixed_by.map(|s| s.label().to_string()),
            degraded: if self.degraded { Some(true) } else { None },
            llm_wait_ms: None,
            llm_batch_max: None,
        }
    }

    /// [`EvalRecord::to_row`] with the wall-clock LLM telemetry members
    /// filled in (opt-in: these vary with batch schedule and machine
    /// load, so rows carrying them are excluded from the determinism
    /// contract).
    pub fn to_row_with_telemetry(&self) -> EvalRow {
        let mut row = self.to_row();
        row.llm_wait_ms = Some(self.llm_wait.as_millis() as u64);
        row.llm_batch_max = Some(self.llm_batch_max);
        row
    }
}

/// Stable identifier of one campaign job.
pub fn job_id(instance_id: &str, method: MethodKind) -> String {
    format!("{instance_id}@{}", method.label())
}

/// The JSONL projection of an [`EvalRecord`].
///
/// Every field is a pure function of the job (instance × method ×
/// seeds): wall-clock measurements are deliberately excluded, which is
/// what makes campaign output byte-identical (modulo row order) at any
/// worker count. LLM latency is the calibrated *simulated* latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalRow {
    /// Job id: `<design>/<kind>#<seed>@<method>`.
    pub id: String,
    /// Benchmark instance id: `<design>/<kind>#<seed>`.
    pub instance: String,
    pub design: String,
    /// Design group label (Table II).
    pub group: String,
    /// Error-kind name (Table I).
    pub kind: String,
    /// True for syntax kinds (Fig. 5), false for functional (Fig. 6).
    pub syntax: bool,
    /// Error-category label (figure x-axes).
    pub category: String,
    /// Method label.
    pub method: String,
    /// Simulation-kernel label (`event` / `compiled`).
    pub backend: String,
    pub hit: bool,
    pub fixed: bool,
    /// Classified Fix-Rate outcome label
    /// (`pass` / `mismatch` / `unstable` / `build-failed`).
    pub outcome: String,
    pub claimed: bool,
    pub llm_calls: u64,
    pub prompt_tokens: u64,
    pub completion_tokens: u64,
    /// Simulated LLM latency (deterministic Texec proxy).
    pub sim_latency_ms: u64,
    /// Stage label that produced the fix (UVLLM methods only).
    pub fixed_by: Option<String>,
    /// `Some(true)` when the job's LLM traffic fell back to the
    /// degradation chain. Serialized only when set, so fault-free rows
    /// stay byte-identical to pre-resilience rows; degraded rows are
    /// the explicit carve-out of the byte-identity gate.
    pub degraded: Option<bool>,
    /// Opt-in telemetry: wall-clock ms the job spent blocked on the
    /// LLM service. Serialized only when present; absent by default so
    /// canonical rows stay byte-identical across batch schedules.
    pub llm_wait_ms: Option<u64>,
    /// Opt-in telemetry: largest service flush the job's prompts rode
    /// in. Same serialization rule as `llm_wait_ms`.
    pub llm_batch_max: Option<u64>,
}

impl EvalRow {
    /// Serialises to one compact JSON line (fixed member order; the
    /// optional telemetry members are appended only when present).
    pub fn to_json_line(&self) -> String {
        let mut members = vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("instance".into(), Json::Str(self.instance.clone())),
            ("design".into(), Json::Str(self.design.clone())),
            ("group".into(), Json::Str(self.group.clone())),
            ("kind".into(), Json::Str(self.kind.clone())),
            ("syntax".into(), Json::Bool(self.syntax)),
            ("category".into(), Json::Str(self.category.clone())),
            ("method".into(), Json::Str(self.method.clone())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("hit".into(), Json::Bool(self.hit)),
            ("fixed".into(), Json::Bool(self.fixed)),
            ("outcome".into(), Json::Str(self.outcome.clone())),
            ("claimed".into(), Json::Bool(self.claimed)),
            ("llm_calls".into(), Json::Num(self.llm_calls as f64)),
            ("prompt_tokens".into(), Json::Num(self.prompt_tokens as f64)),
            ("completion_tokens".into(), Json::Num(self.completion_tokens as f64)),
            ("sim_latency_ms".into(), Json::Num(self.sim_latency_ms as f64)),
            (
                "fixed_by".into(),
                match &self.fixed_by {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
        ];
        if let Some(degraded) = self.degraded {
            members.push(("degraded".into(), Json::Bool(degraded)));
        }
        if let Some(wait) = self.llm_wait_ms {
            members.push(("llm_wait_ms".into(), Json::Num(wait as f64)));
        }
        if let Some(batch) = self.llm_batch_max {
            members.push(("llm_batch_max".into(), Json::Num(batch as f64)));
        }
        Json::Obj(members).render()
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending member: whether it is
    /// missing outright or present with the wrong type (and which type
    /// was found). Callers that know the line's position prefix it as
    /// `path:line:` — [`crate::sink::SinkTailer`] and `campaign merge`
    /// both do, so shard diagnostics point at the exact line and key.
    pub fn from_json_line(line: &str) -> Result<EvalRow, String> {
        let v = Json::parse(line.trim())?;
        let found = |value: &Json| -> &'static str {
            match value {
                Json::Null => "null",
                Json::Bool(_) => "a bool",
                Json::Num(_) => "a number",
                Json::Str(_) => "a string",
                Json::Arr(_) => "an array",
                Json::Obj(_) => "an object",
            }
        };
        let str_member = |key: &str| -> Result<String, String> {
            match v.get(key) {
                None => Err(format!("row missing member '{key}'")),
                Some(Json::Str(s)) => Ok(s.clone()),
                Some(other) => {
                    Err(format!("row member '{key}' must be a string, found {}", found(other)))
                }
            }
        };
        let bool_member = |key: &str| -> Result<bool, String> {
            match v.get(key) {
                None => Err(format!("row missing member '{key}'")),
                Some(Json::Bool(b)) => Ok(*b),
                Some(other) => {
                    Err(format!("row member '{key}' must be a bool, found {}", found(other)))
                }
            }
        };
        let num_member = |key: &str| -> Result<u64, String> {
            match v.get(key) {
                None => Err(format!("row missing member '{key}'")),
                Some(value) => value.as_u64().ok_or_else(|| {
                    format!(
                        "row member '{key}' must be a non-negative integer, found {}",
                        found(value)
                    )
                }),
            }
        };
        Ok(EvalRow {
            id: str_member("id")?,
            instance: str_member("instance")?,
            design: str_member("design")?,
            group: str_member("group")?,
            kind: str_member("kind")?,
            syntax: bool_member("syntax")?,
            category: str_member("category")?,
            method: str_member("method")?,
            // Rows written before the backend/outcome schema fields
            // existed decode with their historical implicit values.
            backend: match v.get("backend") {
                Some(_) => str_member("backend")?,
                None => SimBackend::EventDriven.label().to_string(),
            },
            hit: bool_member("hit")?,
            fixed: bool_member("fixed")?,
            outcome: match v.get("outcome") {
                Some(_) => str_member("outcome")?,
                None => {
                    if bool_member("fixed")? {
                        Verdict::Pass.label().to_string()
                    } else {
                        Verdict::Mismatch.label().to_string()
                    }
                }
            },
            claimed: bool_member("claimed")?,
            llm_calls: num_member("llm_calls")?,
            prompt_tokens: num_member("prompt_tokens")?,
            completion_tokens: num_member("completion_tokens")?,
            sim_latency_ms: num_member("sim_latency_ms")?,
            fixed_by: match v.get("fixed_by") {
                Some(Json::Str(s)) => Some(s.clone()),
                Some(Json::Null) | None => None,
                Some(other) => {
                    return Err(format!(
                        "row member 'fixed_by' must be a string or null, found {}",
                        found(other)
                    ))
                }
            },
            degraded: v.get("degraded").and_then(Json::as_bool),
            llm_wait_ms: v.get("llm_wait_ms").and_then(Json::as_u64),
            llm_batch_max: v.get("llm_batch_max").and_then(Json::as_u64),
        })
    }
}

/// Evaluates `method` on one instance on the process-default simulation
/// backend ([`SimBackend::from_env`]).
pub fn evaluate_one(method: MethodKind, inst: &BenchInstance) -> EvalRecord {
    evaluate_one_with(method, inst, SimBackend::from_env())
}

/// Evaluates `method` on one instance on an explicit simulation
/// backend, with a per-job [`DirectService`] around the job's oracle.
pub fn evaluate_one_with(
    method: MethodKind,
    inst: &BenchInstance,
    backend: SimBackend,
) -> EvalRecord {
    evaluate_one_on(method, inst, backend, &LlmPolicy::direct())
}

/// Evaluates `method` on one instance under an explicit simulation
/// backend and LLM dispatch policy.
///
/// Everything stochastic is derived from the instance seed and the
/// method salt, so the record is a pure function of its job — the
/// bedrock of campaign determinism and resumability. The two backends
/// are waveform-identical (enforced by the differential equivalence
/// suite) and the LLM policy only changes *where* the job's own model
/// answers (inline vs. on the shared service thread), so backend and
/// policy change wall-clock, not verdicts.
///
/// Per-job cost model: every metric run crosses the scoreboard
/// boundary through the index-based `IoFrame` exchange (zero
/// allocations per checked cycle), and on the compiled backend the
/// repeated runs over one candidate text share a pooled, state-reset
/// `CompiledSim` instance (`uvllm_sim::checkout_sim`) instead of
/// re-instantiating per run — `reset_state` makes a reused instance
/// indistinguishable from a fresh one, so determinism is unaffected.
pub fn evaluate_one_on(
    method: MethodKind,
    inst: &BenchInstance,
    backend: SimBackend,
    llm: &LlmPolicy<'_>,
) -> EvalRecord {
    let oracle_seed = inst.seed ^ method.salt().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let design = inst.design;
    let oracle = |profile| -> Box<dyn LanguageModel> {
        Box::new(OracleLlm::new(inst.ground_truth.clone(), design.source, profile, oracle_seed))
    };
    let (final_code, claimed, texec, stage_times, fixed_by, usage, wait, resilience) = {
        // `stage_us.repair` spans the whole method run (localize +
        // repair attempts + internal re-simulation), mirroring the
        // paper's repair stage; parse/elab/simulate stages are timed at
        // their own layers.
        let _span = uvllm_obs::Span::enter("repair");
        match method {
            MethodKind::Uvllm | MethodKind::UvllmComplete => {
                let config = VerifyConfig {
                    output_mode: if method == MethodKind::UvllmComplete {
                        OutputMode::Complete
                    } else {
                        OutputMode::Pairs
                    },
                    backend,
                    ..VerifyConfig::default()
                };
                // The job drives its own service handle (and, through it,
                // its own seeded model): the whole run is Send and shares
                // no mutable LLM state with other jobs even when the
                // handle is a session of the campaign-wide BatchedLlm.
                let service = llm.service_for_job(oracle(ModelProfile::Gpt4Turbo), oracle_seed);
                let mut framework = Uvllm::with_service(service, config);
                let out = framework.verify(design, &inst.mutated_src);
                let service = framework.into_service();
                (
                    out.final_code,
                    out.success,
                    out.times.total().as_secs_f64(),
                    Some(out.times),
                    out.fixed_by,
                    out.usage,
                    service.wait_stats(),
                    service.resilience_stats(),
                )
            }
            MethodKind::Meic => {
                let mut service =
                    llm.service_for_job(oracle(ModelProfile::Gpt4TurboWeakHarness), oracle_seed);
                let mut m = MeicRepair::new(&mut *service).with_backend(backend);
                let out = m.repair(design, &inst.mutated_src);
                (
                    out.final_code,
                    out.claimed_success,
                    out.time.as_secs_f64(),
                    None,
                    None,
                    out.usage,
                    service.wait_stats(),
                    service.resilience_stats(),
                )
            }
            MethodKind::GptDirect => {
                let mut service =
                    llm.service_for_job(oracle(ModelProfile::Gpt4TurboWeakHarness), oracle_seed);
                let mut m = GptDirect::new(&mut *service).with_backend(backend);
                let out = m.repair(design, &inst.mutated_src);
                (
                    out.final_code,
                    out.claimed_success,
                    out.time.as_secs_f64(),
                    None,
                    None,
                    out.usage,
                    service.wait_stats(),
                    service.resilience_stats(),
                )
            }
            MethodKind::Strider => {
                let mut m = StriderRepair::new().with_backend(backend);
                let out = m.repair(design, &inst.mutated_src);
                (
                    out.final_code,
                    out.claimed_success,
                    out.time.as_secs_f64(),
                    None,
                    None,
                    out.usage,
                    WaitStats::default(),
                    ResilienceStats::default(),
                )
            }
            MethodKind::RtlRepair => {
                let mut m = RtlRepair::new().with_backend(backend);
                let out = m.repair(design, &inst.mutated_src);
                (
                    out.final_code,
                    out.claimed_success,
                    out.time.as_secs_f64(),
                    None,
                    None,
                    out.usage,
                    WaitStats::default(),
                    ResilienceStats::default(),
                )
            }
        }
    };
    // `stage_us.simulate`: the verdict runs driving the final candidate
    // through the UVM environment on the chosen kernel.
    let (hit, fix_outcome) = {
        let _span = uvllm_obs::Span::enter("simulate");
        (
            uvllm::metrics::hit_confirmed_with(design, &final_code, backend),
            uvllm::metrics::fix_verdict_with(design, &final_code, backend),
        )
    };
    EvalRecord {
        instance_id: inst.id(),
        design: design.name,
        group: design.category,
        kind: inst.kind,
        category: inst.ground_truth.category,
        method,
        backend,
        hit,
        fixed: fix_outcome.passed(),
        fix_outcome,
        claimed,
        texec,
        stage_times,
        fixed_by,
        usage,
        llm_wait: wait.wait,
        llm_batch_max: wait.max_batch as u64,
        degraded: resilience.degraded > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm::build_instance;
    use uvllm_designs::by_name;

    #[test]
    fn row_round_trips_through_jsonl() {
        let d = by_name("adder_8bit").unwrap();
        let inst = build_instance(d, ErrorKind::OperatorMisuse, 5).expect("instance");
        let rec = evaluate_one(MethodKind::Uvllm, &inst);
        let row = rec.to_row();
        let line = row.to_json_line();
        assert!(!line.contains('\n'));
        let back = EvalRow::from_json_line(&line).unwrap();
        assert_eq!(back, row);
        assert_eq!(back.id, rec.job_id());
        assert!(back.id.ends_with("@UVLLM"));
    }

    #[test]
    fn rows_are_a_pure_function_of_the_job() {
        let d = by_name("counter_12").unwrap();
        let inst = build_instance(d, ErrorKind::ValueMisuse, 9).expect("instance");
        for method in [MethodKind::Uvllm, MethodKind::Meic, MethodKind::Strider] {
            let a = evaluate_one(method, &inst).to_row();
            let b = evaluate_one(method, &inst).to_row();
            assert_eq!(a.to_json_line(), b.to_json_line(), "{method:?}");
        }
    }

    #[test]
    fn method_labels_round_trip() {
        for m in MethodKind::ALL {
            assert_eq!(MethodKind::from_label(m.label()), Some(m));
        }
        assert_eq!(MethodKind::from_label("nope"), None);
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert!(EvalRow::from_json_line("not json").is_err());
        assert!(EvalRow::from_json_line("{\"id\": \"x\"}").is_err());
    }
}
