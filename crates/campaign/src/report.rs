//! Campaign-level aggregation: the Table II / Fig. 5–7 rollups computed
//! over [`EvalRow`]s (so they work identically for fresh runs and
//! resumed JSONL files).

use crate::eval::EvalRow;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Aggregated view over a set of result rows.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    rows: Vec<EvalRow>,
}

/// `100 * num / den` with an empty-set guard.
pub fn percent(num: usize, den: usize) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64 * 100.0
    }
}

/// Formats a percentage cell (NaN → `x`, the paper's "not applicable").
pub fn pct_cell(v: f64) -> String {
    if v.is_nan() {
        "x".to_string()
    } else {
        format!("{v:.1}")
    }
}

impl CampaignReport {
    /// Builds a report over `rows`.
    pub fn new(rows: Vec<EvalRow>) -> Self {
        CampaignReport { rows }
    }

    /// The underlying rows.
    pub fn rows(&self) -> &[EvalRow] {
        &self.rows
    }

    /// Method labels present, in first-seen order.
    pub fn methods(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for row in &self.rows {
            if !seen.contains(&row.method) {
                seen.push(row.method.clone());
            }
        }
        seen
    }

    /// Fix rate (%) over rows matching `filter`.
    pub fn fr(&self, filter: impl Fn(&EvalRow) -> bool) -> f64 {
        let selected: Vec<&EvalRow> = self.rows.iter().filter(|r| filter(r)).collect();
        percent(selected.iter().filter(|r| r.fixed).count(), selected.len())
    }

    /// Hit rate (%) over rows matching `filter`.
    pub fn hr(&self, filter: impl Fn(&EvalRow) -> bool) -> f64 {
        let selected: Vec<&EvalRow> = self.rows.iter().filter(|r| filter(r)).collect();
        percent(selected.iter().filter(|r| r.hit).count(), selected.len())
    }

    /// Mean simulated execution time (seconds) over rows matching
    /// `filter`.
    pub fn mean_sim_secs(&self, filter: impl Fn(&EvalRow) -> bool) -> f64 {
        let selected: Vec<&EvalRow> = self.rows.iter().filter(|r| filter(r)).collect();
        if selected.is_empty() {
            return f64::NAN;
        }
        selected.iter().map(|r| r.sim_latency_ms as f64 / 1000.0).sum::<f64>()
            / selected.len() as f64
    }

    /// Renders every rollup as aligned ASCII tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "campaign rows: {}", self.rows.len());

        // ---- Per-method summary (Fig. 5/6 aggregate + cost) ---------
        let mut summary = AsciiTable::new(&[
            "Method",
            "Jobs",
            "HR/%",
            "FR/%",
            "Claimed/%",
            "SimT/s",
            "LLM calls",
        ]);
        for method in self.methods() {
            let of_method = |r: &&EvalRow| r.method == method;
            let rows: Vec<&EvalRow> = self.rows.iter().filter(of_method).collect();
            summary.row(vec![
                method.clone(),
                rows.len().to_string(),
                pct_cell(self.hr(|r| r.method == method)),
                pct_cell(self.fr(|r| r.method == method)),
                pct_cell(percent(rows.iter().filter(|r| r.claimed).count(), rows.len())),
                format!("{:.2}", self.mean_sim_secs(|r| r.method == method)),
                rows.iter().map(|r| r.llm_calls).sum::<u64>().to_string(),
            ]);
        }
        out.push_str("\n== Per-method summary ==\n");
        out.push_str(&summary.render());

        // ---- Syntax vs functional split (Fig. 5 / Fig. 6) -----------
        let mut split = AsciiTable::new(&["Method", "Syn HR", "Syn FR", "Fun HR", "Fun FR"]);
        for method in self.methods() {
            split.row(vec![
                method.clone(),
                pct_cell(self.hr(|r| r.method == method && r.syntax)),
                pct_cell(self.fr(|r| r.method == method && r.syntax)),
                pct_cell(self.hr(|r| r.method == method && !r.syntax)),
                pct_cell(self.fr(|r| r.method == method && !r.syntax)),
            ]);
        }
        out.push_str("\n== Syntax vs functional (Fig. 5/6) ==\n");
        out.push_str(&split.render());

        // ---- Per-category FR (figure x-axes) ------------------------
        let categories: BTreeSet<&String> = self.rows.iter().map(|r| &r.category).collect();
        let mut cat = AsciiTable::new(&["Category", "Rows", "FR/%", "HR/%"]);
        for category in categories {
            let n = self.rows.iter().filter(|r| &r.category == category).count();
            cat.row(vec![
                category.clone(),
                n.to_string(),
                pct_cell(self.fr(|r| &r.category == category)),
                pct_cell(self.hr(|r| &r.category == category)),
            ]);
        }
        out.push_str("\n== Per-category (all methods) ==\n");
        out.push_str(&cat.render());

        // ---- Per-design FR heat map (Fig. 7) ------------------------
        let designs: BTreeSet<&String> = self.rows.iter().map(|r| &r.design).collect();
        let methods = self.methods();
        let mut heat_header: Vec<&str> = vec!["Design"];
        for m in &methods {
            heat_header.push(m);
        }
        let mut heat = AsciiTable::new(&heat_header);
        for design in designs {
            let mut cells = vec![design.clone()];
            for method in &methods {
                cells.push(pct_cell(self.fr(|r| &r.design == design && &r.method == method)));
            }
            heat.row(cells);
        }
        out.push_str("\n== Per-design FR heat map (Fig. 7) ==\n");
        out.push_str(&heat.render());

        // ---- Stage attribution (Table II) ---------------------------
        let stages: BTreeSet<&String> =
            self.rows.iter().filter_map(|r| r.fixed_by.as_ref()).collect();
        if !stages.is_empty() {
            let mut table = AsciiTable::new(&["Stage", "Fixes", "Share/%"]);
            let fixed_total = self.rows.iter().filter(|r| r.fixed_by.is_some()).count();
            for stage in stages {
                let n = self.rows.iter().filter(|r| r.fixed_by.as_ref() == Some(stage)).count();
                table.row(vec![stage.clone(), n.to_string(), pct_cell(percent(n, fixed_total))]);
            }
            out.push_str("\n== Stage attribution (Table II) ==\n");
            out.push_str(&table.render());
        }
        out
    }
}

/// A minimal right-aligned ASCII table (first column left-aligned).
struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    fn new(header: &[&str]) -> Self {
        AsciiTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(method: &str, design: &str, syntax: bool, hit: bool, fixed: bool) -> EvalRow {
        EvalRow {
            id: format!("{design}/k#1@{method}"),
            instance: format!("{design}/k#1"),
            design: design.to_string(),
            group: "Arithmetic".into(),
            kind: "k".into(),
            syntax,
            category: if syntax { "Scope issues" } else { "Flawed conditions" }.into(),
            method: method.to_string(),
            backend: "event".into(),
            hit,
            fixed,
            outcome: if fixed { "pass" } else { "mismatch" }.into(),
            claimed: fixed,
            llm_calls: 2,
            prompt_tokens: 10,
            completion_tokens: 5,
            sim_latency_ms: 2000,
            fixed_by: fixed.then(|| "Repair in MS Mode".to_string()),
            degraded: None,
            llm_wait_ms: None,
            llm_batch_max: None,
        }
    }

    #[test]
    fn rates_and_rendering() {
        let report = CampaignReport::new(vec![
            row("UVLLM", "adder_8bit", true, true, true),
            row("UVLLM", "adder_8bit", false, true, false),
            row("MEIC", "mux4", false, false, false),
        ]);
        assert!((report.fr(|r| r.method == "UVLLM") - 50.0).abs() < 1e-9);
        assert!((report.hr(|r| r.method == "UVLLM") - 100.0).abs() < 1e-9);
        assert!(report.fr(|r| r.method == "nope").is_nan());
        assert_eq!(report.methods(), vec!["UVLLM".to_string(), "MEIC".to_string()]);
        let rendered = report.render();
        for heading in ["Per-method summary", "Fig. 5/6", "Fig. 7", "Table II"] {
            assert!(rendered.contains(heading), "missing {heading}:\n{rendered}");
        }
        assert!((report.mean_sim_secs(|_| true) - 2.0).abs() < 1e-9);
    }
}
