//! The campaign job model: one (design × mutation × seed) benchmark
//! instance crossed with one repair method, plus sharding.

use crate::eval::{job_id, MethodKind};
use std::sync::Arc;
use uvllm::BenchInstance;

/// One unit of campaign work.
#[derive(Debug, Clone)]
pub struct Job {
    /// Stable position in the campaign's full job list (used to order
    /// in-memory results deterministically regardless of which worker
    /// finished first).
    pub index: usize,
    /// The validated benchmark instance (shared across the methods that
    /// evaluate it).
    pub instance: Arc<BenchInstance>,
    /// The method under evaluation.
    pub method: MethodKind,
}

impl Job {
    /// Stable job identifier: `<design>/<kind>#<seed>@<method>`.
    pub fn id(&self) -> String {
        job_id(&self.instance.id(), self.method)
    }
}

/// A `i/n` shard selector: this process works job hashes `≡ index (mod
/// count)`, so `n` cooperating processes partition a campaign without
/// coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    pub index: usize,
    pub count: usize,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec { index: 0, count: 1 }
    }
}

impl ShardSpec {
    /// Parses the CLI form `i/n` (e.g. `0/4`).
    ///
    /// # Errors
    ///
    /// Rejects malformed text, `n == 0` and `i >= n`.
    pub fn parse(text: &str) -> Result<ShardSpec, String> {
        let (i, n) = text
            .split_once('/')
            .ok_or_else(|| format!("shard must look like 'i/n', got '{text}'"))?;
        let index: usize = i.trim().parse().map_err(|_| format!("bad shard index '{i}'"))?;
        let count: usize = n.trim().parse().map_err(|_| format!("bad shard count '{n}'"))?;
        let spec = ShardSpec { index, count };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the invariants `count >= 1 && index < count`.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be >= 1".to_string());
        }
        if self.index >= self.count {
            return Err(format!("shard index {} out of range 0..{}", self.index, self.count));
        }
        Ok(())
    }

    /// Does this shard own `job`?
    pub fn owns(&self, job: &Job) -> bool {
        self.count <= 1 || fnv1a64(job.id().as_bytes()) % self.count as u64 == self.index as u64
    }
}

/// FNV-1a: a stable, platform-independent hash for shard assignment
/// (std's hashers are either randomised or unspecified across
/// versions; shard membership must survive both).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Expands `instances × methods` into the campaign's full job list (in
/// deterministic order: instance-major, method-minor).
pub fn expand_jobs(instances: &[Arc<BenchInstance>], methods: &[MethodKind]) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(instances.len() * methods.len());
    for instance in instances {
        for &method in methods {
            jobs.push(Job { index: jobs.len(), instance: Arc::clone(instance), method });
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm::build_instance;
    use uvllm_designs::by_name;
    use uvllm_errgen::ErrorKind;

    fn sample_jobs() -> Vec<Job> {
        let d = by_name("adder_8bit").unwrap();
        let instances: Vec<Arc<BenchInstance>> = (0..4)
            .filter_map(|s| build_instance(d, ErrorKind::OperatorMisuse, s))
            .map(Arc::new)
            .collect();
        expand_jobs(&instances, &MethodKind::ALL)
    }

    #[test]
    fn shards_partition_the_job_list() {
        let jobs = sample_jobs();
        assert!(!jobs.is_empty());
        let n = 3;
        let mut owned = vec![0usize; n];
        for job in &jobs {
            let owners: Vec<usize> =
                (0..n).filter(|&i| ShardSpec { index: i, count: n }.owns(job)).collect();
            assert_eq!(owners.len(), 1, "{} owned by {owners:?}", job.id());
            owned[owners[0]] += 1;
        }
        assert_eq!(owned.iter().sum::<usize>(), jobs.len());
    }

    #[test]
    fn shard_parsing_validates() {
        assert_eq!(ShardSpec::parse("2/4").unwrap(), ShardSpec { index: 2, count: 4 });
        assert!(ShardSpec::parse("4/4").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("x").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
    }

    #[test]
    fn job_ids_are_unique_and_ordered() {
        let jobs = sample_jobs();
        let mut ids: Vec<String> = jobs.iter().map(Job::id).collect();
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
        }
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: shard membership must never change across
        // releases, or resumed campaigns would re-run completed work.
        assert_eq!(fnv1a64(b"adder_8bit/operator_misuse#3@UVLLM"), 0xC2E3_3C98_9628_88BB);
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
    }
}
