//! The campaign engine: dataset assembly, golden-design cache warm-up,
//! shard/resume filtering and the worker pool, glued to a result sink.

use crate::eval::{EvalRecord, MethodKind};
use crate::job::{expand_jobs, Job, ShardSpec};
use crate::queue::run_pool;
use crate::report::CampaignReport;
use crate::sink::ResultSink;
use std::sync::{Arc, Mutex};
use uvllm::BenchInstance;
use uvllm_sim::SimBackend;

/// What to run and how wide.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Benchmark instances to build (the paper's dataset is 331).
    pub dataset_size: usize,
    /// Dataset seed; the default matches [`uvllm::standard_dataset`].
    pub dataset_seed: u64,
    /// Methods to evaluate on every instance.
    pub methods: Vec<MethodKind>,
    /// Worker threads (0 = one per available CPU).
    pub workers: usize,
    /// Which `i/n` slice of the job space this process owns.
    pub shard: ShardSpec,
    /// Simulation kernel every job runs on (recorded per row; the two
    /// kernels are waveform-identical, so verdicts do not depend on it).
    pub backend: SimBackend,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            dataset_size: uvllm::dataset::PAPER_DATASET_SIZE,
            dataset_seed: 0xDA7A,
            methods: MethodKind::ALL.to_vec(),
            workers: 0,
            shard: ShardSpec::default(),
            backend: SimBackend::from_env(),
        }
    }
}

impl CampaignConfig {
    /// Resolves `workers == 0` to [`default_worker_count`].
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            default_worker_count()
        }
    }
}

/// The worker count used when none is configured: the `UVLLM_WORKERS`
/// environment variable, else one worker per available CPU. The single
/// sizing policy for campaigns and the bench harness alike.
pub fn default_worker_count() -> usize {
    std::env::var("UVLLM_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// What a finished (shard of a) campaign looked like.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Rollups over every row in the sink (resumed + fresh).
    pub report: CampaignReport,
    /// Records freshly evaluated by this run, in job order.
    pub new_records: Vec<EvalRecord>,
    /// Jobs in the full job space.
    pub total_jobs: usize,
    /// Jobs owned by other shards.
    pub sharded_out: usize,
    /// Jobs skipped because the sink already had their rows.
    pub resumed: usize,
    /// Distinct designs pre-elaborated into the cache.
    pub golden_designs: usize,
    /// Elaboration-cache counters after the run.
    pub elab_stats: uvllm_sim::ElabCacheStats,
}

/// A configured, validated campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Validates `config`.
    ///
    /// # Errors
    ///
    /// Rejects an invalid shard spec or an empty method list.
    pub fn new(config: CampaignConfig) -> Result<Campaign, String> {
        config.shard.validate()?;
        if config.methods.is_empty() {
            return Err("campaign needs at least one method".to_string());
        }
        Ok(Campaign { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign: builds the dataset, warms the elaboration
    /// cache with every golden design (exactly once per design), then
    /// drains the sharded job queue across the worker pool, streaming
    /// each finished row into `sink`.
    ///
    /// Output is deterministic: the same configuration produces
    /// byte-identical rows (modulo order) at any worker count, because
    /// every record is a pure function of its job.
    ///
    /// # Errors
    ///
    /// Returns the first sink I/O error, after the pool has wound down.
    pub fn run(&self, sink: &mut dyn ResultSink) -> std::io::Result<CampaignOutcome> {
        let dataset = uvllm::build_dataset_with(
            self.config.dataset_size,
            self.config.dataset_seed,
            self.config.backend,
        );
        let instances: Vec<Arc<BenchInstance>> =
            dataset.instances.into_iter().map(Arc::new).collect();

        // Pre-elaborate each distinct golden design once, before any
        // worker starts: afterwards every hit on the golden text —
        // and campaigns hit it constantly, every confirmed fix *is*
        // the golden text — costs a cache lookup, not an elaboration.
        let mut golden: Vec<&'static uvllm_designs::Design> = Vec::new();
        for inst in &instances {
            if !golden.iter().any(|d| d.name == inst.design.name) {
                golden.push(inst.design);
            }
        }
        for design in &golden {
            match self.config.backend {
                // The compiled cache has no in-flight dedup, so warming
                // it here (before the pool starts) is what makes
                // per-design levelization happen exactly once; it pulls
                // the elaboration through its own cache on the way.
                SimBackend::Compiled => {
                    let _ = uvllm_sim::compile_source_cached(design.source, design.name);
                }
                SimBackend::EventDriven => {
                    let _ = uvllm_sim::elaborate_source_cached(design.source, design.name);
                }
            }
        }

        let all_jobs = expand_jobs(&instances, &self.config.methods);
        let total_jobs = all_jobs.len();
        let completed = sink.completed_ids();
        let shard = self.config.shard;
        let mut sharded_out = 0usize;
        let mut resumed = 0usize;
        let jobs: Vec<Job> = all_jobs
            .into_iter()
            .filter(|job| {
                if !shard.owns(job) {
                    sharded_out += 1;
                    return false;
                }
                if completed.contains(&job.id()) {
                    resumed += 1;
                    return false;
                }
                true
            })
            .collect();

        let existing_rows = sink.existing_rows();
        let sink = Mutex::new(sink);
        let sink_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let backend = self.config.backend;
        let new_records = run_pool(jobs, self.config.effective_workers(), backend, |_, record| {
            let row = record.to_row();
            let mut guard = sink.lock().expect("sink poisoned");
            if let Err(e) = guard.append(&row) {
                sink_error.lock().expect("sink error poisoned").get_or_insert(e);
            }
        });
        if let Some(e) = sink_error.into_inner().expect("sink error poisoned") {
            return Err(e);
        }

        let mut rows = existing_rows;
        rows.extend(new_records.iter().map(EvalRecord::to_row));
        Ok(CampaignOutcome {
            report: CampaignReport::new(rows),
            new_records,
            total_jobs,
            sharded_out,
            resumed,
            golden_designs: golden.len(),
            elab_stats: uvllm_sim::cache::stats(),
        })
    }
}

/// Evaluates one method over pre-built instances on a worker pool,
/// returning records in instance order — the parallel engine behind
/// `uvllm_bench::harness::evaluate`. Runs on the process-default
/// simulation backend.
pub fn evaluate_parallel(
    method: MethodKind,
    instances: &[BenchInstance],
    workers: usize,
) -> Vec<EvalRecord> {
    evaluate_parallel_with(method, instances, workers, SimBackend::from_env())
}

/// [`evaluate_parallel`] on an explicit simulation backend.
pub fn evaluate_parallel_with(
    method: MethodKind,
    instances: &[BenchInstance],
    workers: usize,
    backend: SimBackend,
) -> Vec<EvalRecord> {
    let shared: Vec<Arc<BenchInstance>> = instances.iter().cloned().map(Arc::new).collect();
    let jobs = expand_jobs(&shared, &[method]);
    run_pool(jobs, workers.max(1), backend, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn tiny_config(workers: usize) -> CampaignConfig {
        CampaignConfig {
            dataset_size: 6,
            dataset_seed: 0x42,
            methods: vec![MethodKind::Strider, MethodKind::RtlRepair],
            workers,
            shard: ShardSpec::default(),
            backend: SimBackend::default(),
        }
    }

    #[test]
    fn campaign_runs_and_reports() {
        let mut sink = MemorySink::new();
        let outcome = Campaign::new(tiny_config(2)).unwrap().run(&mut sink).unwrap();
        assert_eq!(outcome.total_jobs, 12);
        assert_eq!(outcome.new_records.len(), 12);
        assert_eq!(sink.rows().len(), 12);
        assert_eq!(outcome.resumed, 0);
        assert_eq!(outcome.sharded_out, 0);
        assert!(outcome.golden_designs >= 1);
        assert_eq!(outcome.report.rows().len(), 12);
    }

    #[test]
    fn resume_skips_completed_jobs() {
        let mut sink = MemorySink::new();
        let campaign = Campaign::new(tiny_config(2)).unwrap();
        campaign.run(&mut sink).unwrap();
        // Second run over the same sink: everything is already there.
        let outcome = campaign.run(&mut sink).unwrap();
        assert_eq!(outcome.resumed, 12);
        assert!(outcome.new_records.is_empty());
        assert_eq!(sink.rows().len(), 12, "no duplicate rows on resume");
        assert_eq!(outcome.report.rows().len(), 12);
    }

    #[test]
    fn shards_union_to_the_full_campaign() {
        let mut whole = MemorySink::new();
        Campaign::new(tiny_config(1)).unwrap().run(&mut whole).unwrap();
        let mut union: Vec<String> = Vec::new();
        for index in 0..3 {
            let mut sink = MemorySink::new();
            let mut config = tiny_config(2);
            config.shard = ShardSpec { index, count: 3 };
            Campaign::new(config).unwrap().run(&mut sink).unwrap();
            union.extend(sink.rows().iter().map(|r| r.to_json_line()));
        }
        let mut expected: Vec<String> = whole.rows().iter().map(|r| r.to_json_line()).collect();
        expected.sort();
        union.sort();
        assert_eq!(union, expected, "3-way shard must partition the campaign exactly");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut bad_shard = tiny_config(1);
        bad_shard.shard = ShardSpec { index: 5, count: 2 };
        assert!(Campaign::new(bad_shard).is_err());
        let mut no_methods = tiny_config(1);
        no_methods.methods.clear();
        assert!(Campaign::new(no_methods).is_err());
    }
}
