//! The campaign engine: dataset assembly, golden-design cache warm-up,
//! shard/resume filtering and the worker pool, glued to a result sink.

use crate::eval::{EvalRecord, LlmPolicy, MethodKind, SharedLlm};
use crate::job::{expand_jobs, Job, ShardSpec};
use crate::queue::{run_pool, run_pool_supervised, PoolPolicy, PoolStats};
use crate::report::CampaignReport;
use crate::sink::ResultSink;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;
use uvllm::BenchInstance;
use uvllm_llm::{BatchConfig, BatchedLlm, FaultPlan, ResiliencePolicy};
use uvllm_sim::SimBackend;

/// Registry handles for the engine (`campaign.*`), resolved once.
/// Worker-side counters (`campaign.worker.<i>.jobs`, `campaign.queue_depth`)
/// live in [`crate::queue::run_pool`].
#[derive(Debug)]
struct CampaignMetrics {
    /// Rows successfully appended to the sink by this process.
    sink_rows: &'static uvllm_obs::Counter,
    /// Jobs skipped because the sink already held their rows.
    resume_skips: &'static uvllm_obs::Counter,
}

fn metrics() -> &'static CampaignMetrics {
    static METRICS: std::sync::OnceLock<CampaignMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| CampaignMetrics {
        sink_rows: uvllm_obs::registry().counter("campaign.sink_rows"),
        resume_skips: uvllm_obs::registry().counter("campaign.resume_skips"),
    })
}

/// What to run and how wide.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Benchmark instances to build (the paper's dataset is 331).
    pub dataset_size: usize,
    /// Dataset seed; the default matches [`uvllm::standard_dataset`].
    pub dataset_seed: u64,
    /// Methods to evaluate on every instance.
    pub methods: Vec<MethodKind>,
    /// Worker threads (0 = one per available CPU).
    pub workers: usize,
    /// Which `i/n` slice of the job space this process owns.
    pub shard: ShardSpec,
    /// Simulation kernel every job runs on (recorded per row; the two
    /// kernels are waveform-identical, so verdicts do not depend on it).
    pub backend: SimBackend,
    /// `Some` runs every job's LLM traffic through one shared
    /// [`BatchedLlm`] with this flush policy; `None` (default) gives
    /// each job an in-process direct service. Either way the rows are
    /// byte-identical — batching changes wall-clock only.
    pub llm_batch: Option<BatchConfig>,
    /// Injected endpoint round-trip latency: per prompt in direct mode
    /// (on one exclusive connection), per flush in batched mode. The
    /// knob behind the overlap benchmark; `None` for real runs.
    pub llm_latency: Option<Duration>,
    /// Record per-job `llm_wait_ms` / `llm_batch_max` telemetry members
    /// in JSONL rows. Off by default: the members are wall-clock
    /// measurements and therefore excluded from the row byte-identity
    /// contract.
    pub llm_telemetry: bool,
    /// `Some` writes a [`uvllm_obs`] snapshot (`MetricsSnapshot::render`)
    /// to this path at the end of the run, plus a best-effort periodic
    /// flush every [`CampaignConfig::metrics_flush_jobs`] finished jobs.
    /// Metrics never touch the rows: metrics-on and metrics-off runs
    /// produce byte-identical JSONL.
    pub metrics_out: Option<std::path::PathBuf>,
    /// Periodic metrics-flush cadence in finished jobs (0 disables the
    /// periodic flush; the end-of-run snapshot is always written when
    /// [`CampaignConfig::metrics_out`] is set).
    pub metrics_flush_jobs: usize,
    /// Netlist optimization level (0–3) applied to every design the
    /// elaboration cache hands out, via the standard `uvllm-netlist`
    /// pipeline. The passes are waveform-equivalence-preserving, so
    /// rows are byte-identical at every level — the knob changes
    /// simulation cost, never verdicts. Cache keys include the level,
    /// so optimized and unoptimized variants never collide.
    pub opt_level: u8,
    /// `Some` wraps every job's model in a seeded
    /// [`uvllm_llm::FaultyLlm`] (per-job streams derived from the plan
    /// seed × the job's oracle seed). The fault-injection harness the
    /// resilience layer is proven against; `None` for real runs.
    pub fault: Option<FaultPlan>,
    /// `Some` wraps every job's service handle in a
    /// [`uvllm_llm::ResilientService`] with this policy (per-job jitter
    /// derivation). Independent of `fault`, so resilience can run
    /// against real transports too.
    pub resilience: Option<ResiliencePolicy>,
    /// Worker-pool supervision: per-job deadline and the deterministic
    /// failure-injection knobs (see [`PoolPolicy`]).
    pub pool: PoolPolicy,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            dataset_size: uvllm::dataset::PAPER_DATASET_SIZE,
            dataset_seed: 0xDA7A,
            methods: MethodKind::ALL.to_vec(),
            workers: 0,
            shard: ShardSpec::default(),
            backend: SimBackend::from_env(),
            llm_batch: None,
            llm_latency: None,
            llm_telemetry: false,
            metrics_out: None,
            metrics_flush_jobs: 64,
            opt_level: 0,
            fault: None,
            resilience: None,
            pool: PoolPolicy::default(),
        }
    }
}

impl CampaignConfig {
    /// Resolves `workers == 0` to [`default_worker_count`].
    ///
    /// Prefer validating through [`Campaign::new`], which resolves the
    /// count up front and surfaces a bad `UVLLM_WORKERS` as a config
    /// `Err` instead of this method's panic.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            default_worker_count()
        }
    }
}

/// Reads the worker-count override from `UVLLM_WORKERS`.
///
/// Returns `Ok(None)` when the variable is unset.
///
/// # Errors
///
/// A set-but-invalid value (not a positive integer) is rejected with a
/// message naming the variable — never silently replaced by the CPU
/// count, which used to mask typos like `UVLLM_WORKERS=eight`.
pub fn worker_count_from_env() -> Result<Option<usize>, String> {
    match std::env::var("UVLLM_WORKERS") {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("UVLLM_WORKERS is set to a non-unicode value".to_string())
        }
        Ok(text) => match text.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(format!(
                "UVLLM_WORKERS must be a positive integer, got '{text}' \
                 (unset it to use one worker per available CPU)"
            )),
        },
    }
}

/// The worker count used when none is configured: the `UVLLM_WORKERS`
/// environment variable, else one worker per available CPU. The single
/// sizing policy for campaigns and the bench harness alike.
///
/// # Panics
///
/// Panics with [`worker_count_from_env`]'s message when the variable is
/// set but invalid — a configuration error that must not degrade into a
/// silent CPU-count fallback.
pub fn default_worker_count() -> usize {
    match worker_count_from_env() {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        Err(message) => panic!("{message}"),
    }
}

/// What a finished (shard of a) campaign looked like.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Rollups over every row in the sink (resumed + fresh).
    pub report: CampaignReport,
    /// Records freshly evaluated by this run, in job order.
    pub new_records: Vec<EvalRecord>,
    /// Jobs in the full job space.
    pub total_jobs: usize,
    /// Jobs owned by other shards.
    pub sharded_out: usize,
    /// Jobs skipped because the sink already had their rows.
    pub resumed: usize,
    /// Distinct designs pre-elaborated into the cache.
    pub golden_designs: usize,
    /// Elaboration-cache counters after the run.
    pub elab_stats: uvllm_sim::ElabCacheStats,
    /// Registry snapshot taken when the pool wound down: kernel, cache,
    /// campaign and LLM-service counters (`llm.ticket_wait_us` and
    /// friends replace the old `llm_wait_total` / `llm_batch_max`
    /// roll-ups; per-job waits stay on [`EvalRecord`]).
    pub metrics: uvllm_obs::MetricsSnapshot,
    /// What worker supervision did: panics caught, requeues granted,
    /// deadline overruns, quarantined rows.
    pub pool_stats: PoolStats,
}

/// A configured, validated campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
    /// Worker count resolved at validation time (so a bad
    /// `UVLLM_WORKERS` is a config `Err`, not a mid-run panic).
    workers: usize,
}

impl Campaign {
    /// Validates `config`.
    ///
    /// # Errors
    ///
    /// Rejects an invalid shard spec, an empty method list, a bad opt
    /// level, or — when `config.workers == 0` defers sizing to the
    /// environment — an unparsable `UVLLM_WORKERS` value
    /// ([`worker_count_from_env`]'s message, propagated instead of
    /// panicking inside the run).
    pub fn new(config: CampaignConfig) -> Result<Campaign, String> {
        config.shard.validate()?;
        if config.methods.is_empty() {
            return Err("campaign needs at least one method".to_string());
        }
        if uvllm_netlist::OptLevel::from_u8(config.opt_level).is_none() {
            return Err(format!("opt level must be 0..=3, got {}", config.opt_level));
        }
        let workers = if config.workers > 0 {
            config.workers
        } else {
            match worker_count_from_env()? {
                Some(n) => n,
                None => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            }
        };
        Ok(Campaign { config, workers })
    }

    /// The validated configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign: builds the dataset, warms the elaboration
    /// cache with every golden design (exactly once per design), then
    /// drains the sharded job queue across the worker pool, streaming
    /// each finished row into `sink`.
    ///
    /// Output is deterministic: the same configuration produces
    /// byte-identical rows (modulo order) at any worker count, because
    /// every record is a pure function of its job.
    ///
    /// # Errors
    ///
    /// Returns the first sink I/O error, after the pool has wound down.
    pub fn run(&self, sink: &mut dyn ResultSink) -> std::io::Result<CampaignOutcome> {
        self.run_shared(sink, None)
    }

    /// [`Campaign::run`] on a caller-owned batched LLM service instead
    /// of one constructed per run — the resident-worker path, where one
    /// [`SharedLlm`] outlives many leased shards and its flush policy
    /// keeps coalescing prompts across them. `None` behaves exactly
    /// like [`Campaign::run`] (a per-run service is started when
    /// `config.llm_batch` asks for one). Rows are byte-identical either
    /// way: sessions see their own prompts in submission order
    /// regardless of which service thread carries them.
    ///
    /// # Errors
    ///
    /// Returns the first sink I/O error, after the pool has wound down.
    pub fn run_shared(
        &self,
        sink: &mut dyn ResultSink,
        shared: Option<&SharedLlm>,
    ) -> std::io::Result<CampaignOutcome> {
        // Every elaboration below — warm-up and worker-side alike —
        // goes through the cache, which consults the process-default
        // profile, so installing it first covers the whole run.
        uvllm_netlist::install_default_opt(
            uvllm_netlist::OptLevel::from_u8(self.config.opt_level)
                .expect("validated in Campaign::new"),
        );
        let dataset = uvllm::build_dataset_with(
            self.config.dataset_size,
            self.config.dataset_seed,
            self.config.backend,
        );
        let instances: Vec<Arc<BenchInstance>> =
            dataset.instances.into_iter().map(Arc::new).collect();

        // Pre-elaborate each distinct golden design once, before any
        // worker starts: afterwards every hit on the golden text —
        // and campaigns hit it constantly, every confirmed fix *is*
        // the golden text — costs a cache lookup, not an elaboration.
        let mut golden: Vec<&'static uvllm_designs::Design> = Vec::new();
        for inst in &instances {
            if !golden.iter().any(|d| d.name == inst.design.name) {
                golden.push(inst.design);
            }
        }
        for design in &golden {
            match self.config.backend {
                // The compiled cache has no in-flight dedup, so warming
                // it here (before the pool starts) is what makes
                // per-design levelization happen exactly once; it pulls
                // the elaboration through its own cache on the way.
                SimBackend::Compiled => {
                    let _ = uvllm_sim::compile_source_cached(design.source, design.name);
                }
                SimBackend::EventDriven => {
                    let _ = uvllm_sim::elaborate_source_cached(design.source, design.name);
                }
            }
        }

        let all_jobs = expand_jobs(&instances, &self.config.methods);
        let total_jobs = all_jobs.len();
        let completed = sink.completed_ids();
        let shard = self.config.shard;
        let mut sharded_out = 0usize;
        let mut resumed = 0usize;
        let jobs: Vec<Job> = all_jobs
            .into_iter()
            .filter(|job| {
                if !shard.owns(job) {
                    sharded_out += 1;
                    return false;
                }
                if completed.contains(&job.id()) {
                    resumed += 1;
                    return false;
                }
                true
            })
            .collect();

        let campaign_metrics = metrics();
        if resumed > 0 {
            campaign_metrics.resume_skips.add(resumed as u64);
        }

        let existing_rows = sink.existing_rows();
        let sink = Mutex::new(sink);
        let sink_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let backend = self.config.backend;
        let telemetry = self.config.llm_telemetry;
        let metrics_out = self.config.metrics_out.as_deref();
        let flush_every = self.config.metrics_flush_jobs;
        let finished = std::sync::atomic::AtomicUsize::new(0);

        // One shared batching service for the whole pool: every job
        // opens a session on it, so LLM round trips from all workers
        // coalesce while the rest of the pool keeps simulating. A
        // caller-owned service (resident workers) takes precedence and
        // outlives this run.
        let own_llm: Option<SharedLlm> = match shared {
            Some(_) => None,
            None => self.config.llm_batch.as_ref().map(|batch| {
                let batch = BatchConfig {
                    round_trip: self.config.llm_latency.unwrap_or(batch.round_trip),
                    ..batch.clone()
                };
                BatchedLlm::start(batch)
            }),
        };
        let llm = match shared.or(own_llm.as_ref()) {
            Some(service) => LlmPolicy::batched(service),
            None => LlmPolicy::direct().with_latency(self.config.llm_latency),
        }
        .with_faults(self.config.fault.clone())
        .with_resilience(self.config.resilience.clone());

        // Sink locks recover from poisoning: a worker that panics while
        // the row callback holds the lock must not wedge the remaining
        // workers or swallow the sink-error report — the sink's own
        // append is atomic per row (JSONL lines), so the recovered
        // state is usable.
        let (new_records, pool_stats) = run_pool_supervised(
            jobs,
            self.workers,
            backend,
            &llm,
            &self.config.pool,
            |_, record| {
                let row = if telemetry { record.to_row_with_telemetry() } else { record.to_row() };
                {
                    let mut guard = sink.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Err(e) = guard.append(&row) {
                        sink_error.lock().unwrap_or_else(PoisonError::into_inner).get_or_insert(e);
                        return;
                    }
                }
                campaign_metrics.sink_rows.inc();
                let done = finished.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                if let Some(path) = metrics_out {
                    // Periodic flush is best-effort (a torn write here
                    // must not fail the campaign); the end-of-run write
                    // below is the authoritative one and does error.
                    if flush_every > 0 && done.is_multiple_of(flush_every) {
                        let _ = std::fs::write(path, uvllm_obs::registry().snapshot().render());
                    }
                }
            },
        );
        drop(llm);
        if let Some(service) = own_llm {
            // Joins the service thread; every session was drained when
            // its job finished, so this is bookkeeping, not a wait. A
            // caller-owned `shared` service keeps running for the next
            // run instead.
            drop(service);
        }
        if let Some(e) = sink_error.into_inner().unwrap_or_else(PoisonError::into_inner) {
            return Err(e);
        }

        let metrics_snapshot = uvllm_obs::registry().snapshot();
        if let Some(path) = &self.config.metrics_out {
            std::fs::write(path, metrics_snapshot.render())?;
        }
        let mut rows = existing_rows;
        rows.extend(new_records.iter().map(EvalRecord::to_row));
        Ok(CampaignOutcome {
            report: CampaignReport::new(rows),
            new_records,
            total_jobs,
            sharded_out,
            resumed,
            golden_designs: golden.len(),
            elab_stats: uvllm_sim::cache::stats(),
            metrics: metrics_snapshot,
            pool_stats,
        })
    }
}

/// Evaluates one method over pre-built instances on a worker pool,
/// returning records in instance order — the parallel engine behind
/// `uvllm_bench::harness::evaluate`. Runs on the process-default
/// simulation backend.
pub fn evaluate_parallel(
    method: MethodKind,
    instances: &[BenchInstance],
    workers: usize,
) -> Vec<EvalRecord> {
    evaluate_parallel_with(method, instances, workers, SimBackend::from_env())
}

/// [`evaluate_parallel`] on an explicit simulation backend.
pub fn evaluate_parallel_with(
    method: MethodKind,
    instances: &[BenchInstance],
    workers: usize,
    backend: SimBackend,
) -> Vec<EvalRecord> {
    let shared: Vec<Arc<BenchInstance>> = instances.iter().cloned().map(Arc::new).collect();
    let jobs = expand_jobs(&shared, &[method]);
    run_pool(jobs, workers.max(1), backend, &LlmPolicy::direct(), |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn tiny_config(workers: usize) -> CampaignConfig {
        CampaignConfig {
            dataset_size: 6,
            dataset_seed: 0x42,
            methods: vec![MethodKind::Strider, MethodKind::RtlRepair],
            workers,
            shard: ShardSpec::default(),
            backend: SimBackend::default(),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_runs_and_reports() {
        let mut sink = MemorySink::new();
        let outcome = Campaign::new(tiny_config(2)).unwrap().run(&mut sink).unwrap();
        assert_eq!(outcome.total_jobs, 12);
        assert_eq!(outcome.new_records.len(), 12);
        assert_eq!(sink.rows().len(), 12);
        assert_eq!(outcome.resumed, 0);
        assert_eq!(outcome.sharded_out, 0);
        assert!(outcome.golden_designs >= 1);
        assert_eq!(outcome.report.rows().len(), 12);
    }

    #[test]
    fn resume_skips_completed_jobs() {
        let mut sink = MemorySink::new();
        let campaign = Campaign::new(tiny_config(2)).unwrap();
        campaign.run(&mut sink).unwrap();
        // Second run over the same sink: everything is already there.
        let outcome = campaign.run(&mut sink).unwrap();
        assert_eq!(outcome.resumed, 12);
        assert!(outcome.new_records.is_empty());
        assert_eq!(sink.rows().len(), 12, "no duplicate rows on resume");
        assert_eq!(outcome.report.rows().len(), 12);
    }

    #[test]
    fn shards_union_to_the_full_campaign() {
        let mut whole = MemorySink::new();
        Campaign::new(tiny_config(1)).unwrap().run(&mut whole).unwrap();
        let mut union: Vec<String> = Vec::new();
        for index in 0..3 {
            let mut sink = MemorySink::new();
            let mut config = tiny_config(2);
            config.shard = ShardSpec { index, count: 3 };
            Campaign::new(config).unwrap().run(&mut sink).unwrap();
            union.extend(sink.rows().iter().map(|r| r.to_json_line()));
        }
        let mut expected: Vec<String> = whole.rows().iter().map(|r| r.to_json_line()).collect();
        expected.sort();
        union.sort();
        assert_eq!(union, expected, "3-way shard must partition the campaign exactly");
    }

    #[test]
    fn unparsable_worker_env_is_rejected_not_defaulted() {
        // Other tests in this binary pass explicit worker counts, so
        // mutating the variable here cannot change their behaviour.
        std::env::set_var("UVLLM_WORKERS", "eight");
        let err = worker_count_from_env().unwrap_err();
        assert!(err.contains("UVLLM_WORKERS"), "error must name the variable: {err}");
        assert!(err.contains("eight"), "error must echo the bad value: {err}");
        // Campaign::new resolves workers eagerly, so an auto-workers
        // config (workers == 0) surfaces the same error as Err instead
        // of panicking inside the pool later.
        let err = Campaign::new(tiny_config(0)).map(|_| ()).unwrap_err();
        assert!(err.contains("UVLLM_WORKERS"), "Campaign::new must propagate the env error: {err}");
        std::env::set_var("UVLLM_WORKERS", "0");
        assert!(worker_count_from_env().is_err(), "zero workers is invalid");
        std::env::set_var("UVLLM_WORKERS", "3");
        assert_eq!(worker_count_from_env(), Ok(Some(3)));
        assert_eq!(default_worker_count(), 3);
        std::env::remove_var("UVLLM_WORKERS");
        assert_eq!(worker_count_from_env(), Ok(None));
        assert!(default_worker_count() >= 1);
    }

    /// The core gate of the resilience layer: a campaign with LLM
    /// faults injected at double-digit rates, retried by the resilient
    /// service, produces rows byte-identical to the fault-free run.
    /// FaultyLlm fabricates faults without consuming the inner oracle's
    /// stream, so a retried ticket lands on exactly the completion the
    /// fault-free run saw.
    #[test]
    fn faults_plus_retries_reproduce_the_fault_free_rows() {
        let llm_config = || CampaignConfig {
            dataset_size: 4,
            dataset_seed: 0x42,
            methods: vec![MethodKind::Uvllm, MethodKind::GptDirect],
            workers: 2,
            backend: SimBackend::default(),
            ..CampaignConfig::default()
        };
        let rows_of = |config: CampaignConfig| {
            let mut sink = MemorySink::new();
            Campaign::new(config).unwrap().run(&mut sink).unwrap();
            let mut rows: Vec<String> = sink.rows().iter().map(|r| r.to_json_line()).collect();
            rows.sort();
            rows
        };
        let baseline = rows_of(llm_config());
        let mut faulted = llm_config();
        faulted.fault =
            Some(FaultPlan { error_rate: 0.15, malform_rate: 0.10, ..FaultPlan::default() });
        faulted.resilience = Some(ResiliencePolicy {
            retries: 8,
            base_backoff: std::time::Duration::from_micros(50),
            max_backoff: std::time::Duration::from_micros(400),
            breaker_threshold: 100,
            validate: true,
            ..ResiliencePolicy::default()
        });
        let retries_before = uvllm_obs::registry().counter("llm.retries").get();
        let rows = rows_of(faulted.clone());
        assert!(
            uvllm_obs::registry().counter("llm.retries").get() > retries_before,
            "the fault plan must actually exercise the retry path"
        );
        assert!(
            !rows.iter().any(|r| r.contains("\"degraded\"")),
            "8 retries must absorb 25% fault rates without degrading"
        );
        assert_eq!(rows, baseline, "faulted rows must be byte-identical to the fault-free run");
        assert_eq!(rows_of(faulted.clone()), rows, "same fault seed, same rows");
    }

    #[test]
    fn injected_panics_quarantine_but_the_campaign_completes() {
        let mut config = tiny_config(2);
        config.pool =
            PoolPolicy { inject_panic: Some("@RTLrepair".to_string()), ..PoolPolicy::default() };
        let mut sink = MemorySink::new();
        let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();
        assert_eq!(sink.rows().len(), 12, "every job answers, crashed ones included");
        let panicked: Vec<_> = sink.rows().iter().filter(|r| r.outcome == "worker_panic").collect();
        assert_eq!(panicked.len(), 6, "every RTLrepair job quarantines after its requeue");
        assert!(panicked.iter().all(|r| r.method == "RTLrepair"));
        assert_eq!(outcome.pool_stats.panicked, 12, "first attempt plus requeue, per job");
        assert_eq!(outcome.pool_stats.requeued, 6);
        assert_eq!(outcome.pool_stats.quarantined_panics, 6);
        let strider: Vec<_> = sink.rows().iter().filter(|r| r.method == "Strider").collect();
        assert_eq!(strider.len(), 6);
        assert!(strider.iter().all(|r| r.outcome != "worker_panic"), "other jobs are untouched");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut bad_shard = tiny_config(1);
        bad_shard.shard = ShardSpec { index: 5, count: 2 };
        assert!(Campaign::new(bad_shard).is_err());
        let mut no_methods = tiny_config(1);
        no_methods.methods.clear();
        assert!(Campaign::new(no_methods).is_err());
        let mut bad_opt = tiny_config(1);
        bad_opt.opt_level = 4;
        assert!(Campaign::new(bad_opt).is_err());
    }

    /// The opt-level byte-identity contract: the netlist passes are
    /// equivalence-preserving, so verdicts — and therefore rows — do
    /// not depend on the optimization level.
    #[test]
    fn opt_levels_do_not_perturb_rows() {
        let rows_at = |level: u8| {
            let mut sink = MemorySink::new();
            let mut config = tiny_config(2);
            config.opt_level = level;
            Campaign::new(config).unwrap().run(&mut sink).unwrap();
            let mut rows: Vec<String> = sink.rows().iter().map(|r| r.to_json_line()).collect();
            rows.sort();
            rows
        };
        let plain = rows_at(0);
        assert_eq!(plain, rows_at(2), "O2 rows must be byte-identical to O0 rows");
        assert_eq!(plain, rows_at(3), "O3 rows must be byte-identical to O0 rows");
    }
}
