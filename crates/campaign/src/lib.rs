//! # uvllm-campaign
//!
//! The large-scale verification campaign engine: runs the full
//! benchmark (design × mutation × seed) across every repair method on a
//! pool of worker threads, with sharding, caching and resume — the
//! infrastructure that turns the paper's serial evaluation loop into a
//! production-shaped system.
//!
//! * [`Job`] — one (benchmark instance × method) unit of work;
//!   [`ShardSpec`] assigns jobs to cooperating processes by stable
//!   hash, so `--shard i/n` partitions a campaign with no coordination.
//! * [`WorkQueue`] / [`queue::run_pool`] — a shared `Mutex<VecDeque>`
//!   drained by `N` OS threads (`std::thread::scope`); jobs are coarse,
//!   so one lock per job is noise. The pool is supervision-grade:
//!   per-job `catch_unwind` with requeue-once-then-quarantine
//!   (`worker_panic` rows), an optional watchdog-enforced per-job
//!   deadline (`job_timeout` rows), and poison-recovering locks — see
//!   [`PoolPolicy`] / [`PoolStats`].
//! * fault tolerance — `CampaignConfig::fault` injects seeded LLM
//!   faults ([`uvllm_llm::FaultPlan`]) and `CampaignConfig::resilience`
//!   wraps every job's service in retry/backoff + circuit breaking +
//!   degradation ([`uvllm_llm::ResiliencePolicy`]); degraded jobs are
//!   tagged in their rows (`"degraded": true`).
//! * [`evaluate_one`] — the per-job evaluation (moved here from
//!   `uvllm-bench`), a *pure function of the job*: each job owns an
//!   [`OracleLlm`](uvllm_llm::OracleLlm) seeded from the instance seed
//!   and method salt, and the pipeline owns its LLM service handle
//!   ([`uvllm::Uvllm`] is generic over `S: LlmService`), so no mutable
//!   LLM state is shared across workers.
//! * [`LlmPolicy`] / [`SharedLlm`] — how jobs obtain that handle:
//!   per-job [`DirectService`](uvllm_llm::DirectService)s (default), or
//!   per-job *sessions* on one shared
//!   [`BatchedLlm`](uvllm_llm::BatchedLlm)
//!   (`CampaignConfig::llm_batch`), which coalesces prompts from every
//!   worker into batches so LLM round trips overlap simulation time.
//!   Sessions see their own prompts in submission order, so rows are
//!   byte-identical batched or not.
//! * [`merge_rows`] / `campaign merge` — combine shard JSONL files into
//!   one report, validating shard disjointness and full job-space
//!   coverage (failures name the `(instance, method)` pairs).
//! * elaboration cache — [`Campaign::run`] pre-elaborates every golden
//!   design exactly once into the process-wide content-addressed cache
//!   ([`uvllm_sim::cache`]); workers then share elaborations of
//!   repeated texts (mutated sources across methods, candidates across
//!   metrics, the golden text behind every confirmed fix).
//! * [`ResultSink`] / [`JsonlSink`] — every finished row is streamed as
//!   one JSON line and flushed; reopening the file resumes the
//!   campaign, skipping completed job ids.
//! * [`CampaignReport`] — the Table II / Fig. 5–7 rollups over rows,
//!   identical for fresh and resumed runs.
//!
//! **Determinism contract:** the same [`CampaignConfig`] produces
//! byte-identical JSONL rows (modulo row order) at any worker count and
//! any shard split. Rows therefore exclude wall-clock measurements; the
//! execution-time proxy is the calibrated simulated LLM latency.
//!
//! ## Example
//!
//! ```rust
//! use uvllm_campaign::{Campaign, CampaignConfig, MemorySink, MethodKind};
//!
//! let config = CampaignConfig {
//!     dataset_size: 4,
//!     dataset_seed: 0x42,
//!     methods: vec![MethodKind::Strider],
//!     workers: 2,
//!     ..CampaignConfig::default()
//! };
//! let mut sink = MemorySink::new();
//! let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();
//! assert_eq!(outcome.new_records.len(), sink.rows().len());
//! println!("{}", outcome.report.render());
//! ```

pub mod engine;
pub mod eval;
pub mod job;
pub mod merge;
pub mod queue;
pub mod report;
pub mod sink;

pub use engine::{
    default_worker_count, evaluate_parallel, evaluate_parallel_with, worker_count_from_env,
    Campaign, CampaignConfig, CampaignOutcome,
};
pub use eval::{
    evaluate_one, evaluate_one_on, evaluate_one_with, job_id, EvalRecord, EvalRow, LlmPolicy,
    MethodKind, SharedLlm,
};
pub use job::{expand_jobs, fnv1a64, Job, ShardSpec};
pub use merge::{expected_job_ids, merge_rows, read_shard, MergeOutcome};
pub use queue::{run_pool_supervised, PoolPolicy, PoolStats, WorkQueue};
pub use report::CampaignReport;
pub use sink::{JsonlSink, LineTailer, MemorySink, ResultSink, SinkTailer, TailBatch};
pub use uvllm_llm::{BatchConfig, FaultPlan, ResiliencePolicy};
pub use uvllm_sim::SimBackend;
