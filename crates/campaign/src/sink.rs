//! Result sinks: where finished rows go — and the tailing reader that
//! consumes them back.
//!
//! [`JsonlSink`] streams one JSON line per completed job and flushes
//! after every row, so a killed campaign loses at most the rows in
//! flight; on reopen it reports the completed job ids and the engine
//! skips them — that is the whole resume protocol.
//!
//! [`SinkTailer`] is the read side of the same contract: an
//! incremental JSONL reader that resumes from a byte offset, consumes
//! only *complete* lines (a trailing line torn by a kill stays pending
//! until its writer — or the resume terminator — finishes it), and
//! locates every malformed line as `path:line: message`. The live
//! aggregator in `uvllm-serve` polls it as rows land; `campaign merge`
//! drives it once in strict mode; [`JsonlSink::open`] uses it to read
//! back a previous run.

use crate::eval::EvalRow;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Rows (and located parse diagnostics) produced by one
/// [`SinkTailer::poll`].
#[derive(Debug, Default)]
pub struct TailBatch {
    /// Rows parsed from complete lines appended since the last poll.
    pub rows: Vec<EvalRow>,
    /// Complete-but-unparsable lines, each located as
    /// `path:line: message` (the message names the offending member).
    /// The lines are skipped — their jobs simply have no row yet.
    pub diags: Vec<String>,
}

/// The raw complete-line discipline under [`SinkTailer`]: an
/// incremental reader that consumes only whole (newline-terminated)
/// lines from an append-only file, resuming from a byte offset.
///
/// A torn trailing line (no final newline — a writer killed mid-append)
/// is never consumed: it stays pending until a later poll sees its
/// newline. That is what makes tailing a live, crash-prone append log
/// safe, and it is shared verbatim by the `uvllm-serve` write-ahead
/// journal, whose records ride the same discipline with their own
/// length-prefix + checksum framing on top.
#[derive(Debug, Clone)]
pub struct LineTailer {
    path: PathBuf,
    /// Bytes of complete lines consumed so far.
    offset: u64,
    /// 1-based number of the next complete line (diagnostics).
    line: u64,
}

impl LineTailer {
    /// A tailer positioned at the start of `path`.
    pub fn new(path: impl AsRef<Path>) -> LineTailer {
        LineTailer { path: path.as_ref().to_path_buf(), offset: 0, line: 1 }
    }

    /// The file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of complete lines consumed so far (the resume offset).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// 1-based number of the next complete line.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Reads every complete line appended since the last poll, as
    /// `(line_number, raw_bytes)` pairs (newlines stripped). A missing
    /// file reads as empty — the writer may not have created it yet.
    ///
    /// # Errors
    ///
    /// I/O failure other than the file not existing yet.
    pub fn poll_raw(&mut self) -> std::io::Result<Vec<(u64, Vec<u8>)>> {
        let mut file = match File::open(&self.path) {
            Ok(file) => file,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        file.seek(SeekFrom::Start(self.offset))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        // Only whole lines are consumed; a torn tail stays pending.
        let complete = match bytes.iter().rposition(|b| *b == b'\n') {
            Some(last) => &bytes[..=last],
            None => return Ok(Vec::new()),
        };
        // `complete` ends with a newline, so stripping it makes every
        // split segment exactly one line (blank lines included — they
        // must still advance the line number).
        let mut lines = Vec::new();
        for raw in complete[..complete.len() - 1].split(|b| *b == b'\n') {
            let number = self.line;
            self.line += 1;
            lines.push((number, raw.to_vec()));
        }
        self.offset += complete.len() as u64;
        Ok(lines)
    }

    /// Bytes currently past the consumed offset — a non-zero value
    /// after a final [`LineTailer::poll_raw`] is a torn trailing line.
    pub fn remainder(&self) -> u64 {
        match std::fs::metadata(&self.path) {
            Ok(meta) => meta.len().saturating_sub(self.offset),
            Err(_) => 0,
        }
    }
}

/// An incremental reader over a [`JsonlSink`] file.
///
/// A [`LineTailer`] that parses each complete line as an [`EvalRow`],
/// turning unparsable lines into located diagnostics. A missing file
/// reads as empty (the shard's worker may not have opened its sink
/// yet).
#[derive(Debug, Clone)]
pub struct SinkTailer {
    lines: LineTailer,
}

impl SinkTailer {
    /// A tailer positioned at the start of `path`.
    pub fn new(path: impl AsRef<Path>) -> SinkTailer {
        SinkTailer { lines: LineTailer::new(path) }
    }

    /// The file being tailed.
    pub fn path(&self) -> &Path {
        self.lines.path()
    }

    /// Bytes of complete lines consumed so far (the resume offset).
    pub fn offset(&self) -> u64 {
        self.lines.offset()
    }

    /// Reads every complete line appended since the last poll.
    ///
    /// # Errors
    ///
    /// I/O failure other than the file not existing yet.
    pub fn poll(&mut self) -> std::io::Result<TailBatch> {
        let mut batch = TailBatch::default();
        for (number, raw) in self.lines.poll_raw()? {
            let text = String::from_utf8_lossy(&raw);
            if text.trim().is_empty() {
                continue;
            }
            match EvalRow::from_json_line(&text) {
                Ok(row) => batch.rows.push(row),
                Err(message) => {
                    batch.diags.push(format!("{}:{number}: {message}", self.path().display()))
                }
            }
        }
        Ok(batch)
    }

    /// Strict end-of-file check: fails when bytes remain past the last
    /// consumed line — a trailing line torn by a killed writer. The
    /// merge path uses this (an incomplete shard must fail loudly); the
    /// live aggregator never calls it (the tail may still be written).
    ///
    /// # Errors
    ///
    /// Names the file, byte offset and line number of the torn tail.
    pub fn finish(self) -> Result<(), String> {
        let remainder = self.lines.remainder();
        if remainder > 0 {
            return Err(format!(
                "{}:{}: torn trailing line ({} bytes past offset {} lack a newline)",
                self.path().display(),
                self.lines.line(),
                remainder,
                self.offset(),
            ));
        }
        Ok(())
    }
}

/// A destination for finished rows. Implementations are driven from
/// worker threads through a mutex, one call per job.
pub trait ResultSink: Send {
    /// Job ids already present (consulted once at campaign start; those
    /// jobs are skipped).
    fn completed_ids(&self) -> HashSet<String>;

    /// Rows already present (folded into the final report on resume).
    fn existing_rows(&self) -> Vec<EvalRow>;

    /// Appends one finished row durably.
    ///
    /// # Errors
    ///
    /// I/O failure of the underlying store.
    fn append(&mut self, row: &EvalRow) -> std::io::Result<()>;
}

/// An append-only JSONL file sink with resume.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: BufWriter<File>,
    existing: Vec<EvalRow>,
}

impl JsonlSink {
    /// Opens (or creates) `path`, reading any rows a previous run left
    /// behind. Malformed lines — e.g. a row torn by a kill ——
    /// are dropped, so the jobs they came from simply run again.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        // Read back through the tailing reader: complete rows resume,
        // malformed complete lines are dropped (their jobs re-run), and
        // anything past the tailer's offset is a torn tail to repair.
        let mut tailer = SinkTailer::new(&path);
        let existing = tailer.poll()?.rows;
        let torn_tail =
            std::fs::metadata(&path).map(|meta| meta.len() > tailer.offset()).unwrap_or(false);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut writer = BufWriter::new(file);
        if torn_tail {
            // Terminate a line torn by a kill so new rows start clean.
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(JsonlSink { path, writer, existing })
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows recovered from a previous run.
    pub fn resumed(&self) -> usize {
        self.existing.len()
    }
}

impl ResultSink for JsonlSink {
    fn completed_ids(&self) -> HashSet<String> {
        self.existing.iter().map(|r| r.id.clone()).collect()
    }

    fn existing_rows(&self) -> Vec<EvalRow> {
        self.existing.clone()
    }

    fn append(&mut self, row: &EvalRow) -> std::io::Result<()> {
        self.writer.write_all(row.to_json_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        // Flush per row: crash-resume must never replay flushed work.
        self.writer.flush()
    }
}

/// An in-memory sink (tests, and `evaluate()`-style callers that only
/// want the records back).
#[derive(Debug, Default)]
pub struct MemorySink {
    rows: Vec<EvalRow>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Everything appended so far.
    pub fn rows(&self) -> &[EvalRow] {
        &self.rows
    }
}

impl ResultSink for MemorySink {
    fn completed_ids(&self) -> HashSet<String> {
        self.rows.iter().map(|r| r.id.clone()).collect()
    }

    fn existing_rows(&self) -> Vec<EvalRow> {
        self.rows.clone()
    }

    fn append(&mut self, row: &EvalRow) -> std::io::Result<()> {
        self.rows.push(row.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: &str) -> EvalRow {
        EvalRow {
            id: id.to_string(),
            instance: id.trim_end_matches("@M").to_string(),
            design: "adder_8bit".into(),
            group: "Arithmetic".into(),
            kind: "operator_misuse".into(),
            syntax: false,
            category: "Flawed conditions".into(),
            method: "M".into(),
            backend: "event".into(),
            hit: true,
            fixed: false,
            outcome: "mismatch".into(),
            claimed: true,
            llm_calls: 3,
            prompt_tokens: 100,
            completion_tokens: 50,
            sim_latency_ms: 1234,
            fixed_by: None,
            degraded: None,
            llm_wait_ms: None,
            llm_batch_max: None,
        }
    }

    #[test]
    fn jsonl_sink_resumes_and_skips_torn_lines() {
        let dir = std::env::temp_dir().join(format!("uvllm-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.jsonl");
        let _ = std::fs::remove_file(&path);

        {
            let mut sink = JsonlSink::open(&path).unwrap();
            assert_eq!(sink.resumed(), 0);
            sink.append(&row("a@M")).unwrap();
            sink.append(&row("b@M")).unwrap();
        }
        // Simulate a kill mid-write: a torn, unparseable trailing line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"id\": \"c@M\", \"instance").unwrap();
        }
        let mut sink = JsonlSink::open(&path).unwrap();
        assert_eq!(sink.resumed(), 2);
        let ids = sink.completed_ids();
        assert!(ids.contains("a@M") && ids.contains("b@M"));
        assert!(!ids.contains("c@M"), "torn row must not count as completed");

        // Appending after resume keeps earlier rows intact.
        sink.append(&row("c@M")).unwrap();
        let reopened = JsonlSink::open(&path).unwrap();
        assert_eq!(reopened.resumed(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tailer_resumes_from_offset_and_holds_torn_tails() {
        let dir = std::env::temp_dir().join(format!("uvllm-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut tailer = SinkTailer::new(&path);
        // Missing file: empty batch, not an error (the worker may not
        // have opened its sink yet).
        assert!(tailer.poll().unwrap().rows.is_empty());

        let mut sink = JsonlSink::open(&path).unwrap();
        sink.append(&row("a@M")).unwrap();
        sink.append(&row("b@M")).unwrap();
        let batch = tailer.poll().unwrap();
        assert_eq!(batch.rows.len(), 2);
        assert!(batch.diags.is_empty());

        // A torn trailing line stays pending across polls…
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"id\": \"c@M\", \"inst").unwrap();
        }
        let offset_before = tailer.offset();
        assert!(tailer.poll().unwrap().rows.is_empty());
        assert_eq!(tailer.offset(), offset_before, "torn bytes must not be consumed");
        // …and is consumed once its writer finishes the line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(format!("ance\": \"c\"}}\n{}\n", row("d@M").to_json_line()).as_bytes())
                .unwrap();
        }
        let batch = tailer.poll().unwrap();
        // Line 3 completed into a parseable-JSON-but-invalid row
        // (missing members): a located diagnostic, not a silent skip.
        assert_eq!(batch.rows.len(), 1);
        assert_eq!(batch.rows[0].id, "d@M");
        assert_eq!(batch.diags.len(), 1);
        assert!(
            batch.diags[0].contains("tail.jsonl:3:"),
            "diag must be located: {}",
            batch.diags[0]
        );
        assert!(
            batch.diags[0].contains("design"),
            "diag names the missing member: {}",
            batch.diags[0]
        );
        tailer.clone().finish().unwrap();

        // finish() on a torn tail names the file and line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"torn").unwrap();
        }
        let err = tailer.finish().unwrap_err();
        assert!(err.contains("tail.jsonl:5:"), "{err}");
        assert!(err.contains("torn trailing line"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_sink_accumulates() {
        let mut sink = MemorySink::new();
        sink.append(&row("x@M")).unwrap();
        assert_eq!(sink.rows().len(), 1);
        assert!(sink.completed_ids().contains("x@M"));
    }
}
