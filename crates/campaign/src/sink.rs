//! Result sinks: where finished rows go.
//!
//! [`JsonlSink`] streams one JSON line per completed job and flushes
//! after every row, so a killed campaign loses at most the rows in
//! flight; on reopen it reports the completed job ids and the engine
//! skips them — that is the whole resume protocol.

use crate::eval::EvalRow;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// A destination for finished rows. Implementations are driven from
/// worker threads through a mutex, one call per job.
pub trait ResultSink: Send {
    /// Job ids already present (consulted once at campaign start; those
    /// jobs are skipped).
    fn completed_ids(&self) -> HashSet<String>;

    /// Rows already present (folded into the final report on resume).
    fn existing_rows(&self) -> Vec<EvalRow>;

    /// Appends one finished row durably.
    ///
    /// # Errors
    ///
    /// I/O failure of the underlying store.
    fn append(&mut self, row: &EvalRow) -> std::io::Result<()>;
}

/// An append-only JSONL file sink with resume.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: BufWriter<File>,
    existing: Vec<EvalRow>,
}

impl JsonlSink {
    /// Opens (or creates) `path`, reading any rows a previous run left
    /// behind. Malformed lines — e.g. a row torn by a kill ——
    /// are dropped, so the jobs they came from simply run again.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        let (existing, torn_tail) = match std::fs::read(&path) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let rows: Vec<EvalRow> = text
                    .lines()
                    .filter(|l| !l.trim().is_empty())
                    .filter_map(|l| EvalRow::from_json_line(l).ok())
                    .collect();
                (rows, bytes.last().is_some_and(|b| *b != b'\n'))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), false),
            Err(e) => return Err(e),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut writer = BufWriter::new(file);
        if torn_tail {
            // Terminate a line torn by a kill so new rows start clean.
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(JsonlSink { path, writer, existing })
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows recovered from a previous run.
    pub fn resumed(&self) -> usize {
        self.existing.len()
    }
}

impl ResultSink for JsonlSink {
    fn completed_ids(&self) -> HashSet<String> {
        self.existing.iter().map(|r| r.id.clone()).collect()
    }

    fn existing_rows(&self) -> Vec<EvalRow> {
        self.existing.clone()
    }

    fn append(&mut self, row: &EvalRow) -> std::io::Result<()> {
        self.writer.write_all(row.to_json_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        // Flush per row: crash-resume must never replay flushed work.
        self.writer.flush()
    }
}

/// An in-memory sink (tests, and `evaluate()`-style callers that only
/// want the records back).
#[derive(Debug, Default)]
pub struct MemorySink {
    rows: Vec<EvalRow>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Everything appended so far.
    pub fn rows(&self) -> &[EvalRow] {
        &self.rows
    }
}

impl ResultSink for MemorySink {
    fn completed_ids(&self) -> HashSet<String> {
        self.rows.iter().map(|r| r.id.clone()).collect()
    }

    fn existing_rows(&self) -> Vec<EvalRow> {
        self.rows.clone()
    }

    fn append(&mut self, row: &EvalRow) -> std::io::Result<()> {
        self.rows.push(row.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: &str) -> EvalRow {
        EvalRow {
            id: id.to_string(),
            instance: id.trim_end_matches("@M").to_string(),
            design: "adder_8bit".into(),
            group: "Arithmetic".into(),
            kind: "operator_misuse".into(),
            syntax: false,
            category: "Flawed conditions".into(),
            method: "M".into(),
            backend: "event".into(),
            hit: true,
            fixed: false,
            outcome: "mismatch".into(),
            claimed: true,
            llm_calls: 3,
            prompt_tokens: 100,
            completion_tokens: 50,
            sim_latency_ms: 1234,
            fixed_by: None,
            degraded: None,
            llm_wait_ms: None,
            llm_batch_max: None,
        }
    }

    #[test]
    fn jsonl_sink_resumes_and_skips_torn_lines() {
        let dir = std::env::temp_dir().join(format!("uvllm-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.jsonl");
        let _ = std::fs::remove_file(&path);

        {
            let mut sink = JsonlSink::open(&path).unwrap();
            assert_eq!(sink.resumed(), 0);
            sink.append(&row("a@M")).unwrap();
            sink.append(&row("b@M")).unwrap();
        }
        // Simulate a kill mid-write: a torn, unparseable trailing line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"id\": \"c@M\", \"instance").unwrap();
        }
        let mut sink = JsonlSink::open(&path).unwrap();
        assert_eq!(sink.resumed(), 2);
        let ids = sink.completed_ids();
        assert!(ids.contains("a@M") && ids.contains("b@M"));
        assert!(!ids.contains("c@M"), "torn row must not count as completed");

        // Appending after resume keeps earlier rows intact.
        sink.append(&row("c@M")).unwrap();
        let reopened = JsonlSink::open(&path).unwrap();
        assert_eq!(reopened.resumed(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_sink_accumulates() {
        let mut sink = MemorySink::new();
        sink.append(&row("x@M")).unwrap();
        assert_eq!(sink.rows().len(), 1);
        assert!(sink.completed_ids().contains("x@M"));
    }
}
