//! Crash-recovery gates: the server process is killed outright (the
//! deterministic `--crash-after` abort and a literal SIGKILL) mid-run
//! with live workers attached, then restarted on the same data
//! directory. The restarted server must replay its journal, fence the
//! pre-crash leases (stale workers observe `409 LeaseLost`), resume
//! granting, and finish with rows byte-identical to a direct engine
//! run. On both simulation kernels.
//!
//! The server runs as a *separate OS process* (the `uvllm-serve`
//! binary) so the kill is a real process death, not a cooperative
//! shutdown; workers re-find the restarted server through the shared
//! `--addr-file`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use uvllm_campaign::{Campaign, CampaignConfig, MemorySink, MethodKind};
use uvllm_json::{s, Json};
use uvllm_serve::{http, post_json, run_worker, WorkerOptions, WorkerSummary};
use uvllm_sim::SimBackend;

const SIZE: usize = 4;
const SEED: u64 = 0x42;
const DEADLINE: Duration = Duration::from_secs(120);

fn methods() -> Vec<MethodKind> {
    vec![MethodKind::Strider, MethodKind::RtlRepair]
}

/// Ground truth: the same configuration run directly through the
/// engine, no server and no crash involved.
fn baseline_rows(backend: SimBackend) -> Vec<String> {
    let config = CampaignConfig {
        dataset_size: SIZE,
        dataset_seed: SEED,
        methods: methods(),
        workers: 2,
        backend,
        ..CampaignConfig::default()
    };
    let mut sink = MemorySink::new();
    Campaign::new(config).unwrap().run(&mut sink).unwrap();
    let mut rows: Vec<String> = sink.rows().iter().map(|r| r.to_json_line()).collect();
    rows.sort();
    rows
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uvllm-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the standalone `uvllm-serve` binary on an ephemeral port,
/// publishing its address to `addr_file`.
fn spawn_server(data_dir: &Path, addr_file: &Path, extra: &[&str]) -> Child {
    // Clear any previous address so `wait_addr` sees the new publish.
    let _ = std::fs::remove_file(addr_file);
    Command::new(env!("CARGO_BIN_EXE_uvllm-serve"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--addr-file")
        .arg(addr_file)
        .arg("--data-dir")
        .arg(data_dir)
        .args(["--lease-ms", "600", "--poll-ms", "20", "--fsync", "always"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap()
}

fn wait_addr(addr_file: &Path) -> String {
    let start = Instant::now();
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let addr = text.trim();
            if !addr.is_empty() {
                return addr.to_string();
            }
        }
        assert!(start.elapsed() < DEADLINE, "server never published its address");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn wait_exit(child: &mut Child) {
    let start = Instant::now();
    loop {
        if child.try_wait().unwrap().is_some() {
            return;
        }
        assert!(start.elapsed() < DEADLINE, "server process never exited");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn submit(addr: &str, backend: SimBackend) -> String {
    let body = Json::Obj(vec![
        ("size".to_string(), Json::Num(SIZE as f64)),
        ("seed".to_string(), s(format!("0x{SEED:X}"))),
        ("methods".to_string(), Json::Arr(methods().iter().map(|m| s(m.label())).collect())),
        ("backend".to_string(), s(backend.label())),
        ("shards".to_string(), Json::Num(2.0)),
        ("lease_ms".to_string(), Json::Num(600.0)),
    ]);
    let (status, json) = post_json(addr, "/jobs", &body).unwrap();
    assert_eq!(status, 200, "{}", json.render());
    json.get("run").and_then(Json::as_str).unwrap().to_string()
}

/// Workers that survive a server restart: they re-read `addr_file` on
/// transport errors and keep polling on a generous idle budget until
/// the (restarted) server drains them with `POST /shutdown`.
fn spawn_workers(addr: &str, addr_file: &Path) -> Vec<std::thread::JoinHandle<WorkerSummary>> {
    (0..2)
        .map(|i| {
            let options = WorkerOptions {
                name: format!("survivor-{i}"),
                workers: 2,
                // The idle budget (~6 s of polls) must outlast the
                // kill → restart gap; it is also how workers exit once
                // the drained server is gone.
                poll: Duration::from_millis(50),
                max_idle: Some(120),
                addr_file: Some(addr_file.to_path_buf()),
                ..WorkerOptions::new(addr.to_string())
            };
            std::thread::spawn(move || run_worker(&options).unwrap())
        })
        .collect()
}

fn run_status(addr: &str, run: &str) -> Json {
    let (status, body) = http::request(addr, "GET", &format!("/runs/{run}"), "").unwrap();
    assert_eq!(status, 200, "{body}");
    Json::parse(&body).unwrap()
}

fn wait_done(addr: &str, run: &str) {
    let start = Instant::now();
    loop {
        if run_status(addr, run).get("done").and_then(Json::as_bool) == Some(true) {
            return;
        }
        assert!(start.elapsed() < DEADLINE, "run never finished after the restart");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn counter(addr: &str, name: &str) -> u64 {
    let (status, body) = http::request(addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    uvllm_obs::validate_snapshot_json(&body).unwrap();
    let snapshot = Json::parse(&body).unwrap();
    snapshot.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

/// Shared tail of both crash flavours: restart on the same `data_dir`,
/// let the surviving workers reconnect and finish, and hold the
/// restarted server to the exact rows a crash-free run produces.
fn restart_and_verify(
    backend: SimBackend,
    data_dir: &Path,
    addr_file: &Path,
    run: &str,
    workers: Vec<std::thread::JoinHandle<WorkerSummary>>,
) -> WorkerSummary {
    let baseline = baseline_rows(backend);
    let mut heir = spawn_server(data_dir, addr_file, &[]);
    let addr = wait_addr(addr_file);

    // The restarted process must know it recovered: journal records
    // replayed into the rebuilt store, pre-crash leases fenced.
    assert!(counter(&addr, "serve.recoveries") >= 1);
    assert!(counter(&addr, "serve.journal.records_replayed") >= 1);

    wait_done(&addr, run);
    let status_json = run_status(&addr, run);
    assert_eq!(
        status_json.get("diags").and_then(Json::as_array).map(<[Json]>::len),
        Some(0),
        "{}",
        status_json.render()
    );

    // The acceptance gate: rows served after a kill + restart are
    // byte-identical to the uninterrupted baseline.
    let (status, body) = http::request(&addr, "GET", &format!("/runs/{run}/rows"), "").unwrap();
    assert_eq!(status, 200);
    let served: Vec<&str> = body.lines().collect();
    assert_eq!(served, baseline.iter().map(String::as_str).collect::<Vec<_>>());

    let (status, _) = http::request(&addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    let mut total = WorkerSummary::default();
    for handle in workers {
        let summary = handle.join().unwrap();
        total.leases += summary.leases;
        total.completed += summary.completed;
        total.stolen += summary.stolen;
        total.lost += summary.lost;
        total.reconnects += summary.reconnects;
    }
    // At least one pre-crash worker carried a stale epoch across the
    // restart and was refused with 409 LeaseLost.
    assert!(total.lost >= 1, "no worker observed 409 LeaseLost ({total:?})");
    wait_exit(&mut heir);
    total
}

/// Deterministic crash: `--crash-after complete:1` aborts the server
/// (kill -9 semantics — no destructors, no flush beyond the journal's
/// own fsync) inside the first shard completion, after the journal
/// append but before the reply. The completing worker never gets its
/// ack; recovery replays the record anyway.
fn crash_after_complete_round_trip(backend: SimBackend) {
    let data_dir = fresh_dir(&format!("abort-{}", backend.label()));
    let addr_file = data_dir.join("addr");
    let mut doomed = spawn_server(
        &data_dir,
        &addr_file,
        &["--crash-after", "complete:1", "--compact-every", "8"],
    );
    let addr = wait_addr(&addr_file);
    let run = submit(&addr, backend);
    let workers = spawn_workers(&addr, &addr_file);

    // The abort fires on the first POST /complete; wait for the corpse.
    wait_exit(&mut doomed);
    let total = restart_and_verify(backend, &data_dir, &addr_file, &run, workers);
    // The completing worker was mid-POST when the server died: its
    // retry had to re-read the address file, and the replayed journal
    // already held its Complete record, so the retry got 409.
    assert!(total.reconnects >= 1, "no worker re-read the address file ({total:?})");
}

#[test]
fn crash_after_complete_recovers_byte_identical_event_driven() {
    crash_after_complete_round_trip(SimBackend::EventDriven);
}

#[test]
fn crash_after_complete_recovers_byte_identical_compiled() {
    crash_after_complete_round_trip(SimBackend::Compiled);
}

/// Literal SIGKILL at a nondeterministic moment: wait until workers
/// have leased shards and pushed progress, then kill -9 the server.
/// Whatever the journal's final record looks like (possibly torn),
/// replay must recover a consistent store and the run must converge.
#[test]
fn sigkill_mid_run_recovers_byte_identical() {
    let backend = SimBackend::EventDriven;
    let data_dir = fresh_dir("sigkill");
    let addr_file = data_dir.join("addr");
    let mut doomed = spawn_server(&data_dir, &addr_file, &[]);
    let addr = wait_addr(&addr_file);
    let run = submit(&addr, backend);
    let workers = spawn_workers(&addr, &addr_file);

    // Kill once at least one lease is live — recovery must fence it,
    // so its holder is guaranteed to observe 409 LeaseLost.
    let start = Instant::now();
    loop {
        let status_json = run_status(&addr, &run);
        let leased = status_json
            .get("shards")
            .and_then(Json::as_array)
            .map(|shards| {
                shards
                    .iter()
                    .filter(|s| s.get("state").and_then(Json::as_str) == Some("leased"))
                    .count()
            })
            .unwrap_or(0);
        if leased >= 1 {
            break;
        }
        assert!(start.elapsed() < DEADLINE, "no shard was ever leased");
        std::thread::sleep(Duration::from_millis(10));
    }
    doomed.kill().unwrap(); // SIGKILL on Unix
    wait_exit(&mut doomed);
    restart_and_verify(backend, &data_dir, &addr_file, &run, workers);
}
