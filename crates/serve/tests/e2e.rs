//! End-to-end service gates: a full campaign served over HTTP with a
//! worker killed mid-shard must converge — the expired lease is stolen,
//! the thief resumes the dead worker's sink, and the final rows are
//! byte-identical to a plain CLI-style run. On both simulation kernels.

use std::time::Duration;
use uvllm_campaign::{Campaign, CampaignConfig, MemorySink, MethodKind};
use uvllm_json::{s, Json};
use uvllm_serve::{http, post_json, run_worker, ServeConfig, Server, WorkerOptions};
use uvllm_sim::SimBackend;

const SIZE: usize = 4;
const SEED: u64 = 0x42;

fn methods() -> Vec<MethodKind> {
    vec![MethodKind::Strider, MethodKind::RtlRepair]
}

/// The ground truth: the same configuration run directly through the
/// engine, no server involved.
fn baseline_rows(backend: SimBackend) -> Vec<String> {
    let config = CampaignConfig {
        dataset_size: SIZE,
        dataset_seed: SEED,
        methods: methods(),
        workers: 2,
        backend,
        ..CampaignConfig::default()
    };
    let mut sink = MemorySink::new();
    Campaign::new(config).unwrap().run(&mut sink).unwrap();
    let mut rows: Vec<String> = sink.rows().iter().map(|r| r.to_json_line()).collect();
    rows.sort();
    rows
}

fn start_server(name: &str) -> Server {
    let data_dir = std::env::temp_dir().join(format!("uvllm-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    Server::start(ServeConfig {
        data_dir,
        default_lease: Duration::from_millis(400),
        poll: Duration::from_millis(20),
        ..ServeConfig::default()
    })
    .unwrap()
}

fn submit(addr: &str, backend: SimBackend) -> String {
    let body = Json::Obj(vec![
        ("size".to_string(), Json::Num(SIZE as f64)),
        ("seed".to_string(), s(format!("0x{SEED:X}"))),
        ("methods".to_string(), Json::Arr(methods().iter().map(|m| s(m.label())).collect())),
        ("backend".to_string(), s(backend.label())),
        ("shards".to_string(), Json::Num(2.0)),
        ("lease_ms".to_string(), Json::Num(400.0)),
    ]);
    let (status, json) = post_json(addr, "/jobs", &body).unwrap();
    assert_eq!(status, 200, "{}", json.render());
    json.get("run").and_then(Json::as_str).unwrap().to_string()
}

fn steal_round_trip(backend: SimBackend) {
    let baseline = baseline_rows(backend);
    let server = start_server(backend.label());
    let addr = server.addr().to_string();
    let run = submit(&addr, backend);

    // Worker "doomed" takes shard 0 and dies after flushing one row:
    // its sink keeps the row, no completion is reported, and its lease
    // runs out the 400 ms deadline.
    let doomed = WorkerOptions {
        name: "doomed".to_string(),
        workers: 2,
        once: true,
        abort_after_rows: Some(1),
        ..WorkerOptions::new(addr.clone())
    };
    let summary = run_worker(&doomed).unwrap();
    assert_eq!(summary.leases, 1);
    assert_eq!(summary.aborted, 1);
    assert_eq!(summary.completed, 0);

    // Worker "thief" immediately completes the still-pending shard 1.
    let thief = WorkerOptions {
        name: "thief".to_string(),
        workers: 2,
        once: true,
        poll: Duration::from_millis(50),
        ..WorkerOptions::new(addr.clone())
    };
    let summary = run_worker(&thief).unwrap();
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.stolen, 0, "shard 1 was pending, not stolen");

    // Mid-run (shard 0 dead, not yet stolen): the metrics endpoint must
    // serve a valid uvllm-metrics/v1 snapshot.
    let (status, body) = http::request(&addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    uvllm_obs::validate_snapshot_json(&body).unwrap();
    let (status, body) = http::request(&addr, "GET", &format!("/runs/{run}"), "").unwrap();
    assert_eq!(status, 200);
    let status_json = Json::parse(&body).unwrap();
    assert_eq!(status_json.get("done").and_then(Json::as_bool), Some(false));

    // The thief polls again: shard 0's lease expires and is re-granted
    // as stolen; the sink resume protocol skips the dead worker's row.
    let summary = run_worker(&thief).unwrap();
    assert_eq!(summary.leases, 1, "must pick up the expired shard");
    assert_eq!(summary.stolen, 1, "the grant must be marked stolen");
    assert_eq!(summary.completed, 1);

    // Final status: done, with the steal recorded on shard 0.
    let (status, body) = http::request(&addr, "GET", &format!("/runs/{run}"), "").unwrap();
    assert_eq!(status, 200);
    let status_json = Json::parse(&body).unwrap();
    assert_eq!(status_json.get("done").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(status_json.get("diags").and_then(Json::as_array).map(<[Json]>::len), Some(0));
    let shards = status_json.get("shards").and_then(Json::as_array).unwrap();
    let steals: u64 = shards.iter().map(|s| s.get("steals").and_then(Json::as_u64).unwrap()).sum();
    assert!(steals >= 1, "{body}");

    // The acceptance gate: served rows byte-identical to the baseline.
    let (status, body) = http::request(&addr, "GET", &format!("/runs/{run}/rows"), "").unwrap();
    assert_eq!(status, 200);
    let served: Vec<&str> = body.lines().collect();
    assert_eq!(served, baseline.iter().map(String::as_str).collect::<Vec<_>>());

    // The steal landed in the registry the /metrics endpoint serves.
    assert!(uvllm_obs::registry().counter("serve.leases.stolen").get() >= 1);

    let (status, _) = http::request(&addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    let data_dir =
        std::env::temp_dir().join(format!("uvllm-e2e-{}-{}", std::process::id(), backend.label()));
    server.join();
    let text = std::fs::read_to_string(data_dir.join("metrics.json")).unwrap();
    uvllm_obs::validate_snapshot_json(&text).unwrap();
}

#[test]
fn stolen_lease_rows_are_byte_identical_event_driven() {
    steal_round_trip(SimBackend::EventDriven);
}

#[test]
fn stolen_lease_rows_are_byte_identical_compiled() {
    steal_round_trip(SimBackend::Compiled);
}

/// Idle workers exit on their idle budget, and a worker arriving at a
/// draining server exits immediately with nothing counted.
#[test]
fn workers_exit_on_idle_budget_and_drain() {
    let server = start_server("idle");
    let addr = server.addr().to_string();
    let idle = WorkerOptions {
        name: "idle".to_string(),
        poll: Duration::from_millis(10),
        max_idle: Some(3),
        ..WorkerOptions::new(addr.clone())
    };
    let summary = run_worker(&idle).unwrap();
    assert_eq!(summary, Default::default(), "no runs submitted, nothing to lease");
    let (status, _) = http::request(&addr, "POST", "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    // 410 races the listener teardown: either answer means "go away".
    if let Ok(drained) = run_worker(&idle) {
        assert_eq!(drained, Default::default());
    }
    server.join();
}
