//! The write-ahead journal: every job-store state transition is
//! appended to `data_dir/journal.jsonl` *before* the in-memory state
//! mutates, so a crashed server can rebuild the store on the next boot
//! (see [`crate::recovery`]).
//!
//! ## Record framing
//!
//! One record per line: `<len>:<crc32-hex>:<json>\n` — the JSON event
//! body length-prefixed with its byte count and checksummed with
//! CRC-32 (IEEE). Replay reuses the [`LineTailer`] discipline the
//! JSONL sinks already trust: only complete (newline-terminated) lines
//! are consumed, so a record torn by a `kill -9` mid-append is simply
//! the end of the log. A length or checksum mismatch on an *earlier*
//! line means real corruption; replay stops there and drops the
//! suffix, which is always safe in this system — the journal carries
//! coordination state only, rows live in the shard sinks, and
//! determinism means any re-done work reproduces the same bytes.
//!
//! ## Durability knob
//!
//! [`FsyncPolicy`] trades durability for throughput: `Always` fsyncs
//! after every record (a crash loses nothing that was acknowledged),
//! `EveryN(n)` amortizes the sync over `n` records (a crash may lose
//! up to `n-1` acknowledged transitions — workers re-do that work),
//! `Never` leaves flushing to the OS. The default is `Always`: store
//! transitions are one HTTP round trip each, so the sync is not on any
//! per-row hot path.
//!
//! ## Crash knob
//!
//! [`CrashSpec`] (`--crash-after <event>[:N]`) aborts the process
//! (`std::process::abort`, no destructors — the same disk state a
//! `kill -9` leaves) immediately after the matching record is appended
//! and synced, and *before* the in-memory state mutates or the HTTP
//! response is written. That is the most adversarial torn moment the
//! recovery path must survive, and it makes the chaos harness
//! deterministic.

use crate::store::RunSpec;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Duration;
use uvllm_campaign::LineTailer;
use uvllm_json::{s, Json};

/// File name of the journal inside the server's data directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// When the journal fsyncs after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every record: an acknowledged transition survives any
    /// crash. The default.
    Always,
    /// After every `n` records: a crash loses at most `n-1`
    /// acknowledged transitions (the work is re-done, rows unaffected).
    EveryN(u64),
    /// Never — the OS flushes when it pleases. Fastest; a crash can
    /// rewind the store to the last natural writeback.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never` or `every:N`.
    ///
    /// # Errors
    ///
    /// Names the accepted forms.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => text
                .strip_prefix("every:")
                .and_then(|n| n.parse::<u64>().ok())
                .filter(|n| *n >= 1)
                .map(FsyncPolicy::EveryN)
                .ok_or_else(|| {
                    format!("bad fsync policy '{text}' (want always | never | every:N)")
                }),
        }
    }
}

/// The deterministic kill knob: abort the process right after the
/// `count`-th journal append whose event kind matches `event`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSpec {
    /// Event kind label (`submit`, `lease`, `heartbeat`, `complete`,
    /// `finish`).
    pub event: String,
    /// Which matching append triggers the abort (1-based).
    pub count: u64,
}

impl CrashSpec {
    /// Parses `event` or `event:N` (N defaults to 1).
    ///
    /// # Errors
    ///
    /// Names the accepted event kinds.
    pub fn parse(text: &str) -> Result<CrashSpec, String> {
        let (event, count) = match text.split_once(':') {
            Some((event, n)) => (
                event,
                n.parse::<u64>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| format!("bad crash count in '{text}' (want EVENT[:N])"))?,
            ),
            None => (text, 1),
        };
        if !matches!(event, "submit" | "lease" | "heartbeat" | "complete" | "finish") {
            return Err(format!(
                "unknown crash event '{event}' (want submit | lease | heartbeat | complete | \
                 finish)"
            ));
        }
        Ok(CrashSpec { event: event.to_string(), count })
    }
}

/// How the journal behaves.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Durability/throughput trade-off for appends.
    pub fsync: FsyncPolicy,
    /// Compact (snapshot + truncate) once the journal holds this many
    /// records, bounding replay cost. 0 disables compaction.
    pub compact_every: u64,
    /// Deterministic crash injection (tests, the chaos harness).
    pub crash_after: Option<CrashSpec>,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig { fsync: FsyncPolicy::Always, compact_every: 512, crash_after: None }
    }
}

/// One journaled state transition. The wire kinds are the
/// [`CrashSpec`] event names.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A run was submitted.
    Submit { run: String, spec: RunSpec },
    /// A shard was leased (`stolen` when the grant reclaimed an
    /// expired lease).
    Lease { run: String, shard: usize, epoch: u64, worker: String, stolen: bool },
    /// A live lease was renewed, carrying the worker's pushed
    /// progress.
    Heartbeat { run: String, shard: usize, epoch: u64, rows_done: u64 },
    /// A shard was completed.
    Complete { run: String, shard: usize, epoch: u64, worker: String },
    /// Every shard of the run is done.
    Finish { run: String },
}

impl Event {
    /// The wire kind label (also the crash-knob event name).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Submit { .. } => "submit",
            Event::Lease { .. } => "lease",
            Event::Heartbeat { .. } => "heartbeat",
            Event::Complete { .. } => "complete",
            Event::Finish { .. } => "finish",
        }
    }

    fn to_json(&self) -> Json {
        let mut members = vec![("kind".to_string(), s(self.kind()))];
        match self {
            Event::Submit { run, spec } => {
                members.push(("run".to_string(), s(run.clone())));
                members.push(("spec".to_string(), spec.to_json()));
            }
            Event::Lease { run, shard, epoch, worker, stolen } => {
                members.push(("run".to_string(), s(run.clone())));
                members.push(("shard".to_string(), Json::Num(*shard as f64)));
                members.push(("epoch".to_string(), Json::Num(*epoch as f64)));
                members.push(("worker".to_string(), s(worker.clone())));
                members.push(("stolen".to_string(), Json::Bool(*stolen)));
            }
            Event::Heartbeat { run, shard, epoch, rows_done } => {
                members.push(("run".to_string(), s(run.clone())));
                members.push(("shard".to_string(), Json::Num(*shard as f64)));
                members.push(("epoch".to_string(), Json::Num(*epoch as f64)));
                members.push(("rows_done".to_string(), Json::Num(*rows_done as f64)));
            }
            Event::Complete { run, shard, epoch, worker } => {
                members.push(("run".to_string(), s(run.clone())));
                members.push(("shard".to_string(), Json::Num(*shard as f64)));
                members.push(("epoch".to_string(), Json::Num(*epoch as f64)));
                members.push(("worker".to_string(), s(worker.clone())));
            }
            Event::Finish { run } => members.push(("run".to_string(), s(run.clone()))),
        }
        Json::Obj(members)
    }

    fn from_json(json: &Json) -> Result<Event, String> {
        let kind = json.get("kind").and_then(Json::as_str).ok_or("record missing 'kind'")?;
        let run = || {
            json.get("run")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind} record missing 'run'"))
        };
        let num = |name: &str| {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind} record missing '{name}'"))
        };
        let worker = || {
            json.get("worker")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind} record missing 'worker'"))
        };
        match kind {
            "submit" => {
                let spec = RunSpec::from_json(
                    json.get("spec").ok_or("submit record missing 'spec'")?,
                    // The spec always serializes lease_ms, so the
                    // default is never consulted on replay.
                    Duration::from_secs(60),
                )?;
                Ok(Event::Submit { run: run()?, spec })
            }
            "lease" => Ok(Event::Lease {
                run: run()?,
                shard: num("shard")? as usize,
                epoch: num("epoch")?,
                worker: worker()?,
                stolen: json.get("stolen").and_then(Json::as_bool).unwrap_or(false),
            }),
            "heartbeat" => Ok(Event::Heartbeat {
                run: run()?,
                shard: num("shard")? as usize,
                epoch: num("epoch")?,
                rows_done: num("rows_done")?,
            }),
            "complete" => Ok(Event::Complete {
                run: run()?,
                shard: num("shard")? as usize,
                epoch: num("epoch")?,
                worker: worker()?,
            }),
            "finish" => Ok(Event::Finish { run: run()? }),
            other => Err(format!("unknown record kind '{other}'")),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Bitwise — the journal
/// appends one record per HTTP round trip, nowhere near a hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

fn frame(seq: u64, event: &Event) -> String {
    let body = Json::Obj(vec![
        ("seq".to_string(), Json::Num(seq as f64)),
        ("event".to_string(), event.to_json()),
    ])
    .render();
    format!("{}:{:08x}:{body}\n", body.len(), crc32(body.as_bytes()))
}

/// Parses one complete journal line back into `(seq, Event)`.
///
/// # Errors
///
/// Framing violations (bad prefix, length mismatch, checksum
/// mismatch) and undecodable event bodies — any of which ends replay.
fn parse_line(raw: &[u8]) -> Result<(u64, Event), String> {
    let text = std::str::from_utf8(raw).map_err(|_| "record is not UTF-8".to_string())?;
    let (len, rest) = text.split_once(':').ok_or("record lacks a length prefix")?;
    let (crc, body) = rest.split_once(':').ok_or("record lacks a checksum")?;
    let len: usize = len.parse().map_err(|_| format!("bad length prefix '{len}'"))?;
    if body.len() != len {
        return Err(format!("length mismatch: prefix says {len}, body is {} bytes", body.len()));
    }
    let crc = u32::from_str_radix(crc, 16).map_err(|_| format!("bad checksum field '{crc}'"))?;
    let actual = crc32(body.as_bytes());
    if crc != actual {
        return Err(format!("checksum mismatch: header {crc:08x}, body {actual:08x}"));
    }
    let json = Json::parse(body).map_err(|e| format!("bad record JSON: {e}"))?;
    let seq = json.get("seq").and_then(Json::as_u64).ok_or("record missing 'seq'")?;
    let event = Event::from_json(json.get("event").ok_or("record missing 'event'")?)?;
    Ok((seq, event))
}

/// Registry handles for the journal (`serve.journal.*`), resolved once.
struct JournalMetrics {
    appends: &'static uvllm_obs::Counter,
    fsyncs: &'static uvllm_obs::Counter,
    compactions: &'static uvllm_obs::Counter,
}

fn metrics() -> &'static JournalMetrics {
    static METRICS: std::sync::OnceLock<JournalMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| JournalMetrics {
        appends: uvllm_obs::registry().counter("serve.journal.appends"),
        fsyncs: uvllm_obs::registry().counter("serve.journal.fsyncs"),
        compactions: uvllm_obs::registry().counter("serve.journal.compactions"),
    })
}

/// The append side of the write-ahead log. Owned by the job store and
/// driven under its state lock, so journal order *is* state-mutation
/// order.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    config: JournalConfig,
    /// Sequence number the next append gets.
    next_seq: u64,
    /// Records appended since the last fsync (for `EveryN`).
    unsynced: u64,
    /// Records currently in the file (for the compaction trigger).
    records: u64,
    /// Matching appends seen so far, per the crash knob.
    crash_matches: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `dir/journal.jsonl` in append
    /// mode. `next_seq` and `records` come from the replay the caller
    /// just did (see [`crate::recovery::recover`]).
    ///
    /// # Errors
    ///
    /// File-system failures.
    pub fn open(
        dir: &Path,
        config: JournalConfig,
        next_seq: u64,
        records: u64,
    ) -> std::io::Result<Journal> {
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Journal { path, file, config, next_seq, unsynced: 0, records, crash_matches: 0 })
    }

    /// The journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Sequence number the next append will get (the last appended
    /// record's seq is this minus one).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record, syncs per the fsync policy, fires the crash
    /// knob. Returns the record's sequence number.
    ///
    /// # Errors
    ///
    /// Write/sync failures — the caller must *not* apply the state
    /// transition when the append fails (write-ahead discipline).
    pub fn append(&mut self, event: &Event) -> std::io::Result<u64> {
        let seq = self.next_seq;
        self.file.write_all(frame(seq, event).as_bytes())?;
        self.next_seq += 1;
        self.records += 1;
        self.unsynced += 1;
        let sync = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        };
        if sync {
            self.file.sync_data()?;
            self.unsynced = 0;
            metrics().fsyncs.inc();
        }
        metrics().appends.inc();
        if let Some(crash) = &self.config.crash_after {
            if crash.event == event.kind() {
                self.crash_matches += 1;
                if self.crash_matches == crash.count {
                    // The deterministic kill: no destructors, no
                    // response written, exactly what `kill -9` leaves.
                    eprintln!("crash-after {}:{}: aborting now", crash.event, crash.count);
                    std::process::abort();
                }
            }
        }
        Ok(seq)
    }

    /// True once the compaction threshold is reached.
    pub fn wants_compaction(&self) -> bool {
        self.config.compact_every > 0 && self.records >= self.config.compact_every
    }

    /// Truncates the journal after a successful snapshot: every record
    /// it held is now folded into `store.snapshot.json`, and replay
    /// skips stale sequence numbers anyway if the truncate itself is
    /// lost to a crash.
    ///
    /// # Errors
    ///
    /// File-system failures.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file = OpenOptions::new().write(true).truncate(true).open(&self.path)?;
        self.file.sync_data()?;
        self.records = 0;
        self.unsynced = 0;
        metrics().compactions.inc();
        Ok(())
    }
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// `(seq, event)` in file order, framing-verified.
    pub events: Vec<(u64, Event)>,
    /// Records read (== `events.len()`, kept separate for clarity at
    /// call sites that filter by seq).
    pub records: u64,
    /// Where replay stopped early: a located description of the first
    /// corrupt record (everything after it was dropped), or the torn
    /// trailing line a killed writer left. `None` when the whole file
    /// replayed clean.
    pub diag: Option<String>,
}

/// Replays `dir/journal.jsonl`. A missing journal replays as empty.
///
/// Stops at the first framing violation (torn tail, length or checksum
/// mismatch, undecodable body) and reports it in `diag` — records past
/// a corrupt one cannot be trusted in a log whose meaning is its
/// order. Dropping a journal suffix is safe here: the journal carries
/// lease coordination only, so lost transitions merely make workers
/// re-do work whose rows are deterministic.
///
/// # Errors
///
/// I/O failures other than the file not existing.
pub fn replay(dir: &Path) -> std::io::Result<Replay> {
    let path = dir.join(JOURNAL_FILE);
    let mut tailer = LineTailer::new(&path);
    let mut replay = Replay::default();
    for (number, raw) in tailer.poll_raw()? {
        if raw.is_empty() {
            continue;
        }
        match parse_line(&raw) {
            Ok((seq, event)) => {
                replay.events.push((seq, event));
                replay.records += 1;
            }
            Err(message) => {
                replay.diag = Some(format!(
                    "{}:{number}: {message} — dropping this and all later records",
                    path.display()
                ));
                return Ok(replay);
            }
        }
    }
    let remainder = tailer.remainder();
    if remainder > 0 {
        replay.diag = Some(format!(
            "{}:{}: torn trailing record ({remainder} bytes lack a newline) — dropped",
            path.display(),
            tailer.line(),
        ));
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use uvllm_campaign::MethodKind;
    use uvllm_sim::SimBackend;

    fn spec() -> RunSpec {
        RunSpec {
            size: 3,
            seed: 0xDEAD_BEEF_CAFE_F00D,
            methods: vec![MethodKind::Strider, MethodKind::Uvllm],
            backend: SimBackend::Compiled,
            opt_level: 2,
            shards: 2,
            lease: Duration::from_millis(750),
        }
    }

    fn events() -> Vec<Event> {
        vec![
            Event::Submit { run: "run-1".into(), spec: spec() },
            Event::Lease {
                run: "run-1".into(),
                shard: 0,
                epoch: 1,
                worker: "w".into(),
                stolen: false,
            },
            Event::Heartbeat { run: "run-1".into(), shard: 0, epoch: 1, rows_done: 4 },
            Event::Lease {
                run: "run-1".into(),
                shard: 1,
                epoch: 3,
                worker: "t".into(),
                stolen: true,
            },
            Event::Complete { run: "run-1".into(), shard: 0, epoch: 1, worker: "w".into() },
            Event::Finish { run: "run-1".into() },
        ]
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uvllm-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_and_crash_specs_parse() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(FsyncPolicy::parse("every:16").unwrap(), FsyncPolicy::EveryN(16));
        assert!(FsyncPolicy::parse("every:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());

        assert_eq!(
            CrashSpec::parse("lease").unwrap(),
            CrashSpec { event: "lease".into(), count: 1 }
        );
        assert_eq!(
            CrashSpec::parse("complete:3").unwrap(),
            CrashSpec { event: "complete".into(), count: 3 }
        );
        assert!(CrashSpec::parse("reboot").is_err());
        assert!(CrashSpec::parse("lease:0").is_err());
    }

    #[test]
    fn append_replay_round_trips_every_event_kind() {
        let dir = temp_dir("roundtrip");
        let mut journal = Journal::open(&dir, JournalConfig::default(), 1, 0).unwrap();
        for event in events() {
            journal.append(&event).unwrap();
        }
        let replay = replay(&dir).unwrap();
        assert!(replay.diag.is_none(), "{:?}", replay.diag);
        assert_eq!(replay.records, 6);
        let seqs: Vec<u64> = replay.events.iter().map(|(seq, _)| *seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6]);
        let decoded: Vec<Event> = replay.events.into_iter().map(|(_, e)| e).collect();
        assert_eq!(decoded, events());
    }

    #[test]
    fn missing_journal_replays_empty() {
        let dir = temp_dir("missing");
        let replay = replay(&dir).unwrap();
        assert_eq!(replay.records, 0);
        assert!(replay.diag.is_none());
    }

    #[test]
    fn torn_final_record_is_dropped_with_a_diag() {
        let dir = temp_dir("torn");
        let mut journal = Journal::open(&dir, JournalConfig::default(), 1, 0).unwrap();
        for event in events().into_iter().take(3) {
            journal.append(&event).unwrap();
        }
        // A kill mid-append: half a record, no newline.
        let mut file = OpenOptions::new().append(true).open(dir.join(JOURNAL_FILE)).unwrap();
        file.write_all(b"61:deadbeef:{\"seq\":4,\"event\":{\"kind\":\"compl").unwrap();
        drop(file);
        let replay = replay(&dir).unwrap();
        assert_eq!(replay.records, 3, "the complete records all land");
        let diag = replay.diag.expect("the torn tail must be reported");
        assert!(diag.contains("torn trailing record"), "{diag}");
        assert!(diag.contains("journal.jsonl:4"), "{diag}");
    }

    #[test]
    fn checksum_mismatch_mid_file_stops_replay_there() {
        let dir = temp_dir("corrupt");
        let mut journal = Journal::open(&dir, JournalConfig::default(), 1, 0).unwrap();
        for event in events() {
            journal.append(&event).unwrap();
        }
        // Flip one byte inside record 3's body (JSON, past the frame).
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(bytes.iter().enumerate().filter(|(_, b)| **b == b'\n').map(|(i, _)| i + 1))
            .collect();
        let mid = line_starts[2] + 20;
        bytes[mid] = bytes[mid].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();

        let replay = replay(&dir).unwrap();
        assert_eq!(replay.records, 2, "records before the corruption survive");
        let diag = replay.diag.expect("corruption must be reported");
        assert!(diag.contains("journal.jsonl:3"), "{diag}");
        assert!(diag.contains("mismatch"), "{diag}");
        assert!(diag.contains("dropping this and all later records"), "{diag}");
    }

    #[test]
    fn length_mismatch_is_caught() {
        let dir = temp_dir("length");
        let mut journal = Journal::open(&dir, JournalConfig::default(), 1, 0).unwrap();
        journal.append(&events()[0]).unwrap();
        // Append a record whose prefix lies about the body length but
        // whose checksum is honest — the length check must fire.
        let body = "{\"seq\":2,\"event\":{\"kind\":\"finish\",\"run\":\"run-1\"}}";
        let line = format!("{}:{:08x}:{body}\n", body.len() + 5, crc32(body.as_bytes()));
        let mut file = OpenOptions::new().append(true).open(dir.join(JOURNAL_FILE)).unwrap();
        file.write_all(line.as_bytes()).unwrap();
        drop(file);
        let replay = replay(&dir).unwrap();
        assert_eq!(replay.records, 1);
        assert!(replay.diag.unwrap().contains("length mismatch"));
    }

    #[test]
    fn truncate_resets_the_file_and_preserves_seq() {
        let dir = temp_dir("truncate");
        let mut journal = Journal::open(&dir, JournalConfig::default(), 1, 0).unwrap();
        for event in events().into_iter().take(4) {
            journal.append(&event).unwrap();
        }
        assert_eq!(journal.records(), 4);
        journal.truncate().unwrap();
        assert_eq!(journal.records(), 0);
        assert_eq!(replay(&dir).unwrap().records, 0);
        // Sequence numbers keep climbing across the truncate, so stale
        // snapshot/journal overlap stays resolvable by seq.
        let seq = journal.append(&Event::Finish { run: "run-1".into() }).unwrap();
        assert_eq!(seq, 5);
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.events[0].0, 5);
    }

    #[test]
    fn every_n_fsync_policy_counts_down() {
        let dir = temp_dir("everyn");
        let config = JournalConfig { fsync: FsyncPolicy::EveryN(3), ..JournalConfig::default() };
        let mut journal = Journal::open(&dir, config, 1, 0).unwrap();
        let before = uvllm_obs::registry().counter("serve.journal.fsyncs").get();
        for event in events() {
            journal.append(&event).unwrap();
        }
        let after = uvllm_obs::registry().counter("serve.journal.fsyncs").get();
        // 6 appends at every:3 → exactly 2 syncs (other tests may run
        // concurrently, so bound from below only on the shared counter).
        assert!(after >= before + 2, "{before} → {after}");
        assert!(replay(&dir).unwrap().diag.is_none());
    }
}
