//! The live aggregator: a rolling, deduplicated view of every run's
//! shard sinks, built by tailing their JSONL files with
//! [`SinkTailer`] — the same reader `campaign merge` uses, minus the
//! strictness: a torn trailing line here just means a worker is
//! mid-append, so it stays pending until the next poll.
//!
//! Work stealing makes duplicate rows *normal*: a stolen shard's first
//! holder may have appended rows the thief re-evaluates. The
//! determinism contract says those duplicates are byte-identical, so
//! the aggregator keys rows by job id and keeps the first copy —
//! flagging any duplicate that *differs* as a diagnostic, because that
//! would mean the contract broke.

use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use uvllm_campaign::{expected_job_ids, CampaignReport, EvalRow, SinkTailer};

use crate::store::RunSpec;

/// One run's rolling state.
struct RunAgg {
    run: String,
    tailers: Vec<SinkTailer>,
    /// Job id → first row seen. BTreeMap iteration *is* the canonical
    /// sorted row order `campaign merge` produces.
    rows: BTreeMap<String, EvalRow>,
    /// Located parse failures, contract violations, foreign rows.
    diags: Vec<String>,
    /// The run's full job-id space (what "complete" means).
    expected: HashSet<String>,
    /// `serve.run.<id>.rows` — live per-run row count.
    run_rows: &'static uvllm_obs::Counter,
}

/// A point-in-time copy of one run's aggregation, for status rendering
/// outside the aggregator lock.
#[derive(Debug, Clone)]
pub struct RunView {
    pub run: String,
    /// Deduplicated rows in canonical job-id order.
    pub rows: Vec<EvalRow>,
    pub diags: Vec<String>,
    /// Size of the expected job space.
    pub expected: usize,
}

impl RunView {
    /// True once every expected job has a row.
    pub fn complete(&self) -> bool {
        self.rows.len() == self.expected
    }

    /// The rolling Table-II style report over the rows so far.
    pub fn report(&self) -> CampaignReport {
        CampaignReport::new(self.rows.clone())
    }
}

/// All runs' rolling aggregation. One aggregator thread calls
/// [`Aggregator::poll`] on a cadence; request handlers call it inline
/// before reading so `GET /runs/<id>` is never staler than the sinks.
pub struct Aggregator {
    runs: Mutex<Vec<RunAgg>>,
    /// `serve.rows_aggregated` — rows folded in across all runs.
    rows_aggregated: &'static uvllm_obs::Counter,
}

impl Aggregator {
    pub fn new() -> Aggregator {
        Aggregator {
            runs: Mutex::new(Vec::new()),
            rows_aggregated: uvllm_obs::registry().counter("serve.rows_aggregated"),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Vec<RunAgg>> {
        self.runs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a submitted run: computes its expected job-id space
    /// (dataset size × seed × methods) and starts tailers on its shard
    /// sinks. The sinks need not exist yet — a tailer on a missing file
    /// reports empty batches until the first worker creates it.
    pub fn register(&self, run: &str, spec: &RunSpec, sinks: Vec<PathBuf>) {
        let expected: HashSet<String> =
            expected_job_ids(spec.size, spec.seed, &spec.methods).into_iter().collect();
        let run_rows = uvllm_obs::registry().counter(&format!("serve.run.{run}.rows"));
        self.lock().push(RunAgg {
            run: run.to_string(),
            tailers: sinks.into_iter().map(SinkTailer::new).collect(),
            rows: BTreeMap::new(),
            diags: Vec::new(),
            expected,
            run_rows,
        });
    }

    /// Tails every registered sink and folds fresh rows in. Cheap when
    /// nothing changed: each tailer resumes from its byte offset.
    pub fn poll(&self) {
        let mut runs = self.lock();
        for agg in runs.iter_mut() {
            for tailer in &mut agg.tailers {
                let batch = match tailer.poll() {
                    Ok(batch) => batch,
                    Err(e) => {
                        agg.diags.push(format!("{}: {e}", tailer.path().display()));
                        continue;
                    }
                };
                agg.diags.extend(batch.diags);
                for row in batch.rows {
                    if !agg.expected.contains(&row.id) {
                        agg.diags.push(format!(
                            "{}: row '{}' is outside the run's job space",
                            tailer.path().display(),
                            row.id,
                        ));
                        continue;
                    }
                    match agg.rows.get(&row.id) {
                        None => {
                            agg.rows.insert(row.id.clone(), row);
                            agg.run_rows.inc();
                            self.rows_aggregated.inc();
                        }
                        // A byte-identical duplicate is a stolen
                        // shard's overlap — expected, drop it.
                        Some(first) if first.to_json_line() == row.to_json_line() => {}
                        Some(_) => agg.diags.push(format!(
                            "{}: row '{}' differs from an earlier copy — determinism \
                             contract violation",
                            tailer.path().display(),
                            row.id,
                        )),
                    }
                }
            }
        }
    }

    /// A copy of one run's current state, or `None` for unknown runs.
    pub fn view(&self, run: &str) -> Option<RunView> {
        let runs = self.lock();
        let agg = runs.iter().find(|a| a.run == run)?;
        Some(RunView {
            run: agg.run.clone(),
            rows: agg.rows.values().cloned().collect(),
            diags: agg.diags.clone(),
            expected: agg.expected.len(),
        })
    }
}

impl Default for Aggregator {
    fn default() -> Self {
        Aggregator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::time::Duration;
    use uvllm_campaign::{Campaign, CampaignConfig, MemorySink, MethodKind};
    use uvllm_sim::SimBackend;

    fn spec() -> RunSpec {
        RunSpec {
            size: 2,
            seed: 0x42,
            methods: vec![MethodKind::Strider],
            backend: SimBackend::default(),
            opt_level: 0,
            shards: 1,
            lease: Duration::from_secs(1),
        }
    }

    fn real_rows() -> Vec<EvalRow> {
        let config = CampaignConfig {
            dataset_size: 2,
            dataset_seed: 0x42,
            methods: vec![MethodKind::Strider],
            workers: 1,
            ..CampaignConfig::default()
        };
        let mut sink = MemorySink::new();
        Campaign::new(config).unwrap().run(&mut sink).unwrap();
        sink.rows().to_vec()
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("uvllm-agg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn aggregates_incrementally_and_dedups_identical_rows() {
        let rows = real_rows();
        assert_eq!(rows.len(), 2);
        let path = temp_path("incr.jsonl");
        let _ = std::fs::remove_file(&path);

        let agg = Aggregator::new();
        agg.register("run-t1", &spec(), vec![path.clone()]);
        agg.poll();
        let view = agg.view("run-t1").unwrap();
        assert_eq!(view.rows.len(), 0, "missing sink file aggregates as empty");
        assert_eq!(view.expected, 2);
        assert!(!view.complete());

        let mut file = std::fs::File::create(&path).unwrap();
        writeln!(file, "{}", rows[0].to_json_line()).unwrap();
        file.flush().unwrap();
        agg.poll();
        assert_eq!(agg.view("run-t1").unwrap().rows.len(), 1);

        // The second row plus a byte-identical duplicate of the first
        // (a stolen shard's overlap): dedup keeps the count exact.
        writeln!(file, "{}", rows[1].to_json_line()).unwrap();
        writeln!(file, "{}", rows[0].to_json_line()).unwrap();
        file.flush().unwrap();
        agg.poll();
        let view = agg.view("run-t1").unwrap();
        assert_eq!(view.rows.len(), 2);
        assert!(view.complete());
        assert!(view.diags.is_empty(), "{:?}", view.diags);
        // Canonical order: sorted by job id.
        let ids: Vec<&str> = view.rows.iter().map(|r| r.id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_and_differing_rows_become_diagnostics() {
        let rows = real_rows();
        let path = temp_path("diag.jsonl");
        let mut mutated = rows[0].clone();
        mutated.llm_calls += 1;
        std::fs::write(
            &path,
            format!(
                "{}\nnot json at all\n{}\n{{\"id\": \"torn",
                rows[0].to_json_line(),
                mutated.to_json_line(),
            ),
        )
        .unwrap();

        let agg = Aggregator::new();
        agg.register("run-t2", &spec(), vec![path.clone()]);
        agg.poll();
        let view = agg.view("run-t2").unwrap();
        assert_eq!(view.rows.len(), 1, "the good row lands, the torn tail stays pending");
        assert_eq!(view.diags.len(), 2, "{:?}", view.diags);
        assert!(view.diags[0].contains("diag.jsonl:2:"), "{}", view.diags[0]);
        assert!(view.diags[1].contains("determinism contract violation"), "{}", view.diags[1]);
        assert!(agg.view("run-nope").is_none());
        let _ = std::fs::remove_file(&path);
    }
}
