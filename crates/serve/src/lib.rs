//! # uvllm-serve
//!
//! The resident campaign service: a dependency-free HTTP/1.1 server
//! (`std::net` only, hand-rolled parsing — see [`http`]) that keeps
//! campaigns resident and leases their shards to workers.
//!
//! * [`store`] — submitted runs split into shards; shards leased under
//!   deadlines with epoch fencing; expired leases reclaimed and
//!   re-granted (*work stealing*). Safe because rows are pure functions
//!   of (instance × method × seeds): a thief re-producing a dead
//!   worker's rows produces the same bytes, and the sink resume
//!   protocol skips what was already flushed.
//! * [`aggregate`] — a rolling, deduplicated view of every run built by
//!   tailing the shard JSONL sinks with
//!   [`SinkTailer`](uvllm_campaign::SinkTailer), torn-line-safe while
//!   workers are mid-append.
//! * [`server`] — routing and lifecycle: `POST /jobs`, `POST /lease`,
//!   `POST /heartbeat`, `POST /complete`, `GET /runs/<id>[/rows]`,
//!   `GET /metrics` (the [`uvllm_obs`] snapshot, `uvllm-metrics/v1`),
//!   `POST /shutdown` (drain leases → final aggregation → final
//!   metrics snapshot on disk).
//! * [`worker`] — the client loop: lease, evaluate through the normal
//!   [`Campaign`](uvllm_campaign::Campaign) engine, heartbeat (pushing
//!   `rows_done` progress), complete; one shared
//!   [`BatchedLlm`](uvllm_llm::BatchedLlm) can span every lease the
//!   worker takes; an `--addr-file` lets workers re-find a server that
//!   restarted on a new port.
//! * [`journal`] / [`recovery`] — crash safety: every store transition
//!   is appended to a length-prefixed, checksummed write-ahead journal
//!   (`data_dir/journal.jsonl`, configurable fsync policy,
//!   torn-tail-tolerant replay) and periodically compacted into
//!   `store.snapshot.json`; on boot the store replays snapshot +
//!   journal, expires in-flight leases with bumped epochs (pre-crash
//!   workers get the same `409 LeaseLost` as after work stealing), and
//!   resumes granting. A deterministic `--crash-after <event>[:N]`
//!   knob aborts the process mid-transition for the chaos harness.
//!
//! The service adds coordination, never meaning: any run served here
//! produces JSONL rows byte-identical to the same configuration run
//! through the CLI — at any worker count, with any number of stolen
//! leases, across any number of server crashes. The e2e suites enforce
//! exactly that (including a kill -9 of the server mid-run).
//!
//! ## Example
//!
//! ```no_run
//! use uvllm_serve::{run_worker, ServeConfig, Server, WorkerOptions};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let addr = server.addr().to_string();
//! // ... submit runs over HTTP, then from any process:
//! let summary = run_worker(&WorkerOptions::new(addr)).unwrap();
//! println!("completed {} shard(s)", summary.completed);
//! server.shutdown();
//! ```

pub mod aggregate;
pub mod http;
pub mod journal;
pub mod recovery;
pub mod server;
pub mod store;
pub mod worker;

pub use aggregate::{Aggregator, RunView};
pub use http::{read_request, respond, Request};
pub use journal::{CrashSpec, FsyncPolicy, Journal, JournalConfig};
pub use recovery::{recover, RecoveryReport};
pub use server::{ServeConfig, Server};
pub use store::{post_json, JobStore, LeaseError, LeaseGrant, LeaseOutcome, RunSpec, ShardStatus};
pub use worker::{run_worker, WorkerOptions, WorkerSummary};
