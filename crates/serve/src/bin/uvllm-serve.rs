//! Standalone resident-service entrypoint — the process the crash
//! harness kills. The richer `campaign serve` CLI wraps the same
//! [`Server`]; this binary exists so integration tests and CI can
//! spawn a *separate OS process* (via `CARGO_BIN_EXE_uvllm-serve`),
//! `kill -9` it mid-run, and restart it on the same data directory.
//!
//! `--addr-file` publishes the bound address (ephemeral ports welcome)
//! for workers to re-read after a restart; `--crash-after EVENT[:N]`
//! arms the deterministic abort knob.

use std::path::PathBuf;
use std::time::Duration;
use uvllm_serve::{CrashSpec, FsyncPolicy, ServeConfig, Server};

const USAGE: &str = "usage: uvllm-serve [--addr HOST:PORT] [--addr-file PATH] [--data-dir DIR]
                   [--lease-ms N] [--poll-ms N] [--fsync always|never|every:N]
                   [--compact-every N] [--crash-after EVENT[:N]]";

fn main() {
    if let Err(message) = run() {
        eprintln!("uvllm-serve: {message}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), String> {
    let mut config = ServeConfig::default();
    let mut addr_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--addr-file" => addr_file = Some(PathBuf::from(value("--addr-file")?)),
            "--data-dir" => config.data_dir = PathBuf::from(value("--data-dir")?),
            "--lease-ms" => {
                config.default_lease = Duration::from_millis(parse_ms(&value("--lease-ms")?)?);
            }
            "--poll-ms" => {
                config.poll = Duration::from_millis(parse_ms(&value("--poll-ms")?)?);
            }
            "--fsync" => config.journal.fsync = FsyncPolicy::parse(&value("--fsync")?)?,
            "--compact-every" => {
                config.journal.compact_every = value("--compact-every")?
                    .parse()
                    .map_err(|_| "--compact-every needs an integer".to_string())?;
            }
            "--crash-after" => {
                config.journal.crash_after = Some(CrashSpec::parse(&value("--crash-after")?)?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }

    let server = Server::start(config).map_err(|e| format!("start failed: {e}"))?;
    let report = server.recovery();
    if report.recovered_state() {
        eprintln!("uvllm-serve: {}", report.render());
        for diag in &report.diags {
            eprintln!("uvllm-serve: recovery diag: {diag}");
        }
    }
    let addr = server.addr().to_string();
    if let Some(path) = &addr_file {
        // Temp-and-rename so a worker mid-read never sees a torn file.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| format!("cannot publish address to {}: {e}", path.display()))?;
    }
    println!("uvllm-serve: listening on {addr}");
    // Runs until `POST /shutdown` (graceful) or an external kill (the
    // crash harness) — recovery on the next boot handles the latter.
    server.join();
    Ok(())
}

fn parse_ms(text: &str) -> Result<u64, String> {
    text.parse().map_err(|_| format!("bad millisecond value '{text}'"))
}
