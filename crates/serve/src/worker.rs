//! The leased-shard worker: polls `POST /lease`, runs each granted
//! shard through the normal campaign engine into the grant's JSONL
//! sink, heartbeats while evaluating (pushing `rows_done` progress),
//! and reports `POST /complete`.
//!
//! Determinism does the heavy lifting: a worker needs *no* state from
//! the server beyond the grant — the [`RunSpec`](crate::RunSpec) pins
//! the dataset and seeds, the shard index pins the slice, and the
//! sink's resume protocol skips whatever a previous (dead) holder
//! already flushed. A stolen shard therefore continues mid-file and
//! produces rows byte-identical to an uninterrupted run.
//!
//! Crash-safe serving needs the mirror-image property on this side:
//! with an `addr_file` configured, a worker treats transport errors as
//! "the server is restarting", re-reads the file (a restarted server
//! republishes its — possibly new — address there), and keeps polling
//! within its idle budget. Leases held across the crash are fenced by
//! recovery's epoch bump, so the reconnecting worker sees the ordinary
//! `409 LeaseLost`, abandons the shard, and re-leases it fresh.

use crate::store::{post_json, LeaseGrant};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;
use uvllm_campaign::{
    BatchConfig, Campaign, CampaignConfig, EvalRow, JsonlSink, ResultSink, ShardSpec, SharedLlm,
};
use uvllm_json::{s, Json};
use uvllm_llm::BatchedLlm;

/// How a worker process connects and behaves.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Server address, e.g. `127.0.0.1:8091`.
    pub server: String,
    /// Worker name quoted in leases (shows up in run status).
    pub name: String,
    /// Evaluation threads per leased shard (0 = one per CPU).
    pub workers: usize,
    /// Delay between `204 No Content` lease polls.
    pub poll: Duration,
    /// Exit after this many consecutive empty polls (`None` = poll
    /// until the server drains). With an `addr_file`, failed polls
    /// while the server is down also count against this budget.
    pub max_idle: Option<u64>,
    /// Exit after the first granted lease finishes (tests, CI).
    pub once: bool,
    /// `Some` starts one shared [`BatchedLlm`] that lives across every
    /// lease this worker takes — the resident-service path where the
    /// batching window spans shards.
    pub llm_batch: Option<BatchConfig>,
    /// Fault injection for the steal tests: the sink starts refusing
    /// appends after this many rows, simulating a worker dying
    /// mid-shard (rows already flushed stay on disk; no complete is
    /// reported; the lease expires and someone else finishes the file).
    pub abort_after_rows: Option<usize>,
    /// Where the server publishes its bound address. When set,
    /// transport errors trigger a re-read instead of failing the
    /// worker — the handshake that lets workers outlive a server
    /// crash/restart (which may come back on a different port).
    pub addr_file: Option<PathBuf>,
}

impl WorkerOptions {
    /// Sensible defaults for connecting to `server`.
    pub fn new(server: impl Into<String>) -> WorkerOptions {
        WorkerOptions {
            server: server.into(),
            name: format!("worker-{}", std::process::id()),
            workers: 0,
            poll: Duration::from_millis(100),
            max_idle: None,
            once: false,
            llm_batch: None,
            abort_after_rows: None,
            addr_file: None,
        }
    }
}

/// What a worker did before exiting.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Leases granted to this worker.
    pub leases: u64,
    /// Shards completed (accepted by the server).
    pub completed: u64,
    /// Shards whose leases this worker stole from expired holders.
    pub stolen: u64,
    /// Shards abandoned by injected sink failure (`abort_after_rows`).
    pub aborted: u64,
    /// Completions/heartbeats refused with a stale epoch — the shard
    /// was re-leased out from under us while we evaluated (work
    /// stealing) or the server crashed and recovery fenced our epoch.
    pub lost: u64,
    /// Transport errors survived by re-reading the address file.
    pub reconnects: u64,
}

/// The server address as this worker currently knows it: a plain
/// string, refreshed from the address file after transport errors.
#[derive(Debug, Clone)]
struct Endpoint {
    addr: Arc<Mutex<String>>,
    file: Option<PathBuf>,
}

impl Endpoint {
    fn new(options: &WorkerOptions) -> Endpoint {
        Endpoint {
            addr: Arc::new(Mutex::new(options.server.clone())),
            file: options.addr_file.clone(),
        }
    }

    fn get(&self) -> String {
        self.addr.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Re-reads the address file (if any). Returns true when refresh
    /// is possible at all — false means there is no file and transport
    /// errors are fatal, preserving the plain-address behavior.
    fn refresh(&self) -> bool {
        let Some(file) = &self.file else { return false };
        if let Ok(text) = std::fs::read_to_string(file) {
            let text = text.trim();
            if !text.is_empty() {
                *self.addr.lock().unwrap_or_else(PoisonError::into_inner) = text.to_string();
            }
        }
        true
    }
}

/// Runs the worker loop until the server drains, the idle budget runs
/// out, or (`once`) the first lease finishes.
///
/// # Errors
///
/// Transport failures (without an `addr_file`) and undecodable grants.
/// A lost lease is *not* an error — the thief owns the shard now; it
/// counts in the summary.
pub fn run_worker(options: &WorkerOptions) -> Result<WorkerSummary, String> {
    let shared: Option<SharedLlm> = options.llm_batch.clone().map(BatchedLlm::start);
    let endpoint = Endpoint::new(options);
    let mut summary = WorkerSummary::default();
    let mut idle = 0u64;
    loop {
        let body = Json::Obj(vec![("worker".to_string(), s(options.name.clone()))]);
        let (status, json) = match post_json(&endpoint.get(), "/lease", &body) {
            Ok(reply) => reply,
            Err(e) => {
                // Server unreachable. With an address file this is a
                // restart in progress: refresh, spend idle budget,
                // retry. Without one it stays fatal.
                if !endpoint.refresh() {
                    return Err(e);
                }
                summary.reconnects += 1;
                idle += 1;
                if options.max_idle.is_some_and(|max| idle >= max) {
                    break;
                }
                std::thread::sleep(options.poll);
                continue;
            }
        };
        match status {
            410 => break,
            204 => {
                idle += 1;
                if options.max_idle.is_some_and(|max| idle >= max) {
                    break;
                }
                std::thread::sleep(options.poll);
                continue;
            }
            200 => {}
            other => return Err(format!("POST /lease: unexpected status {other}")),
        }
        idle = 0;
        let grant = LeaseGrant::from_json(&json)?;
        summary.leases += 1;
        if grant.stolen {
            summary.stolen += 1;
        }
        run_lease(options, &endpoint, &grant, shared.as_ref(), &mut summary)?;
        if options.once {
            break;
        }
    }
    Ok(summary)
}

/// One granted shard: campaign run + heartbeats + completion report.
fn run_lease(
    options: &WorkerOptions,
    endpoint: &Endpoint,
    grant: &LeaseGrant,
    shared: Option<&SharedLlm>,
    summary: &mut WorkerSummary,
) -> Result<(), String> {
    let spec = &grant.spec;
    let config = CampaignConfig {
        dataset_size: spec.size,
        dataset_seed: spec.seed,
        methods: spec.methods.clone(),
        workers: options.workers,
        shard: ShardSpec { index: grant.shard, count: spec.shards },
        backend: spec.backend,
        opt_level: spec.opt_level,
        ..CampaignConfig::default()
    };
    let campaign = Campaign::new(config).map_err(|e| format!("bad grant config: {e}"))?;
    let sink = JsonlSink::open(&grant.sink)
        .map_err(|e| format!("cannot open sink {}: {e}", grant.sink.display()))?;
    // The progress the heartbeat pushes counts everything in the sink,
    // including rows a previous holder flushed before dying.
    let rows_done = Arc::new(AtomicU64::new(sink.completed_ids().len() as u64));
    let mut sink = AbortingSink::new(sink, options.abort_after_rows, Arc::clone(&rows_done));

    // Heartbeat at a third of the lease so two misses still fit inside
    // the deadline. A 409 means the lease was re-granted — remember it
    // and stop renewing (the thief owns the shard now).
    let done = Arc::new(AtomicBool::new(false));
    let lost = Arc::new(AtomicBool::new(false));
    let beat = {
        let done = Arc::clone(&done);
        let lost = Arc::clone(&lost);
        let rows_done = Arc::clone(&rows_done);
        let endpoint = endpoint.clone();
        let grant = grant.clone();
        let interval = (grant.lease / 3).max(Duration::from_millis(10));
        std::thread::spawn(move || {
            while !done.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                if done.load(Ordering::SeqCst) {
                    break;
                }
                let body = renewal_body(&grant, Some(rows_done.load(Ordering::SeqCst)));
                match post_json(&endpoint.get(), "/heartbeat", &body) {
                    Ok((200, _)) => {}
                    Ok((409, _)) => {
                        lost.store(true, Ordering::SeqCst);
                        break;
                    }
                    // 404s and transport hiccups: refresh the address
                    // (a restarting server may move) and keep trying;
                    // the deadline is the arbiter.
                    Err(_) => {
                        endpoint.refresh();
                    }
                    _ => {}
                }
            }
        })
    };

    let run = campaign.run_shared(&mut sink, shared);
    done.store(true, Ordering::SeqCst);
    let _ = beat.join();

    match run {
        Err(_) if sink.aborted() => {
            // Injected death: rows flushed so far stay on disk, no
            // completion is reported, the lease runs out its deadline.
            summary.aborted += 1;
            Ok(())
        }
        Err(e) => Err(format!("shard {}/{} failed: {e}", grant.run, grant.shard)),
        Ok(_) => {
            if lost.load(Ordering::SeqCst) {
                summary.lost += 1;
                return Ok(());
            }
            let (status, _) = post_complete(options, endpoint, grant, summary)?;
            match status {
                200 => summary.completed += 1,
                409 => summary.lost += 1,
                other => return Err(format!("POST /complete: unexpected status {other}")),
            }
            Ok(())
        }
    }
}

/// Reports completion, riding out a restarting server: with an
/// `addr_file`, transport errors refresh the address and retry within
/// the idle budget (the shard's rows are already durable, and recovery
/// will answer 409 if the epoch was fenced meanwhile — both outcomes
/// are fine, silence is not).
fn post_complete(
    options: &WorkerOptions,
    endpoint: &Endpoint,
    grant: &LeaseGrant,
    summary: &mut WorkerSummary,
) -> Result<(u16, Json), String> {
    let body = renewal_body(grant, None);
    let retries = options.max_idle.unwrap_or(100);
    let mut attempt = 0u64;
    loop {
        match post_json(&endpoint.get(), "/complete", &body) {
            Ok(reply) => return Ok(reply),
            Err(e) => {
                attempt += 1;
                if !endpoint.refresh() || attempt >= retries {
                    return Err(e);
                }
                summary.reconnects += 1;
                std::thread::sleep(options.poll);
            }
        }
    }
}

fn renewal_body(grant: &LeaseGrant, rows_done: Option<u64>) -> Json {
    let mut members = vec![
        ("run".to_string(), s(grant.run.clone())),
        ("shard".to_string(), Json::Num(grant.shard as f64)),
        ("epoch".to_string(), Json::Num(grant.epoch as f64)),
    ];
    if let Some(rows) = rows_done {
        members.push(("rows_done".to_string(), Json::Num(rows as f64)));
    }
    Json::Obj(members)
}

/// A sink that dies on schedule: forwards the first `limit` appends to
/// the wrapped [`JsonlSink`], then refuses every append with an I/O
/// error. `limit: None` forwards everything. Because the engine
/// flushes per row, the file is left exactly as a `kill -9` at that
/// point would leave it — which is what the steal tests need. Also
/// the worker's progress meter: every successful append bumps the
/// shared counter the heartbeat thread reads.
struct AbortingSink {
    inner: JsonlSink,
    limit: Option<usize>,
    written: usize,
    aborted: bool,
    rows_done: Arc<AtomicU64>,
}

impl AbortingSink {
    fn new(inner: JsonlSink, limit: Option<usize>, rows_done: Arc<AtomicU64>) -> AbortingSink {
        AbortingSink { inner, limit, written: 0, aborted: false, rows_done }
    }

    fn aborted(&self) -> bool {
        self.aborted
    }
}

impl ResultSink for AbortingSink {
    fn completed_ids(&self) -> std::collections::HashSet<String> {
        self.inner.completed_ids()
    }

    fn existing_rows(&self) -> Vec<EvalRow> {
        self.inner.existing_rows()
    }

    fn append(&mut self, row: &EvalRow) -> std::io::Result<()> {
        if self.limit.is_some_and(|limit| self.written >= limit) {
            self.aborted = true;
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected worker death",
            ));
        }
        self.inner.append(row)?;
        self.written += 1;
        self.rows_done.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}
