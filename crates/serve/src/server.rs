//! The resident HTTP server: accept loop, routing, the aggregator
//! thread, and the graceful-shutdown sequence.
//!
//! Threading model: one accept thread, one handler thread per
//! connection (requests are one round trip and handlers share only the
//! `Arc<ServeState>`), one aggregator thread polling shard sinks on a
//! cadence. `GET /runs/…` and `GET /metrics` also poll inline so reads
//! are never staler than the sinks.
//!
//! Shutdown (from `POST /shutdown`, [`Server::shutdown`], or the CLI's
//! SIGINT handler — idempotent, first caller wins):
//! 1. the store drains: `POST /lease` answers `410 Gone`;
//! 2. wait for in-flight leases to complete or expire;
//! 3. one final aggregation pass over every sink;
//! 4. the final metrics snapshot lands in `<data_dir>/metrics.json`;
//! 5. the accept and aggregator threads stop and join.

use crate::aggregate::Aggregator;
use crate::http::{self, Request};
use crate::journal::JournalConfig;
use crate::recovery::RecoveryReport;
use crate::store::{JobStore, LeaseError, LeaseOutcome, RunSpec};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use uvllm_json::{s, Json};

/// How the resident service is wired.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port (read it
    /// back from [`Server::addr`]).
    pub addr: String,
    /// Where run directories (`run-N/shard-i.jsonl`) and the final
    /// `metrics.json` live.
    pub data_dir: PathBuf,
    /// Lease duration for submissions that don't specify `lease_ms`.
    pub default_lease: Duration,
    /// Aggregator poll cadence.
    pub poll: Duration,
    /// Write-ahead journal behavior: fsync policy, compaction
    /// threshold, and the deterministic crash knob.
    pub journal: JournalConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("campaign-serve"),
            default_lease: Duration::from_secs(60),
            poll: Duration::from_millis(200),
            journal: JournalConfig::default(),
        }
    }
}

/// Everything request handlers share.
struct ServeState {
    store: JobStore,
    agg: Aggregator,
    /// Set once the drain has completed; stops the accept and
    /// aggregator loops.
    stopped: AtomicBool,
    /// Guards the shutdown sequence against double entry.
    shutting_down: AtomicBool,
    addr: SocketAddr,
    http_requests: &'static uvllm_obs::Counter,
}

/// A running resident service.
pub struct Server {
    state: Arc<ServeState>,
    accept: Option<JoinHandle<()>>,
    aggregator: Option<JoinHandle<()>>,
    recovery: RecoveryReport,
}

impl Server {
    /// Opens the store (recovering whatever a previous process left in
    /// `data_dir` — see [`crate::recovery`]), re-registers recovered
    /// runs with the aggregator, binds, spawns the accept and
    /// aggregator threads, returns immediately.
    ///
    /// # Errors
    ///
    /// Bind, data-directory, and journal I/O failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let (store, recovery) =
            JobStore::open(config.data_dir, config.default_lease, config.journal)?;
        if recovery.recovered_state() {
            uvllm_obs::registry().counter("serve.recoveries").inc();
        }
        uvllm_obs::registry()
            .counter("serve.journal.records_replayed")
            .add(recovery.records_replayed);
        uvllm_obs::registry().counter("serve.recovery.leases_expired").add(recovery.leases_expired);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServeState {
            store,
            agg: Aggregator::new(),
            stopped: AtomicBool::new(false),
            shutting_down: AtomicBool::new(false),
            addr,
            http_requests: uvllm_obs::registry().counter("serve.http_requests"),
        });

        // Recovered runs re-enter the aggregator, which re-scans their
        // surviving sinks — rows flushed before the crash are counted
        // again before any worker reconnects.
        for run in state.store.run_ids() {
            let spec = state.store.spec(&run).expect("recovered run has a spec");
            let sinks = state.store.sinks(&run).expect("recovered run has sinks");
            state.agg.register(&run, &spec, sinks);
        }
        state.agg.poll();

        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.stopped.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                let handler_state = Arc::clone(&accept_state);
                // Handlers are one short round trip each; detached is
                // fine — shutdown waits on leases, not sockets.
                std::thread::spawn(move || handle(&handler_state, &mut stream));
            }
        });

        let agg_state = Arc::clone(&state);
        let poll = config.poll;
        let aggregator = std::thread::spawn(move || {
            while !agg_state.stopped.load(Ordering::SeqCst) {
                agg_state.agg.poll();
                std::thread::sleep(poll);
            }
        });

        Ok(Server { state, accept: Some(accept), aggregator: Some(aggregator), recovery })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// What boot-time recovery found in the data directory (empty
    /// report for a fresh directory).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// True once a shutdown has been requested (by any path).
    pub fn shutdown_requested(&self) -> bool {
        self.state.shutting_down.load(Ordering::SeqCst)
    }

    /// True once the shutdown sequence has fully completed.
    pub fn stopped(&self) -> bool {
        self.state.stopped.load(Ordering::SeqCst)
    }

    /// Runs the graceful-shutdown sequence (drain → wait → final
    /// aggregation → final metrics snapshot) and joins the service
    /// threads. Safe to call after `POST /shutdown` already started
    /// the sequence — this then just waits for it.
    pub fn shutdown(mut self) {
        begin_shutdown(&self.state);
        self.join_threads();
    }

    /// Blocks until the service stops (a `POST /shutdown` or a
    /// concurrent [`Server::shutdown`]).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        // The shutdown thread flips `stopped` and pokes the accept
        // loop; until then both threads are parked in their loops.
        while !self.state.stopped.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.aggregator.take() {
            let _ = handle.join();
        }
    }
}

/// The drain → wait → flush sequence, spawned detached so the
/// requesting HTTP handler can answer before the wait. First caller
/// wins; later calls are no-ops (the sequence is already running).
fn begin_shutdown(state: &Arc<ServeState>) {
    if state.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    let state = Arc::clone(state);
    std::thread::spawn(move || {
        state.store.drain();
        while !state.store.drained() {
            std::thread::sleep(Duration::from_millis(20));
        }
        // Completed leases have flushed their rows; fold them in and
        // persist the final metrics snapshot next to the run data.
        state.agg.poll();
        let snapshot = uvllm_obs::registry().snapshot().render();
        let _ = std::fs::write(state.store.data_dir().join("metrics.json"), snapshot);
        state.stopped.store(true, Ordering::SeqCst);
        // Unblock the accept loop's blocking `accept()`.
        let _ = TcpStream::connect(state.addr);
    });
}

fn handle(state: &Arc<ServeState>, stream: &mut TcpStream) {
    let request = match http::read_request(stream) {
        Ok(request) => request,
        Err(e) => {
            let _ = http::respond(stream, 400, "text/plain", &format!("{e}\n"));
            return;
        }
    };
    state.http_requests.inc();
    let (status, content_type, body) = route(state, &request);
    let _ = http::respond(stream, status, content_type, &body);
}

/// Dispatch. Returns `(status, content-type, body)`.
fn route(state: &Arc<ServeState>, request: &Request) -> (u16, &'static str, String) {
    let target = request.target.as_str();
    match (request.method.as_str(), target) {
        ("POST", "/jobs") => post_jobs(state, &request.body),
        ("POST", "/lease") => post_lease(state, &request.body),
        ("POST", "/heartbeat") => post_renewal(state, &request.body, false),
        ("POST", "/complete") => post_renewal(state, &request.body, true),
        ("POST", "/shutdown") => {
            begin_shutdown(state);
            json_ok(Json::Obj(vec![("draining".to_string(), Json::Bool(true))]))
        }
        ("GET", "/healthz") => (200, "text/plain", "ok\n".to_string()),
        ("GET", "/metrics") => {
            // Metrics include per-run row counters; poll first so they
            // reflect every row currently on disk.
            state.agg.poll();
            (200, "application/json", uvllm_obs::registry().snapshot().render())
        }
        ("GET", "/runs") => {
            let runs = state.store.run_ids();
            json_ok(Json::Obj(vec![(
                "runs".to_string(),
                Json::Arr(runs.into_iter().map(s).collect()),
            )]))
        }
        ("GET", path) if path.starts_with("/runs/") => get_run(state, &path["/runs/".len()..]),
        (_, "/jobs" | "/lease" | "/heartbeat" | "/complete" | "/shutdown") => {
            (405, "text/plain", "POST only\n".to_string())
        }
        (_, "/healthz" | "/metrics" | "/runs") => (405, "text/plain", "GET only\n".to_string()),
        _ => (404, "text/plain", format!("no such endpoint: {target}\n")),
    }
}

fn json_ok(json: Json) -> (u16, &'static str, String) {
    (200, "application/json", json.render())
}

fn bad_request(message: impl Into<String>) -> (u16, &'static str, String) {
    let mut body = message.into();
    body.push('\n');
    (400, "text/plain", body)
}

fn post_jobs(state: &Arc<ServeState>, body: &str) -> (u16, &'static str, String) {
    let json = match Json::parse(body) {
        Ok(json) => json,
        Err(e) => return bad_request(format!("bad submission JSON: {e}")),
    };
    let spec = match RunSpec::from_json(&json, state.store.default_lease()) {
        Ok(spec) => spec,
        Err(e) => return bad_request(e),
    };
    let run = match state.store.submit(spec.clone()) {
        Ok(run) => run,
        Err(e) => return (500, "text/plain", format!("submit failed: {e}\n")),
    };
    let sinks = state.store.sinks(&run).expect("just submitted");
    state.agg.register(&run, &spec, sinks);
    json_ok(Json::Obj(vec![
        ("run".to_string(), s(run)),
        ("shards".to_string(), Json::Num(spec.shards as f64)),
    ]))
}

fn post_lease(state: &Arc<ServeState>, body: &str) -> (u16, &'static str, String) {
    let worker = match Json::parse(body) {
        Ok(json) => match json.get("worker").and_then(Json::as_str) {
            Some(worker) => worker.to_string(),
            None => return bad_request("lease request missing member 'worker'"),
        },
        Err(e) => return bad_request(format!("bad lease JSON: {e}")),
    };
    match state.store.lease(&worker) {
        LeaseOutcome::Granted(grant) => json_ok(grant.to_json()),
        LeaseOutcome::Empty => (204, "text/plain", String::new()),
        LeaseOutcome::Draining => (410, "text/plain", "draining\n".to_string()),
        LeaseOutcome::Error(message) => (500, "text/plain", format!("{message}\n")),
    }
}

/// `POST /heartbeat` and `POST /complete` share a body shape
/// (`{run, shard, epoch}`) and an error mapping.
fn post_renewal(
    state: &Arc<ServeState>,
    body: &str,
    complete: bool,
) -> (u16, &'static str, String) {
    let json = match Json::parse(body) {
        Ok(json) => json,
        Err(e) => return bad_request(format!("bad JSON: {e}")),
    };
    let Some(run) = json.get("run").and_then(Json::as_str) else {
        return bad_request("missing member 'run'");
    };
    let Some(shard) = json.get("shard").and_then(Json::as_u64) else {
        return bad_request("missing member 'shard'");
    };
    let Some(epoch) = json.get("epoch").and_then(Json::as_u64) else {
        return bad_request("missing member 'epoch'");
    };
    let result = if complete {
        state.store.complete(run, shard as usize, epoch)
    } else {
        // Optional worker-pushed progress: fresher than the
        // aggregator's next sink poll, defaulting to 0 for old clients.
        let rows_done = json.get("rows_done").and_then(Json::as_u64).unwrap_or(0);
        state.store.heartbeat(run, shard as usize, epoch, rows_done)
    };
    match result {
        Ok(()) => json_ok(Json::Obj(vec![("ok".to_string(), Json::Bool(true))])),
        Err(LeaseError::UnknownRun) => (404, "text/plain", format!("no such run: {run}\n")),
        Err(LeaseError::UnknownShard) => (404, "text/plain", format!("no such shard: {shard}\n")),
        Err(LeaseError::LeaseLost) => {
            (409, "text/plain", "lease lost: stale epoch (expired and re-leased?)\n".to_string())
        }
        Err(LeaseError::Internal(message)) => (500, "text/plain", format!("{message}\n")),
    }
}

/// `GET /runs/<id>` (status JSON) and `GET /runs/<id>/rows` (the
/// deduplicated rows as canonical sorted JSONL).
fn get_run(state: &Arc<ServeState>, rest: &str) -> (u16, &'static str, String) {
    let (run, rows_only) = match rest.strip_suffix("/rows") {
        Some(run) => (run, true),
        None => (rest, false),
    };
    // Read-your-writes for status queries: fold in anything workers
    // appended since the last aggregator tick.
    state.agg.poll();
    let Some(view) = state.agg.view(run) else {
        return (404, "text/plain", format!("no such run: {run}\n"));
    };
    if rows_only {
        let mut text = String::new();
        for row in &view.rows {
            text.push_str(&row.to_json_line());
            text.push('\n');
        }
        return (200, "application/jsonl", text);
    }
    let (shards, shards_done) = state.store.status(run).expect("store and aggregator agree");
    let rows_pushed: u64 = shards.iter().map(|s| s.rows_done).sum();
    let shard_rows: Vec<Json> = shards
        .iter()
        .map(|shard| {
            Json::Obj(vec![
                ("shard".to_string(), Json::Num(shard.shard as f64)),
                ("state".to_string(), s(shard.state)),
                ("worker".to_string(), shard.worker.as_ref().map_or(Json::Null, |w| s(w.clone()))),
                ("steals".to_string(), Json::Num(shard.steals as f64)),
                ("rows_done".to_string(), Json::Num(shard.rows_done as f64)),
            ])
        })
        .collect();
    json_ok(Json::Obj(vec![
        ("run".to_string(), s(view.run.clone())),
        ("done".to_string(), Json::Bool(shards_done && view.complete())),
        ("rows".to_string(), Json::Num(view.rows.len() as f64)),
        ("rows_pushed".to_string(), Json::Num(rows_pushed as f64)),
        ("expected".to_string(), Json::Num(view.expected as f64)),
        ("shards".to_string(), Json::Arr(shard_rows)),
        ("diags".to_string(), Json::Arr(view.diags.iter().map(|d| s(d.clone())).collect())),
        ("report".to_string(), s(view.report().render())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("uvllm-serve-unit-{}-{name}", std::process::id()))
    }

    fn server_at(data_dir: PathBuf) -> Server {
        Server::start(ServeConfig {
            data_dir,
            default_lease: Duration::from_millis(500),
            poll: Duration::from_millis(50),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    fn test_server(name: &str) -> Server {
        let data_dir = test_dir(name);
        // Fresh directory: recovery-on-open must not pick up a prior
        // test execution's journal.
        let _ = std::fs::remove_dir_all(&data_dir);
        server_at(data_dir)
    }

    #[test]
    fn routing_basics() {
        let server = test_server("routing");
        let addr = server.addr().to_string();
        let (status, body) = http::request(&addr, "GET", "/healthz", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = http::request(&addr, "GET", "/nope", "").unwrap();
        assert_eq!(status, 404);
        let (status, _) = http::request(&addr, "GET", "/lease", "").unwrap();
        assert_eq!(status, 405);
        let (status, _) = http::request(&addr, "POST", "/metrics", "").unwrap();
        assert_eq!(status, 405);
        let (status, _) = http::request(&addr, "GET", "/runs/run-none", "").unwrap();
        assert_eq!(status, 404);
        let (status, body) = http::request(&addr, "POST", "/jobs", "{").unwrap();
        assert_eq!(status, 400, "{body}");
        let (status, body) = http::request(&addr, "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        uvllm_obs::validate_snapshot_json(&body).unwrap();
        server.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let server = test_server("shutdown");
        let addr = server.addr().to_string();
        let data_dir = server.state.store.data_dir().to_path_buf();
        let (status, _) =
            http::request(&addr, "POST", "/jobs", "{\"size\": 1, \"shards\": 1}").unwrap();
        assert_eq!(status, 200);
        // Hold a live lease so the drain has something to wait for —
        // the server must keep answering while it waits.
        let (status, grant) =
            http::request(&addr, "POST", "/lease", "{\"worker\": \"w\"}").unwrap();
        assert_eq!(status, 200, "{grant}");
        let grant = Json::parse(&grant).unwrap();
        let (status, body) = http::request(&addr, "POST", "/shutdown", "").unwrap();
        assert_eq!(status, 200, "{body}");
        // Draining: new leases are refused while ours is in flight.
        let (status, _) = http::request(&addr, "POST", "/lease", "{\"worker\": \"w2\"}").unwrap();
        assert_eq!(status, 410);
        let complete = Json::Obj(vec![
            ("run".to_string(), grant.get("run").unwrap().clone()),
            ("shard".to_string(), grant.get("shard").unwrap().clone()),
            ("epoch".to_string(), grant.get("epoch").unwrap().clone()),
        ]);
        let (status, body) = http::request(&addr, "POST", "/complete", &complete.render()).unwrap();
        assert_eq!(status, 200, "{body}");
        server.shutdown(); // second entry: waits, doesn't re-run
        let text = std::fs::read_to_string(data_dir.join("metrics.json")).unwrap();
        uvllm_obs::validate_snapshot_json(&text).unwrap();
    }

    #[test]
    fn restarted_server_recovers_runs_and_fences_old_epochs() {
        let server = test_server("restart");
        let addr = server.addr().to_string();
        let data_dir = server.state.store.data_dir().to_path_buf();
        assert!(!server.recovery().recovered_state(), "fresh directory");
        let (status, body) =
            http::request(&addr, "POST", "/jobs", "{\"size\": 1, \"shards\": 2}").unwrap();
        assert_eq!(status, 200, "{body}");
        let run = Json::parse(&body).unwrap().get("run").unwrap().as_str().unwrap().to_string();
        let (status, grant) =
            http::request(&addr, "POST", "/lease", "{\"worker\": \"doomed\"}").unwrap();
        assert_eq!(status, 200, "{grant}");
        let grant = Json::parse(&grant).unwrap();
        // Stop the first server with the lease still in flight (it
        // expires during the drain); its journal stays on disk.
        server.shutdown();

        let server = server_at(data_dir);
        let report = server.recovery();
        assert!(report.recovered_state(), "{report:?}");
        assert_eq!(report.runs, 1);
        assert!(report.records_replayed > 0 || report.snapshot_seq > 0, "{report:?}");
        let addr = server.addr().to_string();
        // The pre-restart worker's epoch answers the canonical 409…
        let renewal = Json::Obj(vec![
            ("run".to_string(), s(run.clone())),
            ("shard".to_string(), grant.get("shard").unwrap().clone()),
            ("epoch".to_string(), grant.get("epoch").unwrap().clone()),
        ]);
        let (status, _) = http::request(&addr, "POST", "/heartbeat", &renewal.render()).unwrap();
        assert_eq!(status, 409, "stale pre-restart epoch must be fenced");
        // …and the run is visible, resumable, and re-grantable.
        let (status, body) = http::request(&addr, "GET", &format!("/runs/{run}"), "").unwrap();
        assert_eq!(status, 200, "{body}");
        let (status, body) =
            http::request(&addr, "POST", "/lease", "{\"worker\": \"heir\"}").unwrap();
        assert_eq!(status, 200, "{body}");
        assert_eq!(Json::parse(&body).unwrap().get("run").unwrap().as_str(), Some(run.as_str()));
        server.shutdown();
    }
}
