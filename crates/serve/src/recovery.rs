//! Cold-start recovery: rebuild the job store from
//! `store.snapshot.json` + `journal.jsonl` after a crash (or a clean
//! restart — the path is the same).
//!
//! The snapshot is a periodic compaction checkpoint: the full store
//! image plus the sequence number of the last journal record folded
//! into it. Recovery loads the snapshot (a corrupt or missing one
//! degrades to the empty image, with a diagnostic), replays the
//! journal, and applies only records with `seq > snapshot.seq` — so a
//! crash *between* snapshot write and journal truncation is harmless,
//! and where the two disagree the journal wins by construction.
//!
//! Recovery's last act is to expire every in-flight lease: each leased
//! shard reverts to pending with its epoch bumped, so a pre-crash
//! worker that reconnects and quotes its old epoch gets the same
//! `409 LeaseLost` it would after ordinary work stealing, while the
//! shard itself is immediately re-grantable. Rows the dead leases
//! already flushed still sit in the per-shard sinks; the aggregator
//! re-scans those on boot and the sink resume protocol skips them on
//! re-lease, which is what makes recovered runs byte-identical to
//! uninterrupted ones.

use crate::journal::{self, Event};
use crate::store::RunSpec;
use std::io::Write;
use std::path::{Path, PathBuf};
use uvllm_json::{s, Json};

/// File name of the compaction checkpoint inside the data directory.
pub const SNAPSHOT_FILE: &str = "store.snapshot.json";

/// Format tag the snapshot self-identifies with.
pub const SNAPSHOT_FORMAT: &str = "uvllm-store-snapshot/v1";

/// A shard's durable lifecycle phase. Lease deadlines are `Instant`s
/// and meaningless across processes, so they are not part of the
/// image — recovery expires every lease anyway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardPhase {
    /// Never leased, or reclaimed and waiting.
    Pending,
    /// Leased to `worker` when the image was taken.
    Leased { worker: String },
    /// Completed by `worker`.
    Done { worker: String },
}

/// One shard's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardImage {
    pub phase: ShardPhase,
    /// Fencing token at image time.
    pub epoch: u64,
    /// Times an expired lease was re-granted.
    pub steals: u64,
    /// The shard's JSONL sink.
    pub sink: PathBuf,
    /// Last worker-pushed progress (heartbeat `rows_done`).
    pub rows_done: u64,
}

/// One run's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct RunImage {
    pub id: String,
    pub spec: RunSpec,
    pub shards: Vec<ShardImage>,
}

/// The whole store's durable state: what the snapshot holds and what
/// journal replay folds events into.
#[derive(Debug, Clone, Default)]
pub struct StoreImage {
    /// Sequence number of the last record folded in (0 = none).
    pub seq: u64,
    pub runs: Vec<RunImage>,
}

impl StoreImage {
    /// `run-N` ids are minted from a counter; the next mint must clear
    /// every recovered id.
    pub fn max_run_number(&self) -> u64 {
        self.runs
            .iter()
            .filter_map(|run| run.id.strip_prefix("run-"))
            .filter_map(|n| n.parse::<u64>().ok())
            .max()
            .unwrap_or(0)
    }

    /// Folds one journal record in, skipping stale sequence numbers
    /// (already in the snapshot). Unknown runs/shards are reported,
    /// not fatal — a truncated journal suffix must not brick the boot.
    pub fn apply(&mut self, seq: u64, event: &Event, data_dir: &Path, diags: &mut Vec<String>) {
        if seq <= self.seq {
            return;
        }
        self.seq = seq;
        let mut diag = |message: String| diags.push(format!("journal seq {seq}: {message}"));
        match event {
            Event::Submit { run, spec } => {
                let dir = data_dir.join(run);
                let shards = (0..spec.shards)
                    .map(|i| ShardImage {
                        phase: ShardPhase::Pending,
                        epoch: 0,
                        steals: 0,
                        sink: dir.join(format!("shard-{i}.jsonl")),
                        rows_done: 0,
                    })
                    .collect();
                self.runs.push(RunImage { id: run.clone(), spec: spec.clone(), shards });
            }
            Event::Lease { run, shard, epoch, worker, stolen } => {
                let Some(image) = self.runs.iter_mut().find(|r| &r.id == run) else {
                    return diag(format!("lease for unknown run '{run}'"));
                };
                let Some(image) = image.shards.get_mut(*shard) else {
                    return diag(format!("lease for unknown shard {shard} of '{run}'"));
                };
                image.phase = ShardPhase::Leased { worker: worker.clone() };
                image.epoch = *epoch;
                image.steals += u64::from(*stolen);
            }
            Event::Heartbeat { run, shard, epoch, rows_done } => {
                let Some(image) = self
                    .runs
                    .iter_mut()
                    .find(|r| &r.id == run)
                    .and_then(|r| r.shards.get_mut(*shard))
                else {
                    return diag(format!("heartbeat for unknown shard {shard} of '{run}'"));
                };
                if image.epoch == *epoch {
                    image.rows_done = *rows_done;
                }
            }
            Event::Complete { run, shard, epoch: _, worker } => {
                let Some(image) = self
                    .runs
                    .iter_mut()
                    .find(|r| &r.id == run)
                    .and_then(|r| r.shards.get_mut(*shard))
                else {
                    return diag(format!("complete for unknown shard {shard} of '{run}'"));
                };
                image.phase = ShardPhase::Done { worker: worker.clone() };
            }
            // Derived state (all shards done) — journaled for the
            // crash knob and the audit trail, nothing to fold in.
            Event::Finish { .. } => {}
        }
    }

    fn to_json(&self) -> Json {
        let runs = self
            .runs
            .iter()
            .map(|run| {
                let shards = run
                    .shards
                    .iter()
                    .map(|shard| {
                        let (phase, worker) = match &shard.phase {
                            ShardPhase::Pending => ("pending", None),
                            ShardPhase::Leased { worker } => ("leased", Some(worker.clone())),
                            ShardPhase::Done { worker } => ("done", Some(worker.clone())),
                        };
                        Json::Obj(vec![
                            ("state".to_string(), s(phase)),
                            ("worker".to_string(), worker.map_or(Json::Null, s)),
                            ("epoch".to_string(), Json::Num(shard.epoch as f64)),
                            ("steals".to_string(), Json::Num(shard.steals as f64)),
                            ("sink".to_string(), s(shard.sink.display().to_string())),
                            ("rows_done".to_string(), Json::Num(shard.rows_done as f64)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("id".to_string(), s(run.id.clone())),
                    ("spec".to_string(), run.spec.to_json()),
                    ("shards".to_string(), Json::Arr(shards)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("format".to_string(), s(SNAPSHOT_FORMAT)),
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("runs".to_string(), Json::Arr(runs)),
        ])
    }

    fn from_json(json: &Json) -> Result<StoreImage, String> {
        let format =
            json.get("format").and_then(Json::as_str).ok_or("snapshot missing 'format'")?;
        if format != SNAPSHOT_FORMAT {
            return Err(format!("unknown snapshot format '{format}'"));
        }
        let seq = json.get("seq").and_then(Json::as_u64).ok_or("snapshot missing 'seq'")?;
        let mut runs = Vec::new();
        for run in json.get("runs").and_then(Json::as_array).ok_or("snapshot missing 'runs'")? {
            let id = run
                .get("id")
                .and_then(Json::as_str)
                .ok_or("snapshot run missing 'id'")?
                .to_string();
            let spec = RunSpec::from_json(
                run.get("spec").ok_or("snapshot run missing 'spec'")?,
                std::time::Duration::from_secs(60),
            )?;
            let mut shards = Vec::new();
            for shard in
                run.get("shards").and_then(Json::as_array).ok_or("snapshot run missing 'shards'")?
            {
                let worker = shard.get("worker").and_then(Json::as_str).map(str::to_string);
                let phase = match shard.get("state").and_then(Json::as_str) {
                    Some("pending") => ShardPhase::Pending,
                    Some("leased") => ShardPhase::Leased {
                        worker: worker.ok_or("leased snapshot shard missing 'worker'")?,
                    },
                    Some("done") => ShardPhase::Done {
                        worker: worker.ok_or("done snapshot shard missing 'worker'")?,
                    },
                    other => return Err(format!("bad snapshot shard state {other:?}")),
                };
                shards.push(ShardImage {
                    phase,
                    epoch: shard
                        .get("epoch")
                        .and_then(Json::as_u64)
                        .ok_or("snapshot shard missing 'epoch'")?,
                    steals: shard.get("steals").and_then(Json::as_u64).unwrap_or(0),
                    sink: PathBuf::from(
                        shard
                            .get("sink")
                            .and_then(Json::as_str)
                            .ok_or("snapshot shard missing 'sink'")?,
                    ),
                    rows_done: shard.get("rows_done").and_then(Json::as_u64).unwrap_or(0),
                });
            }
            runs.push(RunImage { id, spec, shards });
        }
        Ok(StoreImage { seq, runs })
    }
}

/// Writes the compaction checkpoint atomically: temp file, fsync,
/// rename over the old snapshot. A crash at any point leaves either
/// the old snapshot or the new one, never a torn mix.
///
/// # Errors
///
/// File-system failures.
pub fn write_snapshot(dir: &Path, image: &StoreImage) -> std::io::Result<()> {
    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(image.to_json().render().as_bytes())?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))
}

/// What a boot-time recovery found and did.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Runs alive again after recovery.
    pub runs: usize,
    /// Journal records newer than the snapshot that were folded in.
    pub records_replayed: u64,
    /// Sequence number the snapshot covered (0 = no usable snapshot).
    pub snapshot_seq: u64,
    /// In-flight leases expired (epochs bumped) so pre-crash workers
    /// are fenced to `409 LeaseLost`.
    pub leases_expired: u64,
    /// Everything non-fatal that was wrong: torn journal tail, corrupt
    /// records, a corrupt snapshot, events naming unknown runs.
    pub diags: Vec<String>,
}

impl RecoveryReport {
    /// True when the boot found prior state to recover (the
    /// `serve.recoveries` signal).
    pub fn recovered_state(&self) -> bool {
        self.runs > 0 || self.records_replayed > 0 || self.snapshot_seq > 0
    }

    /// One log line for the CLI.
    pub fn render(&self) -> String {
        format!(
            "recovered {} run(s): snapshot seq {}, {} journal record(s) replayed, {} lease(s) \
             expired{}",
            self.runs,
            self.snapshot_seq,
            self.records_replayed,
            self.leases_expired,
            if self.diags.is_empty() {
                String::new()
            } else {
                format!(", {} diag(s)", self.diags.len())
            },
        )
    }
}

/// The outcome of [`recover`]: the rebuilt image plus what the journal
/// file physically holds (the store needs both to reopen the journal
/// with correct sequence and compaction accounting).
#[derive(Debug)]
pub struct Recovery {
    pub image: StoreImage,
    /// Valid records currently in the journal file (including ones
    /// older than the snapshot — they still occupy file space and
    /// count toward the compaction threshold).
    pub journal_records: u64,
    pub report: RecoveryReport,
}

/// Rebuilds the store image from `dir`: snapshot, then journal records
/// with `seq > snapshot.seq` (journal wins), then lease expiry. An
/// empty directory recovers to the empty image with an empty report.
///
/// # Errors
///
/// I/O failures reading the files; *corruption* in either file is a
/// diagnostic, not an error.
pub fn recover(dir: &Path) -> std::io::Result<Recovery> {
    let mut report = RecoveryReport::default();
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    let mut image = match std::fs::read_to_string(&snapshot_path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => StoreImage::default(),
        Err(e) => return Err(e),
        Ok(text) => match Json::parse(&text)
            .map_err(|e| e.to_string())
            .and_then(|json| StoreImage::from_json(&json))
        {
            Ok(image) => image,
            Err(message) => {
                // A corrupt snapshot degrades to a journal-only boot:
                // worst case some compacted history is gone and the
                // affected runs restart from their sinks.
                report.diags.push(format!(
                    "{}: corrupt snapshot ({message}) — ignoring it",
                    snapshot_path.display()
                ));
                StoreImage::default()
            }
        },
    };
    report.snapshot_seq = image.seq;

    let replay = journal::replay(dir)?;
    if let Some(diag) = replay.diag {
        report.diags.push(diag);
    }
    for (seq, event) in &replay.events {
        let before = image.seq;
        image.apply(*seq, event, dir, &mut report.diags);
        if image.seq > before {
            report.records_replayed += 1;
        }
    }

    // Fence out every pre-crash lease: pending again, epoch bumped, so
    // stale heartbeats/completes answer 409 and the shard re-grants.
    for run in &mut image.runs {
        for shard in &mut run.shards {
            if matches!(shard.phase, ShardPhase::Leased { .. }) {
                shard.phase = ShardPhase::Pending;
                shard.epoch += 1;
                report.leases_expired += 1;
            }
        }
    }
    report.runs = image.runs.len();
    Ok(Recovery { image, journal_records: replay.records, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{Journal, JournalConfig};
    use std::time::Duration;
    use uvllm_campaign::MethodKind;
    use uvllm_sim::SimBackend;

    fn spec(shards: usize) -> RunSpec {
        RunSpec {
            size: 2,
            seed: 0x42,
            methods: vec![MethodKind::Strider],
            backend: SimBackend::default(),
            opt_level: 0,
            shards,
            lease: Duration::from_millis(500),
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uvllm-recovery-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn journaled(dir: &Path, events: &[Event]) {
        let mut journal = Journal::open(dir, JournalConfig::default(), 1, 0).unwrap();
        for event in events {
            journal.append(event).unwrap();
        }
    }

    #[test]
    fn empty_dir_recovers_to_empty_image() {
        let dir = temp_dir("empty");
        let recovery = recover(&dir).unwrap();
        assert!(recovery.image.runs.is_empty());
        assert!(!recovery.report.recovered_state());
        assert!(recovery.report.diags.is_empty());
    }

    #[test]
    fn journal_only_boot_rebuilds_runs_and_expires_leases() {
        let dir = temp_dir("journal-only");
        journaled(
            &dir,
            &[
                Event::Submit { run: "run-7".into(), spec: spec(2) },
                Event::Lease {
                    run: "run-7".into(),
                    shard: 0,
                    epoch: 1,
                    worker: "a".into(),
                    stolen: false,
                },
                Event::Heartbeat { run: "run-7".into(), shard: 0, epoch: 1, rows_done: 3 },
                Event::Lease {
                    run: "run-7".into(),
                    shard: 1,
                    epoch: 1,
                    worker: "b".into(),
                    stolen: false,
                },
                Event::Complete { run: "run-7".into(), shard: 1, epoch: 1, worker: "b".into() },
            ],
        );
        let recovery = recover(&dir).unwrap();
        let report = &recovery.report;
        assert!(report.recovered_state());
        assert_eq!(report.records_replayed, 5);
        assert_eq!(report.leases_expired, 1, "only shard 0 was in flight");
        assert_eq!(recovery.image.max_run_number(), 7);

        let run = &recovery.image.runs[0];
        assert_eq!(run.spec, spec(2));
        // The in-flight lease is expired and fenced...
        assert_eq!(run.shards[0].phase, ShardPhase::Pending);
        assert_eq!(run.shards[0].epoch, 2, "bumped past the dead worker's epoch 1");
        assert_eq!(run.shards[0].rows_done, 3, "pushed progress survives");
        // ...while the completed shard stands.
        assert_eq!(run.shards[1].phase, ShardPhase::Done { worker: "b".into() });
        assert_eq!(run.shards[1].sink, dir.join("run-7").join("shard-1.jsonl"));
    }

    #[test]
    fn snapshot_round_trips_and_journal_wins_disagreements() {
        let dir = temp_dir("journal-wins");
        // Snapshot at seq 4: shard 0 leased, shard 1 pending.
        let image = StoreImage {
            seq: 4,
            runs: vec![RunImage {
                id: "run-3".into(),
                spec: spec(2),
                shards: vec![
                    ShardImage {
                        phase: ShardPhase::Leased { worker: "old".into() },
                        epoch: 2,
                        steals: 1,
                        sink: dir.join("run-3").join("shard-0.jsonl"),
                        rows_done: 5,
                    },
                    ShardImage {
                        phase: ShardPhase::Pending,
                        epoch: 0,
                        steals: 0,
                        sink: dir.join("run-3").join("shard-1.jsonl"),
                        rows_done: 0,
                    },
                ],
            }],
        };
        write_snapshot(&dir, &image).unwrap();

        // The journal carries both pre-snapshot records (seq ≤ 4, must
        // be skipped — a crash before truncation leaves exactly this)
        // and newer ones that contradict the snapshot (must win).
        let mut journal = Journal::open(&dir, JournalConfig::default(), 3, 0).unwrap();
        journal // seq 3: stale — folding it again would double-count the steal
            .append(&Event::Lease {
                run: "run-3".into(),
                shard: 0,
                epoch: 2,
                worker: "old".into(),
                stolen: true,
            })
            .unwrap();
        journal // seq 4: stale heartbeat
            .append(&Event::Heartbeat { run: "run-3".into(), shard: 0, epoch: 2, rows_done: 5 })
            .unwrap();
        journal // seq 5: news — the lease completed after the snapshot
            .append(&Event::Complete {
                run: "run-3".into(),
                shard: 0,
                epoch: 2,
                worker: "old".into(),
            })
            .unwrap();
        drop(journal);

        let recovery = recover(&dir).unwrap();
        let report = &recovery.report;
        assert_eq!(report.snapshot_seq, 4);
        assert_eq!(report.records_replayed, 1, "only seq 5 is newer than the snapshot");
        assert_eq!(recovery.journal_records, 3, "the file still holds all three");
        assert_eq!(report.leases_expired, 0);
        let shard = &recovery.image.runs[0].shards[0];
        assert_eq!(shard.phase, ShardPhase::Done { worker: "old".into() }, "journal wins");
        assert_eq!(shard.steals, 1, "stale records were not double-applied");
    }

    #[test]
    fn empty_journal_with_stale_snapshot_restores_the_snapshot() {
        let dir = temp_dir("stale-snapshot");
        let image = StoreImage {
            seq: 9,
            runs: vec![RunImage {
                id: "run-2".into(),
                spec: spec(1),
                shards: vec![ShardImage {
                    phase: ShardPhase::Leased { worker: "gone".into() },
                    epoch: 4,
                    steals: 0,
                    sink: dir.join("run-2").join("shard-0.jsonl"),
                    rows_done: 1,
                }],
            }],
        };
        write_snapshot(&dir, &image).unwrap();
        // No journal file at all — compaction truncated it and the
        // crash hit before any further writes.
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.report.records_replayed, 0);
        assert_eq!(recovery.report.snapshot_seq, 9);
        assert!(recovery.report.recovered_state());
        let shard = &recovery.image.runs[0].shards[0];
        assert_eq!(shard.phase, ShardPhase::Pending, "the stale lease is expired");
        assert_eq!(shard.epoch, 5);
    }

    #[test]
    fn corrupt_snapshot_degrades_to_journal_only_boot() {
        let dir = temp_dir("corrupt-snapshot");
        std::fs::write(dir.join(SNAPSHOT_FILE), "{\"format\": \"who-knows/v9\"}").unwrap();
        journaled(&dir, &[Event::Submit { run: "run-1".into(), spec: spec(1) }]);
        let recovery = recover(&dir).unwrap();
        assert_eq!(recovery.image.runs.len(), 1, "the journal still rebuilds the run");
        assert!(
            recovery.report.diags.iter().any(|d| d.contains("corrupt snapshot")),
            "{:?}",
            recovery.report.diags
        );
    }

    #[test]
    fn unknown_run_in_journal_is_a_diag_not_a_crash() {
        let dir = temp_dir("unknown-run");
        journaled(
            &dir,
            &[Event::Complete { run: "run-404".into(), shard: 0, epoch: 1, worker: "w".into() }],
        );
        let recovery = recover(&dir).unwrap();
        assert!(recovery.image.runs.is_empty());
        assert!(recovery.report.diags.iter().any(|d| d.contains("run-404")));
    }
}
