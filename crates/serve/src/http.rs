//! A deliberately small HTTP/1.1 layer over `std::net` — hand-rolled
//! request parsing in the spirit of `uvllm-json`, because the service
//! needs exactly one verb shape (`METHOD /path` + optional JSON body)
//! and the build is dependency-free.
//!
//! Server side: [`read_request`] / [`respond`], one request per
//! connection (`Connection: close`), bounded head and body sizes.
//! Client side: [`request`], used by remote workers, the CLI client
//! subcommands and the test suite.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request/status line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request or response body.
const MAX_BODY: usize = 8 * 1024 * 1024;
/// Socket read timeout: a stalled peer must not pin a handler thread.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The request target as sent (path only; no scheme/host).
    pub target: String,
    /// Decoded body (empty when no `Content-Length`).
    pub body: String,
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Malformed request lines, oversized heads/bodies, connections closed
/// mid-request, and socket errors — all as displayable messages (the
/// server answers them with `400`).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(|e| format!("set timeout: {e}"))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(format!("request head exceeds {MAX_HEAD} bytes"));
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let parts: Vec<&str> = request_line.split(' ').collect();
    let [method, target, version] = parts.as_slice() else {
        return Err(format!("malformed request line '{request_line}'"));
    };
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(format!("malformed request line '{request_line}'"));
    }
    let (method, target) = (method.to_ascii_uppercase(), (*target).to_string());
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        // Strict header parsing: anything that isn't `Name: value`
        // gets a clean 400 now, not misinterpretation later.
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line '{line}'"));
        };
        let (name, value) = (name.trim(), value.trim());
        if name.eq_ignore_ascii_case("transfer-encoding") {
            // The service speaks Content-Length only. Accepting (and
            // then ignoring) chunked framing would leave the chunk
            // stream unread in the socket and desync the connection —
            // refuse it outright.
            return Err(format!("unsupported Transfer-Encoding '{value}' (send Content-Length)"));
        }
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize =
                value.parse().map_err(|_| format!("bad Content-Length '{value}'"))?;
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err("conflicting Content-Length headers".to_string());
            }
            content_length = Some(parsed);
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(format!("request body exceeds {MAX_BODY} bytes"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    Ok(Request { method, target, body })
}

/// Writes one response and flushes. The connection is `close`-marked;
/// the caller drops the stream afterwards.
///
/// # Errors
///
/// Socket write failures.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The canonical reason phrase for the handful of statuses the service
/// speaks.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// One client round trip: connect, send `method target` with `body`,
/// read the full response. Returns `(status, body)`.
///
/// # Errors
///
/// Connection, socket and malformed-response errors as messages.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).map_err(|e| format!("set timeout: {e}"))?;
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len(),
    )
    .and_then(|()| stream.write_all(body.as_bytes()))
    .and_then(|()| stream.flush())
    .map_err(|e| format!("send {method} {target}: {e}"))?;

    let mut raw = Vec::new();
    // The server closes after one response, so EOF delimits it.
    stream.read_to_end(&mut raw).map_err(|e| format!("read response: {e}"))?;
    let head_end =
        find_head_end(&raw).ok_or_else(|| "malformed response (no header end)".to_string())?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let status_line = head.split("\r\n").next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line '{status_line}'"))?;
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| "response body is not UTF-8".to_string())?;
    Ok((status, body))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot echo server: parse the request, answer with its shape.
    fn echo_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_request(&mut stream) {
                Ok(req) => {
                    let body = format!("{} {} [{}]", req.method, req.target, req.body);
                    respond(&mut stream, 200, "text/plain", &body).unwrap();
                }
                Err(e) => respond(&mut stream, 400, "text/plain", &e).unwrap(),
            }
        });
        (addr, handle)
    }

    #[test]
    fn request_round_trips_method_target_and_body() {
        let (addr, handle) = echo_server();
        let (status, body) =
            request(&addr.to_string(), "POST", "/lease", "{\"worker\":\"w1\"}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "POST /lease [{\"worker\":\"w1\"}]");
        handle.join().unwrap();
    }

    #[test]
    fn empty_body_round_trips() {
        let (addr, handle) = echo_server();
        let (status, body) = request(&addr.to_string(), "GET", "/metrics", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "GET /metrics []");
        handle.join().unwrap();
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        let (addr, handle) = echo_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        handle.join().unwrap();
    }

    /// Sends raw bytes, returns the status line + the parser's message.
    /// Read errors are tolerated: rejected requests leave unread bytes
    /// server-side, so its close may RST after the 400 was delivered.
    fn raw(bytes: &[u8]) -> String {
        let (addr, handle) = echo_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(bytes).unwrap();
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        handle.join().unwrap();
        text
    }

    #[test]
    fn extra_request_line_tokens_are_rejected() {
        let text = raw(b"GET /x HTTP/1.1 extra\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("malformed request line"), "{text}");
    }

    #[test]
    fn header_lines_without_a_colon_are_rejected() {
        let text = raw(b"GET /x HTTP/1.1\r\nthis is not a header\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("malformed header line"), "{text}");
    }

    #[test]
    fn chunked_transfer_encoding_is_refused_cleanly() {
        // A chunked request the parser pretended to accept would leave
        // the chunk stream unread and the connection wedged; it must be
        // a prompt, explicit 400 instead.
        let text = raw(
            b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        );
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("Transfer-Encoding"), "{text}");
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let text = raw(b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 9\r\n\r\nhi");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("conflicting Content-Length"), "{text}");
        // Duplicates that agree are harmless and accepted.
        let text = raw(b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi");
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    }

    #[test]
    fn non_numeric_content_length_is_rejected() {
        let text = raw(b"POST /jobs HTTP/1.1\r\nContent-Length: lots\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("bad Content-Length"), "{text}");
        // Negative and overflowing values fail the same parse.
        let text = raw(b"POST /jobs HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    #[test]
    fn oversized_declared_body_is_rejected_without_reading_it() {
        let text = raw(b"POST /jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
        assert!(text.contains("exceeds"), "{text}");
    }

    #[test]
    fn oversized_head_is_rejected() {
        // Asserted on the parser directly: the server stops reading
        // mid-head here, so a full HTTP round trip would race the
        // error response against the connection reset.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut bytes = b"GET /x HTTP/1.1\r\n".to_vec();
            // The terminator must sit far past the limit, or the head
            // completes before the bound check sees an oversized buffer.
            bytes.extend_from_slice(format!("X-Pad: {}\r\n", "y".repeat(MAX_HEAD * 3)).as_bytes());
            bytes.extend_from_slice(b"\r\n");
            let _ = stream.write_all(&bytes);
            stream // kept open until joined
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = read_request(&mut stream).unwrap_err();
        assert!(err.contains("head exceeds"), "{err}");
        let _ = writer.join();
    }

    #[test]
    fn reasons_cover_the_spoken_statuses() {
        for status in [200, 204, 400, 404, 405, 409, 410, 500] {
            assert_ne!(reason(status), "Unknown", "{status}");
        }
    }
}
