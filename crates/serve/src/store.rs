//! The leasable job store: submitted runs split into shards, shards
//! leased to workers under deadlines, expired leases reclaimed and
//! re-granted (work stealing).
//!
//! Epoch fencing makes stealing safe without distributed locks: every
//! grant carries the shard's current epoch, and heartbeat/complete
//! calls quoting a stale epoch are refused (`LeaseLost` → HTTP 409).
//! A `complete` with the *matching* epoch is accepted even past the
//! deadline — the rows are already on disk and byte-identical to what
//! any other worker would produce, so late completion loses nothing.

use crate::http;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};
use uvllm_campaign::MethodKind;
use uvllm_json::{s, Json};
use uvllm_sim::SimBackend;

/// Registry handles for the store (`serve.*`), resolved once.
#[derive(Debug)]
struct StoreMetrics {
    jobs_submitted: &'static uvllm_obs::Counter,
    leases_granted: &'static uvllm_obs::Counter,
    leases_expired: &'static uvllm_obs::Counter,
    leases_stolen: &'static uvllm_obs::Counter,
    heartbeats: &'static uvllm_obs::Counter,
}

fn metrics() -> &'static StoreMetrics {
    static METRICS: std::sync::OnceLock<StoreMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| StoreMetrics {
        jobs_submitted: uvllm_obs::registry().counter("serve.jobs_submitted"),
        leases_granted: uvllm_obs::registry().counter("serve.leases.granted"),
        leases_expired: uvllm_obs::registry().counter("serve.leases.expired"),
        leases_stolen: uvllm_obs::registry().counter("serve.leases.stolen"),
        heartbeats: uvllm_obs::registry().counter("serve.heartbeats"),
    })
}

/// What a submitted run evaluates — the wire form of the deterministic
/// subset of [`uvllm_campaign::CampaignConfig`]. Every field feeds the
/// row byte-identity contract, so the server hands the *same* spec to
/// every worker that leases one of the run's shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Benchmark instances to build.
    pub size: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Methods to evaluate on every instance.
    pub methods: Vec<MethodKind>,
    /// Simulation kernel.
    pub backend: SimBackend,
    /// Netlist optimization level (0–3).
    pub opt_level: u8,
    /// How many shards the job space is split into.
    pub shards: usize,
    /// Lease duration granted per shard.
    pub lease: Duration,
}

impl RunSpec {
    /// Decodes a submission body. Every member except `size` has a
    /// default; `seed` accepts a hex string (`"0x42"`) or a number —
    /// the hex-string form is canonical because f64 JSON numbers lose
    /// precision above 2^53.
    ///
    /// # Errors
    ///
    /// Names the offending member.
    pub fn from_json(json: &Json, default_lease: Duration) -> Result<RunSpec, String> {
        let size =
            json.get("size")
                .ok_or("submission missing member 'size'")?
                .as_u64()
                .ok_or("submission member 'size' must be a positive integer")? as usize;
        if size == 0 {
            return Err("submission member 'size' must be >= 1".to_string());
        }
        let seed = match json.get("seed") {
            None => 0xDA7A,
            Some(v) => parse_seed(v)?,
        };
        let methods = match json.get("methods") {
            None => MethodKind::ALL.to_vec(),
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or("submission member 'methods' must be an array of method labels")?;
                let mut methods = Vec::with_capacity(arr.len());
                for item in arr {
                    let label =
                        item.as_str().ok_or("submission member 'methods' must contain strings")?;
                    methods.push(
                        MethodKind::from_label(label)
                            .ok_or_else(|| format!("unknown method label '{label}'"))?,
                    );
                }
                if methods.is_empty() {
                    return Err("submission member 'methods' must not be empty".to_string());
                }
                methods
            }
        };
        let backend = match json.get("backend") {
            None => SimBackend::default(),
            Some(v) => {
                let label =
                    v.as_str().ok_or("submission member 'backend' must be a string label")?;
                SimBackend::from_label(label)
                    .ok_or_else(|| format!("unknown backend label '{label}'"))?
            }
        };
        let opt_level = match json.get("opt_level") {
            None => 0,
            Some(v) => {
                let n = v
                    .as_u64()
                    .filter(|&n| n <= 3)
                    .ok_or("submission member 'opt_level' must be an integer 0..=3")?;
                n as u8
            }
        };
        let shards = match json.get("shards") {
            None => 1,
            Some(v) => v
                .as_u64()
                .filter(|&n| n >= 1)
                .ok_or("submission member 'shards' must be a positive integer")?
                as usize,
        };
        let lease = match json.get("lease_ms") {
            None => default_lease,
            Some(v) => Duration::from_millis(
                v.as_u64().ok_or("submission member 'lease_ms' must be a positive integer")?,
            ),
        };
        Ok(RunSpec { size, seed, methods, backend, opt_level, shards, lease })
    }

    /// The wire form, round-trippable through [`RunSpec::from_json`].
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("size".to_string(), Json::Num(self.size as f64)),
            ("seed".to_string(), s(format!("0x{:X}", self.seed))),
            ("methods".to_string(), Json::Arr(self.methods.iter().map(|m| s(m.label())).collect())),
            ("backend".to_string(), s(self.backend.label())),
            ("opt_level".to_string(), Json::Num(self.opt_level as f64)),
            ("shards".to_string(), Json::Num(self.shards as f64)),
            ("lease_ms".to_string(), Json::Num(self.lease.as_millis() as f64)),
        ])
    }
}

fn parse_seed(v: &Json) -> Result<u64, String> {
    if let Some(text) = v.as_str() {
        let digits = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")).unwrap_or(text);
        return u64::from_str_radix(digits, 16)
            .map_err(|_| format!("submission member 'seed' has a bad hex value '{text}'"));
    }
    v.as_u64().ok_or_else(|| {
        "submission member 'seed' must be a hex string like \"0xDA7A\" or an integer".to_string()
    })
}

/// Where one shard stands in its lifecycle.
#[derive(Debug, Clone)]
enum ShardState {
    /// Never leased, or reclaimed and waiting for the next worker.
    Pending,
    /// Leased to `worker` until `deadline`; only calls quoting `epoch`
    /// touch it.
    Leased { worker: String, epoch: u64, deadline: Instant },
    /// Completed by `worker`.
    Done { worker: String },
}

#[derive(Debug)]
struct Shard {
    state: ShardState,
    /// The fencing token: bumped on every grant, so a reclaimed shard's
    /// previous holder can no longer heartbeat or complete it.
    epoch: u64,
    /// How many times an expired lease on this shard was re-granted.
    steals: u64,
    /// The JSONL sink every holder appends to. Append-only + resume
    /// protocol means a second holder continues where the corpse left
    /// off, skipping completed rows.
    sink: PathBuf,
}

#[derive(Debug)]
struct Run {
    id: String,
    spec: RunSpec,
    shards: Vec<Shard>,
}

/// One granted lease, everything a worker needs to run the shard.
#[derive(Debug, Clone)]
pub struct LeaseGrant {
    pub run: String,
    pub shard: usize,
    pub epoch: u64,
    /// True when this grant reclaimed an expired lease from another
    /// worker.
    pub stolen: bool,
    pub lease: Duration,
    pub sink: PathBuf,
    pub spec: RunSpec,
}

impl LeaseGrant {
    /// The wire form handed to workers.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("run".to_string(), s(self.run.clone())),
            ("shard".to_string(), Json::Num(self.shard as f64)),
            ("epoch".to_string(), Json::Num(self.epoch as f64)),
            ("stolen".to_string(), Json::Bool(self.stolen)),
            ("lease_ms".to_string(), Json::Num(self.lease.as_millis() as f64)),
            ("sink".to_string(), s(self.sink.display().to_string())),
            ("config".to_string(), self.spec.to_json()),
        ])
    }

    /// Decodes a grant on the worker side.
    ///
    /// # Errors
    ///
    /// Names the missing or malformed member.
    pub fn from_json(json: &Json) -> Result<LeaseGrant, String> {
        let run =
            json.get("run").and_then(Json::as_str).ok_or("grant missing member 'run'")?.to_string();
        let shard =
            json.get("shard").and_then(Json::as_u64).ok_or("grant missing member 'shard'")?
                as usize;
        let epoch =
            json.get("epoch").and_then(Json::as_u64).ok_or("grant missing member 'epoch'")?;
        let stolen = json.get("stolen").and_then(Json::as_bool).unwrap_or(false);
        let lease = Duration::from_millis(
            json.get("lease_ms").and_then(Json::as_u64).ok_or("grant missing member 'lease_ms'")?,
        );
        let sink = PathBuf::from(
            json.get("sink").and_then(Json::as_str).ok_or("grant missing member 'sink'")?,
        );
        let spec =
            RunSpec::from_json(json.get("config").ok_or("grant missing member 'config'")?, lease)?;
        Ok(LeaseGrant { run, shard, epoch, stolen, lease, sink, spec })
    }
}

/// What `POST /lease` answers.
#[derive(Debug)]
pub enum LeaseOutcome {
    /// Work to do.
    Granted(Box<LeaseGrant>),
    /// Nothing pending right now — poll again.
    Empty,
    /// The server is draining; workers should exit.
    Draining,
}

/// Why a heartbeat/complete was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// No such run id (HTTP 404).
    UnknownRun,
    /// Shard index out of range (HTTP 404).
    UnknownShard,
    /// The quoted epoch is stale: the lease expired and was re-granted,
    /// or the shard was completed by someone else (HTTP 409).
    LeaseLost,
}

/// A summary row for `GET /runs/<id>`.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    pub shard: usize,
    /// `"pending" | "leased" | "done"`.
    pub state: &'static str,
    /// Current or completing worker, if any.
    pub worker: Option<String>,
    pub steals: u64,
}

/// The resident store behind the HTTP surface. All mutation goes
/// through one mutex — the unit of work is a whole campaign shard, so
/// store contention is noise.
#[derive(Debug)]
pub struct JobStore {
    data_dir: PathBuf,
    default_lease: Duration,
    runs: Mutex<Vec<Run>>,
    draining: AtomicBool,
}

/// Process-wide run counter: parallel servers in one test binary must
/// not collide on per-run metric names or data directories.
static NEXT_RUN: AtomicU64 = AtomicU64::new(1);

impl JobStore {
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Run>> {
        self.runs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn new(data_dir: impl Into<PathBuf>, default_lease: Duration) -> JobStore {
        JobStore {
            data_dir: data_dir.into(),
            default_lease,
            runs: Mutex::new(Vec::new()),
            draining: AtomicBool::new(false),
        }
    }

    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    pub fn default_lease(&self) -> Duration {
        self.default_lease
    }

    /// Registers a run and creates its shard-sink directory. Returns
    /// the run id.
    ///
    /// # Errors
    ///
    /// Directory-creation failures.
    pub fn submit(&self, spec: RunSpec) -> std::io::Result<String> {
        let id = format!("run-{}", NEXT_RUN.fetch_add(1, Ordering::SeqCst));
        let dir = self.data_dir.join(&id);
        std::fs::create_dir_all(&dir)?;
        let shards = (0..spec.shards)
            .map(|i| Shard {
                state: ShardState::Pending,
                epoch: 0,
                steals: 0,
                sink: dir.join(format!("shard-{i}.jsonl")),
            })
            .collect();
        self.lock().push(Run { id: id.clone(), spec, shards });
        metrics().jobs_submitted.inc();
        Ok(id)
    }

    /// Grants the first available shard: pending ones first, then
    /// expired leases (reclaimed, epoch bumped, marked stolen).
    pub fn lease(&self, worker: &str) -> LeaseOutcome {
        if self.draining.load(Ordering::SeqCst) {
            return LeaseOutcome::Draining;
        }
        let now = Instant::now();
        let mut runs = self.lock();
        for run in runs.iter_mut() {
            for (index, shard) in run.shards.iter_mut().enumerate() {
                let stolen = match &shard.state {
                    ShardState::Pending => false,
                    ShardState::Leased { deadline, .. } if *deadline <= now => {
                        metrics().leases_expired.inc();
                        metrics().leases_stolen.inc();
                        shard.steals += 1;
                        true
                    }
                    _ => continue,
                };
                shard.epoch += 1;
                shard.state = ShardState::Leased {
                    worker: worker.to_string(),
                    epoch: shard.epoch,
                    deadline: now + run.spec.lease,
                };
                metrics().leases_granted.inc();
                return LeaseOutcome::Granted(Box::new(LeaseGrant {
                    run: run.id.clone(),
                    shard: index,
                    epoch: shard.epoch,
                    stolen,
                    lease: run.spec.lease,
                    sink: shard.sink.clone(),
                    spec: run.spec.clone(),
                }));
            }
        }
        LeaseOutcome::Empty
    }

    /// Extends a live lease's deadline.
    ///
    /// # Errors
    ///
    /// [`LeaseError`] for unknown runs/shards and stale epochs.
    pub fn heartbeat(&self, run: &str, shard: usize, epoch: u64) -> Result<(), LeaseError> {
        let now = Instant::now();
        let mut runs = self.lock();
        let run = runs.iter_mut().find(|r| r.id == run).ok_or(LeaseError::UnknownRun)?;
        let lease = run.spec.lease;
        let shard = run.shards.get_mut(shard).ok_or(LeaseError::UnknownShard)?;
        match &mut shard.state {
            ShardState::Leased { epoch: held, deadline, .. } if *held == epoch => {
                *deadline = now + lease;
                metrics().heartbeats.inc();
                Ok(())
            }
            _ => Err(LeaseError::LeaseLost),
        }
    }

    /// Marks a shard done. Accepted on a matching epoch even past the
    /// deadline — as long as nobody re-leased it, the rows on disk are
    /// complete and the late worker's work stands.
    ///
    /// # Errors
    ///
    /// [`LeaseError`] for unknown runs/shards and stale epochs.
    pub fn complete(&self, run: &str, shard: usize, epoch: u64) -> Result<(), LeaseError> {
        let mut runs = self.lock();
        let run = runs.iter_mut().find(|r| r.id == run).ok_or(LeaseError::UnknownRun)?;
        let shard = run.shards.get_mut(shard).ok_or(LeaseError::UnknownShard)?;
        match &shard.state {
            ShardState::Leased { epoch: held, worker, .. } if *held == epoch => {
                shard.state = ShardState::Done { worker: worker.clone() };
                Ok(())
            }
            _ => Err(LeaseError::LeaseLost),
        }
    }

    /// Stops granting leases; `POST /lease` answers `410 Gone`.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// True once no shard holds an unexpired lease — in-flight workers
    /// have either completed or run out their deadlines, so shutdown
    /// can proceed to the final aggregation pass.
    pub fn drained(&self) -> bool {
        let now = Instant::now();
        self.lock().iter().all(|run| {
            run.shards.iter().all(|shard| match &shard.state {
                ShardState::Leased { deadline, .. } => *deadline <= now,
                _ => true,
            })
        })
    }

    /// The spec a run was submitted with, if the run exists.
    pub fn spec(&self, run: &str) -> Option<RunSpec> {
        self.lock().iter().find(|r| r.id == run).map(|r| r.spec.clone())
    }

    /// Shard sink paths for a run, in shard order.
    pub fn sinks(&self, run: &str) -> Option<Vec<PathBuf>> {
        self.lock()
            .iter()
            .find(|r| r.id == run)
            .map(|r| r.shards.iter().map(|s| s.sink.clone()).collect())
    }

    /// All run ids, submission order.
    pub fn run_ids(&self) -> Vec<String> {
        self.lock().iter().map(|r| r.id.clone()).collect()
    }

    /// Per-shard status rows plus "all shards done".
    pub fn status(&self, run: &str) -> Option<(Vec<ShardStatus>, bool)> {
        let runs = self.lock();
        let run = runs.iter().find(|r| r.id == run)?;
        let rows: Vec<ShardStatus> = run
            .shards
            .iter()
            .enumerate()
            .map(|(shard, state)| {
                let (label, worker) = match &state.state {
                    ShardState::Pending => ("pending", None),
                    ShardState::Leased { worker, .. } => ("leased", Some(worker.clone())),
                    ShardState::Done { worker } => ("done", Some(worker.clone())),
                };
                ShardStatus { shard, state: label, worker, steals: state.steals }
            })
            .collect();
        let done = rows.iter().all(|r| r.state == "done");
        Some((rows, done))
    }
}

/// Client-side helper: one JSON round trip against a serve endpoint.
///
/// # Errors
///
/// Transport errors and non-JSON bodies, as messages naming the call.
pub fn post_json(addr: &str, path: &str, body: &Json) -> Result<(u16, Json), String> {
    let (status, text) = http::request(addr, "POST", path, &body.render())?;
    let json = if text.is_empty() {
        Json::Null
    } else {
        Json::parse(&text).map_err(|e| format!("POST {path}: bad response JSON: {e}"))?
    };
    Ok((status, json))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(shards: usize, lease: Duration) -> RunSpec {
        RunSpec {
            size: 2,
            seed: 0x42,
            methods: vec![MethodKind::Strider],
            backend: SimBackend::default(),
            opt_level: 0,
            shards,
            lease,
        }
    }

    fn store(lease: Duration) -> JobStore {
        let dir = std::env::temp_dir()
            .join(format!("uvllm-store-test-{}", NEXT_RUN.fetch_add(1, Ordering::SeqCst)));
        JobStore::new(dir, lease)
    }

    #[test]
    fn spec_json_round_trips_with_hex_seed() {
        let original = RunSpec {
            size: 331,
            // Above 2^53: the f64 number path would corrupt this.
            seed: 0xDEAD_BEEF_CAFE_F00D,
            methods: vec![MethodKind::Uvllm, MethodKind::Meic],
            backend: SimBackend::Compiled,
            opt_level: 2,
            shards: 4,
            lease: Duration::from_secs(30),
        };
        let json = original.to_json();
        assert!(json.render().contains("\"0xDEADBEEFCAFEF00D\""));
        let decoded = RunSpec::from_json(&json, Duration::from_secs(1)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn spec_defaults_and_errors() {
        let json = Json::parse("{\"size\": 4}").unwrap();
        let spec = RunSpec::from_json(&json, Duration::from_secs(7)).unwrap();
        assert_eq!(spec.size, 4);
        assert_eq!(spec.seed, 0xDA7A);
        assert_eq!(spec.methods, MethodKind::ALL.to_vec());
        assert_eq!(spec.shards, 1);
        assert_eq!(spec.lease, Duration::from_secs(7));

        let err = |text: &str| {
            RunSpec::from_json(&Json::parse(text).unwrap(), Duration::from_secs(1)).unwrap_err()
        };
        assert!(err("{}").contains("'size'"));
        assert!(err("{\"size\": 1, \"methods\": [\"nope\"]}").contains("'nope'"));
        assert!(err("{\"size\": 1, \"backend\": \"warp\"}").contains("'warp'"));
        assert!(err("{\"size\": 1, \"opt_level\": 9}").contains("'opt_level'"));
        assert!(err("{\"size\": 1, \"seed\": \"0xZZ\"}").contains("'0xZZ'"));
    }

    #[test]
    fn leases_grant_heartbeat_and_complete() {
        let store = store(Duration::from_secs(60));
        let run = store.submit(spec(2, Duration::from_secs(60))).unwrap();
        let grant_a = match store.lease("a") {
            LeaseOutcome::Granted(g) => g,
            other => panic!("expected grant, got {other:?}"),
        };
        assert_eq!(grant_a.run, run);
        assert_eq!(grant_a.shard, 0);
        assert!(!grant_a.stolen);
        let grant_b = match store.lease("b") {
            LeaseOutcome::Granted(g) => g,
            other => panic!("expected grant, got {other:?}"),
        };
        assert_eq!(grant_b.shard, 1);
        assert!(matches!(store.lease("c"), LeaseOutcome::Empty));

        store.heartbeat(&run, 0, grant_a.epoch).unwrap();
        store.complete(&run, 0, grant_a.epoch).unwrap();
        store.complete(&run, 1, grant_b.epoch).unwrap();
        let (rows, done) = store.status(&run).unwrap();
        assert!(done);
        assert_eq!(rows[0].worker.as_deref(), Some("a"));
        assert_eq!(rows[1].worker.as_deref(), Some("b"));

        assert_eq!(store.heartbeat("run-none", 0, 1), Err(LeaseError::UnknownRun));
        assert_eq!(store.heartbeat(&run, 9, 1), Err(LeaseError::UnknownShard));
        assert_eq!(store.complete(&run, 0, grant_a.epoch), Err(LeaseError::LeaseLost));
    }

    #[test]
    fn expired_leases_are_stolen_and_fenced() {
        let store = store(Duration::from_millis(20));
        let run = store.submit(spec(1, Duration::from_millis(20))).unwrap();
        let dead = match store.lease("dead") {
            LeaseOutcome::Granted(g) => g,
            other => panic!("expected grant, got {other:?}"),
        };
        // Not yet expired: nothing to steal.
        assert!(matches!(store.lease("thief"), LeaseOutcome::Empty));
        std::thread::sleep(Duration::from_millis(30));
        let stolen = match store.lease("thief") {
            LeaseOutcome::Granted(g) => g,
            other => panic!("expected steal, got {other:?}"),
        };
        assert!(stolen.stolen);
        assert_eq!(stolen.shard, dead.shard);
        assert!(stolen.epoch > dead.epoch);
        assert_eq!(stolen.sink, dead.sink, "the thief resumes the same sink");
        // The corpse's epoch is fenced out of both verbs.
        assert_eq!(store.heartbeat(&run, 0, dead.epoch), Err(LeaseError::LeaseLost));
        assert_eq!(store.complete(&run, 0, dead.epoch), Err(LeaseError::LeaseLost));
        // The thief finishes normally.
        store.complete(&run, 0, stolen.epoch).unwrap();
        let (rows, done) = store.status(&run).unwrap();
        assert!(done);
        assert_eq!(rows[0].steals, 1);
        assert_eq!(rows[0].worker.as_deref(), Some("thief"));
    }

    #[test]
    fn late_complete_on_matching_epoch_is_accepted() {
        let store = store(Duration::from_millis(10));
        let run = store.submit(spec(1, Duration::from_millis(10))).unwrap();
        let grant = match store.lease("slow") {
            LeaseOutcome::Granted(g) => g,
            other => panic!("expected grant, got {other:?}"),
        };
        std::thread::sleep(Duration::from_millis(20));
        // Expired but not re-leased: the work is done, accept it.
        store.complete(&run, 0, grant.epoch).unwrap();
        let (_, done) = store.status(&run).unwrap();
        assert!(done);
    }

    #[test]
    fn drain_refuses_new_leases_and_reports_quiescence() {
        let store = store(Duration::from_millis(20));
        let run = store.submit(spec(1, Duration::from_millis(20))).unwrap();
        let grant = match store.lease("w") {
            LeaseOutcome::Granted(g) => g,
            other => panic!("expected grant, got {other:?}"),
        };
        store.drain();
        assert!(matches!(store.lease("w2"), LeaseOutcome::Draining));
        assert!(!store.drained(), "a live lease blocks quiescence");
        store.complete(&run, 0, grant.epoch).unwrap();
        assert!(store.drained());
    }

    #[test]
    fn grant_json_round_trips() {
        let grant = LeaseGrant {
            run: "run-9".to_string(),
            shard: 1,
            epoch: 3,
            stolen: true,
            lease: Duration::from_millis(750),
            sink: PathBuf::from("/tmp/run-9/shard-1.jsonl"),
            spec: spec(2, Duration::from_millis(750)),
        };
        let decoded = LeaseGrant::from_json(&grant.to_json()).unwrap();
        assert_eq!(decoded.run, grant.run);
        assert_eq!(decoded.shard, grant.shard);
        assert_eq!(decoded.epoch, grant.epoch);
        assert!(decoded.stolen);
        assert_eq!(decoded.lease, grant.lease);
        assert_eq!(decoded.sink, grant.sink);
        assert_eq!(decoded.spec, grant.spec);
    }
}
