//! The leasable job store: submitted runs split into shards, shards
//! leased to workers under deadlines, expired leases reclaimed and
//! re-granted (work stealing).
//!
//! Epoch fencing makes stealing safe without distributed locks: every
//! grant carries the shard's current epoch, and heartbeat/complete
//! calls quoting a stale epoch are refused (`LeaseLost` → HTTP 409).
//! A `complete` with the *matching* epoch is accepted even past the
//! deadline — the rows are already on disk and byte-identical to what
//! any other worker would produce, so late completion loses nothing.
//!
//! The store is write-ahead journaled: every transition is appended to
//! `data_dir/journal.jsonl` (see [`crate::journal`]) *before* the
//! in-memory state mutates, and the journal is periodically compacted
//! into `store.snapshot.json`. [`JobStore::open`] replays both on
//! boot (see [`crate::recovery`]), so runs survive server crashes the
//! same way they already survive worker crashes. The journal lives
//! inside the state mutex — journal order *is* state-mutation order.
//!
//! Leases are granted round-robin across active runs: the scan starts
//! at the run after the previously granted one, so two concurrent
//! campaigns interleave rather than the first submitted starving the
//! second.

use crate::http;
use crate::journal::{Event, Journal, JournalConfig};
use crate::recovery::{self, RecoveryReport, RunImage, ShardImage, ShardPhase, StoreImage};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};
use uvllm_campaign::MethodKind;
use uvllm_json::{s, Json};
use uvllm_sim::SimBackend;

/// Registry handles for the store (`serve.*`), resolved once.
#[derive(Debug)]
struct StoreMetrics {
    jobs_submitted: &'static uvllm_obs::Counter,
    leases_granted: &'static uvllm_obs::Counter,
    leases_expired: &'static uvllm_obs::Counter,
    leases_stolen: &'static uvllm_obs::Counter,
    heartbeats: &'static uvllm_obs::Counter,
}

fn metrics() -> &'static StoreMetrics {
    static METRICS: std::sync::OnceLock<StoreMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| StoreMetrics {
        jobs_submitted: uvllm_obs::registry().counter("serve.jobs_submitted"),
        leases_granted: uvllm_obs::registry().counter("serve.leases.granted"),
        leases_expired: uvllm_obs::registry().counter("serve.leases.expired"),
        leases_stolen: uvllm_obs::registry().counter("serve.leases.stolen"),
        heartbeats: uvllm_obs::registry().counter("serve.heartbeats"),
    })
}

/// What a submitted run evaluates — the wire form of the deterministic
/// subset of [`uvllm_campaign::CampaignConfig`]. Every field feeds the
/// row byte-identity contract, so the server hands the *same* spec to
/// every worker that leases one of the run's shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Benchmark instances to build.
    pub size: usize,
    /// Dataset seed.
    pub seed: u64,
    /// Methods to evaluate on every instance.
    pub methods: Vec<MethodKind>,
    /// Simulation kernel.
    pub backend: SimBackend,
    /// Netlist optimization level (0–3).
    pub opt_level: u8,
    /// How many shards the job space is split into.
    pub shards: usize,
    /// Lease duration granted per shard.
    pub lease: Duration,
}

impl RunSpec {
    /// Decodes a submission body. Every member except `size` has a
    /// default; `seed` accepts a hex string (`"0x42"`) or a number —
    /// the hex-string form is canonical because f64 JSON numbers lose
    /// precision above 2^53.
    ///
    /// # Errors
    ///
    /// Names the offending member.
    pub fn from_json(json: &Json, default_lease: Duration) -> Result<RunSpec, String> {
        let size =
            json.get("size")
                .ok_or("submission missing member 'size'")?
                .as_u64()
                .ok_or("submission member 'size' must be a positive integer")? as usize;
        if size == 0 {
            return Err("submission member 'size' must be >= 1".to_string());
        }
        let seed = match json.get("seed") {
            None => 0xDA7A,
            Some(v) => parse_seed(v)?,
        };
        let methods = match json.get("methods") {
            None => MethodKind::ALL.to_vec(),
            Some(v) => {
                let arr = v
                    .as_array()
                    .ok_or("submission member 'methods' must be an array of method labels")?;
                let mut methods = Vec::with_capacity(arr.len());
                for item in arr {
                    let label =
                        item.as_str().ok_or("submission member 'methods' must contain strings")?;
                    methods.push(
                        MethodKind::from_label(label)
                            .ok_or_else(|| format!("unknown method label '{label}'"))?,
                    );
                }
                if methods.is_empty() {
                    return Err("submission member 'methods' must not be empty".to_string());
                }
                methods
            }
        };
        let backend = match json.get("backend") {
            None => SimBackend::default(),
            Some(v) => {
                let label =
                    v.as_str().ok_or("submission member 'backend' must be a string label")?;
                SimBackend::from_label(label)
                    .ok_or_else(|| format!("unknown backend label '{label}'"))?
            }
        };
        let opt_level = match json.get("opt_level") {
            None => 0,
            Some(v) => {
                let n = v
                    .as_u64()
                    .filter(|&n| n <= 3)
                    .ok_or("submission member 'opt_level' must be an integer 0..=3")?;
                n as u8
            }
        };
        let shards = match json.get("shards") {
            None => 1,
            Some(v) => v
                .as_u64()
                .filter(|&n| n >= 1)
                .ok_or("submission member 'shards' must be a positive integer")?
                as usize,
        };
        let lease = match json.get("lease_ms") {
            None => default_lease,
            Some(v) => Duration::from_millis(
                v.as_u64().ok_or("submission member 'lease_ms' must be a positive integer")?,
            ),
        };
        Ok(RunSpec { size, seed, methods, backend, opt_level, shards, lease })
    }

    /// The wire form, round-trippable through [`RunSpec::from_json`].
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("size".to_string(), Json::Num(self.size as f64)),
            ("seed".to_string(), s(format!("0x{:X}", self.seed))),
            ("methods".to_string(), Json::Arr(self.methods.iter().map(|m| s(m.label())).collect())),
            ("backend".to_string(), s(self.backend.label())),
            ("opt_level".to_string(), Json::Num(self.opt_level as f64)),
            ("shards".to_string(), Json::Num(self.shards as f64)),
            ("lease_ms".to_string(), Json::Num(self.lease.as_millis() as f64)),
        ])
    }
}

fn parse_seed(v: &Json) -> Result<u64, String> {
    if let Some(text) = v.as_str() {
        let digits = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")).unwrap_or(text);
        return u64::from_str_radix(digits, 16)
            .map_err(|_| format!("submission member 'seed' has a bad hex value '{text}'"));
    }
    v.as_u64().ok_or_else(|| {
        "submission member 'seed' must be a hex string like \"0xDA7A\" or an integer".to_string()
    })
}

/// Where one shard stands in its lifecycle.
#[derive(Debug, Clone)]
enum ShardState {
    /// Never leased, or reclaimed and waiting for the next worker.
    Pending,
    /// Leased to `worker` until `deadline`; only calls quoting `epoch`
    /// touch it.
    Leased { worker: String, epoch: u64, deadline: Instant },
    /// Completed by `worker`.
    Done { worker: String },
}

#[derive(Debug)]
struct Shard {
    state: ShardState,
    /// The fencing token: bumped on every grant, so a reclaimed shard's
    /// previous holder can no longer heartbeat or complete it.
    epoch: u64,
    /// How many times an expired lease on this shard was re-granted.
    steals: u64,
    /// The JSONL sink every holder appends to. Append-only + resume
    /// protocol means a second holder continues where the corpse left
    /// off, skipping completed rows.
    sink: PathBuf,
    /// Last worker-pushed progress (heartbeat `rows_done`) — fresher
    /// than the aggregator's sink poll, purely informational.
    rows_done: u64,
}

#[derive(Debug)]
struct Run {
    id: String,
    spec: RunSpec,
    shards: Vec<Shard>,
}

impl Run {
    /// Rehydrates a recovered run. Recovery has already expired every
    /// lease, so a leased image phase cannot occur; map it to pending
    /// defensively rather than trusting a deadline from a dead process.
    fn from_image(image: RunImage) -> Run {
        let shards = image
            .shards
            .into_iter()
            .map(|shard| Shard {
                state: match shard.phase {
                    ShardPhase::Pending | ShardPhase::Leased { .. } => ShardState::Pending,
                    ShardPhase::Done { worker } => ShardState::Done { worker },
                },
                epoch: shard.epoch,
                steals: shard.steals,
                sink: shard.sink,
                rows_done: shard.rows_done,
            })
            .collect();
        Run { id: image.id, spec: image.spec, shards }
    }

    fn to_image(&self) -> RunImage {
        let shards = self
            .shards
            .iter()
            .map(|shard| ShardImage {
                phase: match &shard.state {
                    ShardState::Pending => ShardPhase::Pending,
                    ShardState::Leased { worker, .. } => {
                        ShardPhase::Leased { worker: worker.clone() }
                    }
                    ShardState::Done { worker } => ShardPhase::Done { worker: worker.clone() },
                },
                epoch: shard.epoch,
                steals: shard.steals,
                sink: shard.sink.clone(),
                rows_done: shard.rows_done,
            })
            .collect();
        RunImage { id: self.id.clone(), spec: self.spec.clone(), shards }
    }
}

/// One granted lease, everything a worker needs to run the shard.
#[derive(Debug, Clone)]
pub struct LeaseGrant {
    pub run: String,
    pub shard: usize,
    pub epoch: u64,
    /// True when this grant reclaimed an expired lease from another
    /// worker.
    pub stolen: bool,
    pub lease: Duration,
    pub sink: PathBuf,
    pub spec: RunSpec,
}

impl LeaseGrant {
    /// The wire form handed to workers.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("run".to_string(), s(self.run.clone())),
            ("shard".to_string(), Json::Num(self.shard as f64)),
            ("epoch".to_string(), Json::Num(self.epoch as f64)),
            ("stolen".to_string(), Json::Bool(self.stolen)),
            ("lease_ms".to_string(), Json::Num(self.lease.as_millis() as f64)),
            ("sink".to_string(), s(self.sink.display().to_string())),
            ("config".to_string(), self.spec.to_json()),
        ])
    }

    /// Decodes a grant on the worker side.
    ///
    /// # Errors
    ///
    /// Names the missing or malformed member.
    pub fn from_json(json: &Json) -> Result<LeaseGrant, String> {
        let run =
            json.get("run").and_then(Json::as_str).ok_or("grant missing member 'run'")?.to_string();
        let shard =
            json.get("shard").and_then(Json::as_u64).ok_or("grant missing member 'shard'")?
                as usize;
        let epoch =
            json.get("epoch").and_then(Json::as_u64).ok_or("grant missing member 'epoch'")?;
        let stolen = json.get("stolen").and_then(Json::as_bool).unwrap_or(false);
        let lease = Duration::from_millis(
            json.get("lease_ms").and_then(Json::as_u64).ok_or("grant missing member 'lease_ms'")?,
        );
        let sink = PathBuf::from(
            json.get("sink").and_then(Json::as_str).ok_or("grant missing member 'sink'")?,
        );
        let spec =
            RunSpec::from_json(json.get("config").ok_or("grant missing member 'config'")?, lease)?;
        Ok(LeaseGrant { run, shard, epoch, stolen, lease, sink, spec })
    }
}

/// What `POST /lease` answers.
#[derive(Debug)]
pub enum LeaseOutcome {
    /// Work to do.
    Granted(Box<LeaseGrant>),
    /// Nothing pending right now — poll again.
    Empty,
    /// The server is draining; workers should exit.
    Draining,
    /// The journal append failed, so no lease was granted — the state
    /// transition would not have survived a crash (HTTP 500).
    Error(String),
}

/// Why a heartbeat/complete was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// No such run id (HTTP 404).
    UnknownRun,
    /// Shard index out of range (HTTP 404).
    UnknownShard,
    /// The quoted epoch is stale: the lease expired and was re-granted,
    /// or the shard was completed by someone else (HTTP 409).
    LeaseLost,
    /// The journal append failed, so the transition was refused (HTTP
    /// 500). Write-ahead discipline: never mutate what you cannot
    /// replay.
    Internal(String),
}

/// A summary row for `GET /runs/<id>`.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    pub shard: usize,
    /// `"pending" | "leased" | "done"`.
    pub state: &'static str,
    /// Current or completing worker, if any.
    pub worker: Option<String>,
    pub steals: u64,
    /// Last worker-pushed progress for this shard.
    pub rows_done: u64,
}

/// Everything under the store mutex. The journal lives here so record
/// order is exactly state-mutation order — no torn interleavings.
#[derive(Debug)]
struct StoreInner {
    runs: Vec<Run>,
    journal: Journal,
    /// Round-robin cursor: index of the run the next lease scan starts
    /// at, advanced past each run that grants.
    cursor: usize,
}

/// The resident store behind the HTTP surface. All mutation goes
/// through one mutex — the unit of work is a whole campaign shard, so
/// store contention is noise.
#[derive(Debug)]
pub struct JobStore {
    data_dir: PathBuf,
    default_lease: Duration,
    inner: Mutex<StoreInner>,
    draining: AtomicBool,
}

/// Process-wide run counter: parallel servers in one test binary must
/// not collide on per-run metric names or data directories.
static NEXT_RUN: AtomicU64 = AtomicU64::new(1);

impl JobStore {
    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens the store on `data_dir`, recovering whatever a previous
    /// process left there: snapshot + journal replay, sink-backed runs
    /// rehydrated, in-flight leases expired with bumped epochs. A
    /// fresh directory recovers to an empty store with an empty
    /// report.
    ///
    /// # Errors
    ///
    /// Directory-creation and journal I/O failures (corruption is a
    /// report diagnostic, not an error).
    pub fn open(
        data_dir: impl Into<PathBuf>,
        default_lease: Duration,
        config: JournalConfig,
    ) -> std::io::Result<(JobStore, RecoveryReport)> {
        let data_dir = data_dir.into();
        std::fs::create_dir_all(&data_dir)?;
        let recovered = recovery::recover(&data_dir)?;
        // Run ids must clear every recovered id; the counter is
        // process-global, so only ratchet it forward.
        NEXT_RUN.fetch_max(recovered.image.max_run_number() + 1, Ordering::SeqCst);
        let journal =
            Journal::open(&data_dir, config, recovered.image.seq + 1, recovered.journal_records)?;
        let runs = recovered.image.runs.into_iter().map(Run::from_image).collect();
        let store = JobStore {
            data_dir,
            default_lease,
            inner: Mutex::new(StoreInner { runs, journal, cursor: 0 }),
            draining: AtomicBool::new(false),
        };
        Ok((store, recovered.report))
    }

    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    pub fn default_lease(&self) -> Duration {
        self.default_lease
    }

    /// Compacts when the journal has grown past its threshold: write
    /// the full image as `store.snapshot.json`, then truncate the
    /// journal. Called with the lock held, after a successful append.
    /// A failed compaction is non-fatal — the journal just keeps
    /// growing and the next transition retries.
    fn maybe_compact(inner: &mut StoreInner, data_dir: &Path) {
        if !inner.journal.wants_compaction() {
            return;
        }
        let image = StoreImage {
            seq: inner.journal.next_seq() - 1,
            runs: inner.runs.iter().map(Run::to_image).collect(),
        };
        if let Err(e) = recovery::write_snapshot(data_dir, &image) {
            eprintln!("serve: snapshot write failed ({e}); journal keeps growing");
            return;
        }
        if let Err(e) = inner.journal.truncate() {
            eprintln!("serve: journal truncate after snapshot failed ({e})");
        }
    }

    /// Registers a run and creates its shard-sink directory. Returns
    /// the run id.
    ///
    /// # Errors
    ///
    /// Directory-creation and journal failures.
    pub fn submit(&self, spec: RunSpec) -> std::io::Result<String> {
        let id = format!("run-{}", NEXT_RUN.fetch_add(1, Ordering::SeqCst));
        let dir = self.data_dir.join(&id);
        std::fs::create_dir_all(&dir)?;
        let shards = (0..spec.shards)
            .map(|i| Shard {
                state: ShardState::Pending,
                epoch: 0,
                steals: 0,
                sink: dir.join(format!("shard-{i}.jsonl")),
                rows_done: 0,
            })
            .collect();
        let mut inner = self.lock();
        inner.journal.append(&Event::Submit { run: id.clone(), spec: spec.clone() })?;
        inner.runs.push(Run { id: id.clone(), spec, shards });
        Self::maybe_compact(&mut inner, &self.data_dir);
        drop(inner);
        metrics().jobs_submitted.inc();
        Ok(id)
    }

    /// Grants an available shard, scanning runs round-robin from the
    /// cursor so concurrent runs interleave: pending shards first
    /// within a run, then expired leases (reclaimed, epoch bumped,
    /// marked stolen).
    pub fn lease(&self, worker: &str) -> LeaseOutcome {
        if self.draining.load(Ordering::SeqCst) {
            return LeaseOutcome::Draining;
        }
        let now = Instant::now();
        let mut guard = self.lock();
        let inner = &mut *guard;
        let count = inner.runs.len();
        for offset in 0..count {
            let run_index = (inner.cursor + offset) % count;
            let run = &inner.runs[run_index];
            let candidate =
                run.shards.iter().enumerate().find_map(|(i, shard)| match &shard.state {
                    ShardState::Pending => Some((i, false)),
                    ShardState::Leased { deadline, .. } if *deadline <= now => Some((i, true)),
                    _ => None,
                });
            let Some((shard_index, stolen)) = candidate else { continue };
            let epoch = run.shards[shard_index].epoch + 1;
            let event = Event::Lease {
                run: run.id.clone(),
                shard: shard_index,
                epoch,
                worker: worker.to_string(),
                stolen,
            };
            if let Err(e) = inner.journal.append(&event) {
                return LeaseOutcome::Error(format!("journal append failed: {e}"));
            }
            let run = &mut inner.runs[run_index];
            let shard = &mut run.shards[shard_index];
            if stolen {
                metrics().leases_expired.inc();
                metrics().leases_stolen.inc();
                shard.steals += 1;
            }
            shard.epoch = epoch;
            shard.state = ShardState::Leased {
                worker: worker.to_string(),
                epoch,
                deadline: now + run.spec.lease,
            };
            metrics().leases_granted.inc();
            let grant = LeaseGrant {
                run: run.id.clone(),
                shard: shard_index,
                epoch,
                stolen,
                lease: run.spec.lease,
                sink: shard.sink.clone(),
                spec: run.spec.clone(),
            };
            inner.cursor = (run_index + 1) % count;
            Self::maybe_compact(inner, &self.data_dir);
            return LeaseOutcome::Granted(Box::new(grant));
        }
        LeaseOutcome::Empty
    }

    /// Extends a live lease's deadline and records the worker's pushed
    /// progress (`rows_done`).
    ///
    /// # Errors
    ///
    /// [`LeaseError`] for unknown runs/shards, stale epochs, and
    /// journal failures.
    pub fn heartbeat(
        &self,
        run: &str,
        shard: usize,
        epoch: u64,
        rows_done: u64,
    ) -> Result<(), LeaseError> {
        let now = Instant::now();
        let mut guard = self.lock();
        let inner = &mut *guard;
        let index = inner.runs.iter().position(|r| r.id == run).ok_or(LeaseError::UnknownRun)?;
        let lease = inner.runs[index].spec.lease;
        match inner.runs[index].shards.get(shard).ok_or(LeaseError::UnknownShard)?.state {
            ShardState::Leased { epoch: held, .. } if held == epoch => {}
            _ => return Err(LeaseError::LeaseLost),
        }
        inner
            .journal
            .append(&Event::Heartbeat { run: run.to_string(), shard, epoch, rows_done })
            .map_err(|e| LeaseError::Internal(format!("journal append failed: {e}")))?;
        let state = &mut inner.runs[index].shards[shard];
        if let ShardState::Leased { deadline, .. } = &mut state.state {
            *deadline = now + lease;
        }
        state.rows_done = rows_done;
        Self::maybe_compact(inner, &self.data_dir);
        metrics().heartbeats.inc();
        Ok(())
    }

    /// Marks a shard done. Accepted on a matching epoch even past the
    /// deadline — as long as nobody re-leased it, the rows on disk are
    /// complete and the late worker's work stands. When the last shard
    /// completes, a `finish` record is journaled for the audit trail.
    ///
    /// # Errors
    ///
    /// [`LeaseError`] for unknown runs/shards, stale epochs, and
    /// journal failures.
    pub fn complete(&self, run: &str, shard: usize, epoch: u64) -> Result<(), LeaseError> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        let index = inner.runs.iter().position(|r| r.id == run).ok_or(LeaseError::UnknownRun)?;
        let worker =
            match &inner.runs[index].shards.get(shard).ok_or(LeaseError::UnknownShard)?.state {
                ShardState::Leased { epoch: held, worker, .. } if *held == epoch => worker.clone(),
                _ => return Err(LeaseError::LeaseLost),
            };
        inner
            .journal
            .append(&Event::Complete { run: run.to_string(), shard, epoch, worker: worker.clone() })
            .map_err(|e| LeaseError::Internal(format!("journal append failed: {e}")))?;
        inner.runs[index].shards[shard].state = ShardState::Done { worker };
        if inner.runs[index].shards.iter().all(|s| matches!(s.state, ShardState::Done { .. })) {
            // Derived state; losing this append loses only an audit
            // record, so it doesn't fail the complete.
            let _ = inner.journal.append(&Event::Finish { run: run.to_string() });
        }
        Self::maybe_compact(inner, &self.data_dir);
        Ok(())
    }

    /// Stops granting leases; `POST /lease` answers `410 Gone`.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// True once no shard holds an unexpired lease — in-flight workers
    /// have either completed or run out their deadlines, so shutdown
    /// can proceed to the final aggregation pass.
    pub fn drained(&self) -> bool {
        let now = Instant::now();
        self.lock().runs.iter().all(|run| {
            run.shards.iter().all(|shard| match &shard.state {
                ShardState::Leased { deadline, .. } => *deadline <= now,
                _ => true,
            })
        })
    }

    /// The spec a run was submitted with, if the run exists.
    pub fn spec(&self, run: &str) -> Option<RunSpec> {
        self.lock().runs.iter().find(|r| r.id == run).map(|r| r.spec.clone())
    }

    /// Shard sink paths for a run, in shard order.
    pub fn sinks(&self, run: &str) -> Option<Vec<PathBuf>> {
        self.lock()
            .runs
            .iter()
            .find(|r| r.id == run)
            .map(|r| r.shards.iter().map(|s| s.sink.clone()).collect())
    }

    /// All run ids, submission order.
    pub fn run_ids(&self) -> Vec<String> {
        self.lock().runs.iter().map(|r| r.id.clone()).collect()
    }

    /// Per-shard status rows plus "all shards done".
    pub fn status(&self, run: &str) -> Option<(Vec<ShardStatus>, bool)> {
        let inner = self.lock();
        let run = inner.runs.iter().find(|r| r.id == run)?;
        let rows: Vec<ShardStatus> = run
            .shards
            .iter()
            .enumerate()
            .map(|(shard, state)| {
                let (label, worker) = match &state.state {
                    ShardState::Pending => ("pending", None),
                    ShardState::Leased { worker, .. } => ("leased", Some(worker.clone())),
                    ShardState::Done { worker } => ("done", Some(worker.clone())),
                };
                ShardStatus {
                    shard,
                    state: label,
                    worker,
                    steals: state.steals,
                    rows_done: state.rows_done,
                }
            })
            .collect();
        let done = rows.iter().all(|r| r.state == "done");
        Some((rows, done))
    }
}

/// Client-side helper: one JSON round trip against a serve endpoint.
///
/// # Errors
///
/// Transport errors only, as messages naming the call.
pub fn post_json(addr: &str, path: &str, body: &Json) -> Result<(u16, Json), String> {
    let (status, text) = http::request(addr, "POST", path, &body.render())?;
    // Error statuses carry text/plain diagnostics, not JSON — the
    // status code is the protocol, so an unparseable body degrades to
    // its raw text instead of masquerading as a transport failure.
    let json =
        if text.is_empty() { Json::Null } else { Json::parse(&text).unwrap_or(Json::Str(text)) };
    Ok((status, json))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JOURNAL_FILE;
    use crate::recovery::SNAPSHOT_FILE;

    fn spec(shards: usize, lease: Duration) -> RunSpec {
        RunSpec {
            size: 2,
            seed: 0x42,
            methods: vec![MethodKind::Strider],
            backend: SimBackend::default(),
            opt_level: 0,
            shards,
            lease,
        }
    }

    fn store_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("uvllm-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_at(dir: &Path, lease: Duration) -> (JobStore, RecoveryReport) {
        JobStore::open(dir, lease, JournalConfig::default()).unwrap()
    }

    fn store(name: &str, lease: Duration) -> JobStore {
        store_at(&store_dir(name), lease).0
    }

    fn grant(store: &JobStore, worker: &str) -> LeaseGrant {
        match store.lease(worker) {
            LeaseOutcome::Granted(g) => *g,
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    fn spec_json_round_trips_with_hex_seed() {
        let original = RunSpec {
            size: 331,
            // Above 2^53: the f64 number path would corrupt this.
            seed: 0xDEAD_BEEF_CAFE_F00D,
            methods: vec![MethodKind::Uvllm, MethodKind::Meic],
            backend: SimBackend::Compiled,
            opt_level: 2,
            shards: 4,
            lease: Duration::from_secs(30),
        };
        let json = original.to_json();
        assert!(json.render().contains("\"0xDEADBEEFCAFEF00D\""));
        let decoded = RunSpec::from_json(&json, Duration::from_secs(1)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn spec_defaults_and_errors() {
        let json = Json::parse("{\"size\": 4}").unwrap();
        let spec = RunSpec::from_json(&json, Duration::from_secs(7)).unwrap();
        assert_eq!(spec.size, 4);
        assert_eq!(spec.seed, 0xDA7A);
        assert_eq!(spec.methods, MethodKind::ALL.to_vec());
        assert_eq!(spec.shards, 1);
        assert_eq!(spec.lease, Duration::from_secs(7));

        let err = |text: &str| {
            RunSpec::from_json(&Json::parse(text).unwrap(), Duration::from_secs(1)).unwrap_err()
        };
        assert!(err("{}").contains("'size'"));
        assert!(err("{\"size\": 1, \"methods\": [\"nope\"]}").contains("'nope'"));
        assert!(err("{\"size\": 1, \"backend\": \"warp\"}").contains("'warp'"));
        assert!(err("{\"size\": 1, \"opt_level\": 9}").contains("'opt_level'"));
        assert!(err("{\"size\": 1, \"seed\": \"0xZZ\"}").contains("'0xZZ'"));
    }

    #[test]
    fn leases_grant_heartbeat_and_complete() {
        let store = store("basic", Duration::from_secs(60));
        let run = store.submit(spec(2, Duration::from_secs(60))).unwrap();
        let grant_a = grant(&store, "a");
        assert_eq!(grant_a.run, run);
        assert_eq!(grant_a.shard, 0);
        assert!(!grant_a.stolen);
        let grant_b = grant(&store, "b");
        assert_eq!(grant_b.shard, 1);
        assert!(matches!(store.lease("c"), LeaseOutcome::Empty));

        store.heartbeat(&run, 0, grant_a.epoch, 1).unwrap();
        store.complete(&run, 0, grant_a.epoch).unwrap();
        store.complete(&run, 1, grant_b.epoch).unwrap();
        let (rows, done) = store.status(&run).unwrap();
        assert!(done);
        assert_eq!(rows[0].worker.as_deref(), Some("a"));
        assert_eq!(rows[0].rows_done, 1, "heartbeat progress sticks");
        assert_eq!(rows[1].worker.as_deref(), Some("b"));

        assert_eq!(store.heartbeat("run-none", 0, 1, 0), Err(LeaseError::UnknownRun));
        assert_eq!(store.heartbeat(&run, 9, 1, 0), Err(LeaseError::UnknownShard));
        assert_eq!(store.complete(&run, 0, grant_a.epoch), Err(LeaseError::LeaseLost));
    }

    #[test]
    fn expired_leases_are_stolen_and_fenced() {
        let store = store("steal", Duration::from_millis(20));
        let run = store.submit(spec(1, Duration::from_millis(20))).unwrap();
        let dead = grant(&store, "dead");
        // Not yet expired: nothing to steal.
        assert!(matches!(store.lease("thief"), LeaseOutcome::Empty));
        std::thread::sleep(Duration::from_millis(30));
        let stolen = grant(&store, "thief");
        assert!(stolen.stolen);
        assert_eq!(stolen.shard, dead.shard);
        assert!(stolen.epoch > dead.epoch);
        assert_eq!(stolen.sink, dead.sink, "the thief resumes the same sink");
        // The corpse's epoch is fenced out of both verbs.
        assert_eq!(store.heartbeat(&run, 0, dead.epoch, 0), Err(LeaseError::LeaseLost));
        assert_eq!(store.complete(&run, 0, dead.epoch), Err(LeaseError::LeaseLost));
        // The thief finishes normally.
        store.complete(&run, 0, stolen.epoch).unwrap();
        let (rows, done) = store.status(&run).unwrap();
        assert!(done);
        assert_eq!(rows[0].steals, 1);
        assert_eq!(rows[0].worker.as_deref(), Some("thief"));
    }

    #[test]
    fn late_complete_on_matching_epoch_is_accepted() {
        let store = store("late", Duration::from_millis(10));
        let run = store.submit(spec(1, Duration::from_millis(10))).unwrap();
        let g = grant(&store, "slow");
        std::thread::sleep(Duration::from_millis(20));
        // Expired but not re-leased: the work is done, accept it.
        store.complete(&run, 0, g.epoch).unwrap();
        let (_, done) = store.status(&run).unwrap();
        assert!(done);
    }

    #[test]
    fn drain_refuses_new_leases_and_reports_quiescence() {
        let store = store("drain", Duration::from_millis(20));
        let run = store.submit(spec(1, Duration::from_millis(20))).unwrap();
        let g = grant(&store, "w");
        store.drain();
        assert!(matches!(store.lease("w2"), LeaseOutcome::Draining));
        assert!(!store.drained(), "a live lease blocks quiescence");
        store.complete(&run, 0, g.epoch).unwrap();
        assert!(store.drained());
    }

    #[test]
    fn two_runs_interleave_grants_round_robin() {
        let store = store("fairness", Duration::from_secs(60));
        let first = store.submit(spec(3, Duration::from_secs(60))).unwrap();
        let second = store.submit(spec(3, Duration::from_secs(60))).unwrap();
        // Strict run-then-shard order would grant all of `first`
        // before any of `second`; the round-robin cursor alternates.
        let order: Vec<String> = (0..6).map(|i| grant(&store, &format!("w{i}")).run).collect();
        assert_eq!(
            order,
            vec![first.clone(), second.clone(), first.clone(), second.clone(), first, second],
            "grants must interleave the two runs"
        );
    }

    #[test]
    fn reopened_store_recovers_runs_and_fences_dead_leases() {
        let dir = store_dir("reopen");
        let lease = Duration::from_secs(60);
        let (run, done_grant, live_grant) = {
            let (store, report) = store_at(&dir, lease);
            assert!(!report.recovered_state(), "fresh directory");
            let run = store.submit(spec(2, lease)).unwrap();
            let a = grant(&store, "a");
            store.heartbeat(&run, a.shard, a.epoch, 2).unwrap();
            store.complete(&run, a.shard, a.epoch).unwrap();
            let b = grant(&store, "b");
            (run, a, b)
            // The store drops here with shard 1 leased — the "crash".
        };
        let (store, report) = store_at(&dir, lease);
        assert!(report.recovered_state());
        assert_eq!(report.runs, 1);
        assert_eq!(report.leases_expired, 1);
        assert!(report.records_replayed >= 5, "{report:?}");
        assert_eq!(store.run_ids(), vec![run.clone()]);
        assert_eq!(store.spec(&run).unwrap(), spec(2, lease));

        let (rows, done) = store.status(&run).unwrap();
        assert!(!done);
        assert_eq!(rows[0].state, "done");
        assert_eq!(rows[0].worker.as_deref(), Some("a"));
        assert_eq!(rows[0].rows_done, 2, "pushed progress survives the crash");
        assert_eq!(rows[1].state, "pending", "the in-flight lease expired");

        // The pre-crash holder is fenced out…
        assert_eq!(
            store.heartbeat(&run, live_grant.shard, live_grant.epoch, 0),
            Err(LeaseError::LeaseLost)
        );
        assert_eq!(
            store.complete(&run, done_grant.shard, done_grant.epoch),
            Err(LeaseError::LeaseLost)
        );
        // …and the shard re-grants to a reconnecting worker.
        let retry = grant(&store, "b2");
        assert_eq!(retry.shard, live_grant.shard);
        assert!(retry.epoch > live_grant.epoch, "epoch bumped past the dead lease");
        assert_eq!(retry.sink, live_grant.sink, "same sink — resume, don't redo");
        store.complete(&run, retry.shard, retry.epoch).unwrap();
        assert!(store.status(&run).unwrap().1);
    }

    #[test]
    fn compaction_snapshots_and_truncates_then_recovers() {
        let dir = store_dir("compact");
        let lease = Duration::from_secs(60);
        let run = {
            let config = JournalConfig { compact_every: 4, ..JournalConfig::default() };
            let (store, _) = JobStore::open(&dir, lease, config).unwrap();
            let run = store.submit(spec(2, lease)).unwrap();
            let a = grant(&store, "a");
            let b = grant(&store, "b");
            // 4 records so far → this complete triggers compaction.
            store.complete(&run, a.shard, a.epoch).unwrap();
            store.complete(&run, b.shard, b.epoch).unwrap();
            run
        };
        assert!(dir.join(SNAPSHOT_FILE).exists(), "compaction wrote the checkpoint");
        let journal_len = std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len();
        // The tail past the last compaction is short; the bulk was
        // folded into the snapshot.
        let (store, report) = store_at(&dir, lease);
        assert!(report.recovered_state());
        assert!(report.snapshot_seq >= 4, "{report:?}");
        assert!(
            report.records_replayed <= 2,
            "replay is bounded by the snapshot: {report:?} (journal {journal_len}B)"
        );
        let (rows, done) = store.status(&run).unwrap();
        assert!(done, "{rows:?}");
    }

    #[test]
    fn grant_json_round_trips() {
        let grant = LeaseGrant {
            run: "run-9".to_string(),
            shard: 1,
            epoch: 3,
            stolen: true,
            lease: Duration::from_millis(750),
            sink: PathBuf::from("/tmp/run-9/shard-1.jsonl"),
            spec: spec(2, Duration::from_millis(750)),
        };
        let decoded = LeaseGrant::from_json(&grant.to_json()).unwrap();
        assert_eq!(decoded.run, grant.run);
        assert_eq!(decoded.shard, grant.shard);
        assert_eq!(decoded.epoch, grant.epoch);
        assert!(decoded.stolen);
        assert_eq!(decoded.lease, grant.lease);
        assert_eq!(decoded.sink, grant.sink);
        assert_eq!(decoded.spec, grant.spec);
    }
}
