//! Stimulus sequences: constrained-random, directed and corner-case.

use crate::iface::{PortSig, Transaction};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uvllm_sim::Logic;

/// A source of transactions, played by the sequencer.
///
/// `next` returns `None` when the sequence is exhausted.
pub trait Sequence {
    /// Display name used in logs.
    fn name(&self) -> &str;
    /// Produces the transaction for `cycle`, or `None` when done.
    fn next(&mut self, cycle: usize) -> Option<Transaction>;

    /// Writes the transaction for `cycle` into `txn`, reusing its
    /// allocations where possible; returns `false` when exhausted.
    ///
    /// The environment's run loop keeps one transaction buffer alive
    /// across the whole run, so long sequences that override this (the
    /// 800-cycle random campaigns) produce stimulus with zero per-cycle
    /// allocations. The default delegates to [`Sequence::next`] and
    /// replaces `txn` wholesale — correct for any sequence, reusing
    /// nothing.
    fn next_into(&mut self, cycle: usize, txn: &mut Transaction) -> bool {
        match self.next(cycle) {
            Some(t) => {
                *txn = t;
                true
            }
            None => false,
        }
    }
}

/// Uniform random stimulus over every input, seeded for reproducibility.
#[derive(Debug)]
pub struct RandomSequence {
    inputs: Vec<PortSig>,
    len: usize,
    produced: usize,
    rng: StdRng,
}

impl RandomSequence {
    /// `len` random transactions over `inputs` from `seed`.
    pub fn new(inputs: &[PortSig], len: usize, seed: u64) -> Self {
        RandomSequence {
            inputs: inputs.to_vec(),
            len,
            produced: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Sequence for RandomSequence {
    fn name(&self) -> &str {
        "random"
    }

    fn next(&mut self, cycle: usize) -> Option<Transaction> {
        // One source of truth for the seeded stream: both paths must
        // replay identical transactions for campaign determinism.
        let mut t = Transaction::new();
        self.next_into(cycle, &mut t).then_some(t)
    }

    /// In-place refill: the key set is every input, so after the first
    /// cycle each value is updated through `get_mut` and the random
    /// phase of a run allocates nothing per cycle.
    fn next_into(&mut self, _cycle: usize, txn: &mut Transaction) -> bool {
        if self.produced >= self.len {
            return false;
        }
        self.produced += 1;
        for p in &self.inputs {
            let lo: u128 = self.rng.random::<u64>() as u128;
            let hi: u128 = self.rng.random::<u64>() as u128;
            let v = Logic::from_u128(p.width, (hi << 64) | lo);
            match txn.values.get_mut(p.name.as_str()) {
                Some(slot) => *slot = v,
                None => {
                    txn.values.insert(p.name.clone(), v);
                }
            }
        }
        true
    }
}

/// Replays a fixed vector list — the "finite test cases" style of
/// testbench the paper criticises in MEIC-like flows.
#[derive(Debug, Clone)]
pub struct DirectedSequence {
    name: String,
    vectors: Vec<Transaction>,
    at: usize,
}

impl DirectedSequence {
    /// Creates a directed sequence from explicit vectors.
    pub fn new(name: impl Into<String>, vectors: Vec<Transaction>) -> Self {
        DirectedSequence { name: name.into(), vectors, at: 0 }
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vectors are present.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

impl Sequence for DirectedSequence {
    fn name(&self) -> &str {
        &self.name
    }

    fn next(&mut self, _cycle: usize) -> Option<Transaction> {
        let t = self.vectors.get(self.at).cloned();
        self.at += 1;
        t
    }
}

/// Corner-case stimulus: all-zeros, all-ones, walking-one per input,
/// plus alternating patterns — the coverage-closing tail of a UVM run.
#[derive(Debug)]
pub struct CornerSequence {
    inputs: Vec<PortSig>,
    patterns: Vec<Transaction>,
    at: usize,
}

impl CornerSequence {
    /// Builds the pattern table for `inputs`.
    pub fn new(inputs: &[PortSig]) -> Self {
        let mut patterns = Vec::new();
        let uniform = |f: &dyn Fn(u32) -> u128| {
            let mut t = Transaction::new();
            for p in inputs {
                t.values.insert(p.name.clone(), Logic::from_u128(p.width, f(p.width)));
            }
            t
        };
        patterns.push(uniform(&|_| 0));
        patterns.push(uniform(&|w| uvllm_sim::logic::mask(w)));
        patterns.push(uniform(&|w| uvllm_sim::logic::mask(w) & 0xAAAA_AAAA_AAAA_AAAA));
        patterns.push(uniform(&|w| uvllm_sim::logic::mask(w) & 0x5555_5555_5555_5555));
        // Walking one across the widest input, others held at 1.
        let max_w = inputs.iter().map(|p| p.width).max().unwrap_or(1);
        for bit in 0..max_w.min(16) {
            let mut t = Transaction::new();
            for p in inputs {
                let v = if p.width > bit { 1u128 << bit } else { 1 };
                t.values.insert(p.name.clone(), Logic::from_u128(p.width, v));
            }
            patterns.push(t);
        }
        CornerSequence { inputs: inputs.to_vec(), patterns, at: 0 }
    }

    /// Number of patterns produced.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when there are no patterns (no inputs).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

impl Sequence for CornerSequence {
    fn name(&self) -> &str {
        "corner"
    }

    fn next(&mut self, _cycle: usize) -> Option<Transaction> {
        let t = self.patterns.get(self.at).cloned();
        self.at += 1;
        let _ = &self.inputs;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ports() -> Vec<PortSig> {
        vec![PortSig::new("a", 8), PortSig::new("b", 4)]
    }

    #[test]
    fn random_sequence_is_deterministic() {
        let collect = |seed| {
            let mut s = RandomSequence::new(&ports(), 5, seed);
            let mut out = Vec::new();
            let mut i = 0;
            while let Some(t) = s.next(i) {
                out.push(t);
                i += 1;
            }
            out
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
        assert_eq!(collect(7).len(), 5);
    }

    #[test]
    fn random_values_respect_width() {
        let mut s = RandomSequence::new(&ports(), 100, 1);
        let mut i = 0;
        while let Some(t) = s.next(i) {
            assert!(t.values["b"].to_u128().unwrap() < 16);
            i += 1;
        }
    }

    #[test]
    fn directed_sequence_replays() {
        let v = vec![
            Transaction::new().with("a", Logic::from_u128(8, 1)),
            Transaction::new().with("a", Logic::from_u128(8, 2)),
        ];
        let mut s = DirectedSequence::new("smoke", v);
        assert_eq!(s.len(), 2);
        assert!(s.next(0).is_some());
        assert!(s.next(1).is_some());
        assert!(s.next(2).is_none());
    }

    #[test]
    fn corner_sequence_covers_extremes() {
        let mut s = CornerSequence::new(&ports());
        let first = s.next(0).unwrap();
        assert_eq!(first.values["a"].to_u128(), Some(0));
        let second = s.next(1).unwrap();
        assert_eq!(second.values["a"].to_u128(), Some(0xff));
        assert_eq!(second.values["b"].to_u128(), Some(0xf));
        assert!(s.len() >= 8);
    }
}
