//! # uvllm-uvm
//!
//! A UVM-style constrained-random verification framework (§III-B of the
//! UVLLM paper, Fig. 3): sequences feed a sequencer, a driver translates
//! transactions to pin wiggles on the simulated DUT, monitors sample
//! pins, and a scoreboard compares against an executable reference model
//! while collecting functional coverage. Runs emit a UVM-style log whose
//! mismatch lines the post-processing stage parses, plus a waveform for
//! time-aware slicing.
//!
//! The environment↔reference-model boundary is index-based: port names
//! are interned once into an [`IoSpec`] and each cycle's values cross
//! in a reused [`IoFrame`] (see [`refmodel`] for the contract and the
//! rationale versus the paper's DPI-style map exchange).
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use uvllm_uvm::{
//!     DutInterface, Environment, FnModel, IoFrame, IoSpec, PortSig,
//!     RandomSequence, Sequence,
//! };
//!
//! let src = "module inv(input [3:0] a, output [3:0] y);\n\
//!            assign y = ~a;\nendmodule\n";
//! let iface = DutInterface::combinational(
//!     vec![PortSig::new("a", 4)],
//!     vec![PortSig::new("y", 4)],
//! );
//! let model = FnModel::new(|s: &IoSpec| {
//!     let (a, y) = (s.input("a"), s.output("y"));
//!     move |io: &mut IoFrame<'_>| {
//!         let v = io.get(a);
//!         io.set(y, !v);
//!     }
//! });
//! let seqs: Vec<Box<dyn Sequence>> =
//!     vec![Box::new(RandomSequence::new(&iface.inputs, 20, 1))];
//! let env = Environment::from_source(src, "inv", iface, Box::new(model), seqs)?;
//! let summary = env.run();
//! assert!(summary.all_passed());
//! # Ok(())
//! # }
//! ```

pub mod assertion;
pub mod env;
pub mod iface;
pub mod log;
pub mod refmodel;
pub mod scoreboard;
pub mod sequence;

pub use assertion::Assertion;
pub use env::{Driver, Environment, Monitor, RunSummary, Sequencer, UvmError, CYCLE_TIME};
pub use iface::{DutInterface, PortSig, ResetSpec, Transaction};
pub use log::{LogEntry, UvmLog, UvmSeverity};
pub use refmodel::{FnModel, InSlot, IoFrame, IoSpec, OutSlot, RefModel};
pub use scoreboard::{Coverage, Mismatch, Scoreboard};
pub use sequence::{CornerSequence, DirectedSequence, RandomSequence, Sequence};
