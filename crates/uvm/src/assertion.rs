//! SVA-lite immediate assertions — the paper's Extensibility hook
//! (§III-B): protocol properties checked on every scoreboard cycle,
//! independent of the reference model.
//!
//! Assertions are Verilog boolean expressions over the DUT's signal
//! names, evaluated against the post-edge snapshot. A failing (or
//! X-valued) assertion raises a `UVM_ERROR` and is counted in the run
//! summary, exactly like the AI-generated APB/AHB assertions the paper
//! cites.

use std::collections::HashMap;
use uvllm_sim::{Logic, Tri};
use uvllm_verilog::ast::Expr;
use uvllm_verilog::parse_expr;

/// One immediate assertion.
#[derive(Debug, Clone)]
pub struct Assertion {
    /// Display name (used in log entries).
    pub name: String,
    /// Boolean property over signal names.
    pub expr: Expr,
    /// Original source text of the property.
    pub text: String,
}

impl Assertion {
    /// Parses a property from Verilog expression text.
    ///
    /// # Errors
    ///
    /// Returns the parser message when `text` is not an expression.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Self, String> {
        let expr = parse_expr(text).map_err(|e| e.to_string())?;
        Ok(Assertion { name: name.into(), expr, text: text.to_string() })
    }

    /// Evaluates the property against a named value snapshot.
    /// `true` means the assertion holds; X-valued properties fail
    /// (conservative, as in SystemVerilog immediate assertions).
    pub fn holds(&self, values: &HashMap<String, Logic>) -> bool {
        crate::assertion::eval(&self.expr, values).truthiness() == Tri::True
    }
}

/// Evaluates `expr` over `values` (wrapper over the slicing evaluator's
/// semantics, kept local so `uvllm-uvm` stays independent of the DFG
/// crate).
pub fn eval(expr: &Expr, values: &HashMap<String, Logic>) -> Logic {
    use uvllm_verilog::ast::{BinaryOp, UnaryOp};
    match expr {
        Expr::Number(n) => Logic::from_planes(n.width.unwrap_or(32), n.value, n.xz),
        Expr::Ident(name) => values.get(name).copied().unwrap_or_else(|| Logic::xs(32)),
        Expr::Unary(op, a) => {
            let v = eval(a, values);
            let w = v.width();
            match op {
                UnaryOp::LogNot => v.log_not(),
                UnaryOp::BitNot => v.bitnot(w),
                UnaryOp::Neg => v.neg(w),
                UnaryOp::Plus => v,
                UnaryOp::RedAnd => v.red_and(),
                UnaryOp::RedOr => v.red_or(),
                UnaryOp::RedXor => v.red_xor(),
                UnaryOp::RedNand => v.red_and().bitnot(1),
                UnaryOp::RedNor => v.red_or().bitnot(1),
                UnaryOp::RedXnor => v.red_xor().bitnot(1),
            }
        }
        Expr::Binary(op, a, b) => {
            let x = eval(a, values);
            let y = eval(b, values);
            let w = x.width().max(y.width());
            match op {
                BinaryOp::Add => x.add(&y, w),
                BinaryOp::Sub => x.sub(&y, w),
                BinaryOp::Mul => x.mul(&y, w),
                BinaryOp::Div => x.div(&y, w),
                BinaryOp::Mod => x.rem(&y, w),
                BinaryOp::Pow => x.pow(&y, w),
                BinaryOp::Shl => x.shl(&y, w),
                BinaryOp::Shr => x.shr(&y, w),
                BinaryOp::AShr => x.ashr(&y, w),
                BinaryOp::Lt => x.cmp_lt(&y),
                BinaryOp::Le => y.cmp_lt(&x).log_not(),
                BinaryOp::Gt => y.cmp_lt(&x),
                BinaryOp::Ge => x.cmp_lt(&y).log_not(),
                BinaryOp::Eq => x.log_eq(&y),
                BinaryOp::Ne => x.log_ne(&y),
                BinaryOp::CaseEq => x.case_eq(&y),
                BinaryOp::CaseNe => x.case_eq(&y).bitnot(1),
                BinaryOp::LogAnd => x.log_and(&y),
                BinaryOp::LogOr => x.log_or(&y),
                BinaryOp::BitAnd => x.bitand(&y, w),
                BinaryOp::BitOr => x.bitor(&y, w),
                BinaryOp::BitXor => x.bitxor(&y, w),
                BinaryOp::BitXnor => x.bitxnor(&y, w),
            }
        }
        Expr::Ternary(c, t, f) => match eval(c, values).truthiness() {
            Tri::True => eval(t, values),
            Tri::False => eval(f, values),
            Tri::Unknown => {
                let tv = eval(t, values);
                let fv = eval(f, values);
                let w = tv.width().max(fv.width());
                tv.merge(&fv, w)
            }
        },
        Expr::Index(base, index) => {
            let b = eval(base, values);
            match eval(index, values).to_u128() {
                Some(i) if i < 128 => b.get_bit(i as u32),
                _ => Logic::xs(1),
            }
        }
        Expr::Part(base, msb, lsb) => {
            let b = eval(base, values);
            match (eval(msb, values).to_u128(), eval(lsb, values).to_u128()) {
                (Some(m), Some(l)) if m >= l && m < 128 => {
                    b.get_slice(l as u32, (m - l + 1) as u32)
                }
                _ => Logic::xs(1),
            }
        }
        Expr::Concat(items) => {
            let mut acc: Option<Logic> = None;
            for item in items {
                let v = eval(item, values);
                acc = Some(match acc {
                    None => v,
                    Some(hi) => Logic::concat(hi, v),
                });
            }
            acc.unwrap_or_else(|| Logic::zeros(1))
        }
        Expr::Repeat(count, items) => {
            let n = eval(count, values).to_u128().unwrap_or(0).min(64);
            let mut acc: Option<Logic> = None;
            for _ in 0..n {
                for item in items {
                    let v = eval(item, values);
                    acc = Some(match acc {
                        None => v,
                        Some(hi) => Logic::concat(hi, v),
                    });
                }
            }
            acc.unwrap_or_else(|| Logic::zeros(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, u32, u128)]) -> HashMap<String, Logic> {
        pairs.iter().map(|(n, w, v)| (n.to_string(), Logic::from_u128(*w, *v))).collect()
    }

    #[test]
    fn parses_and_evaluates() {
        let a = Assertion::parse("no_overflow", "!(full && push)").unwrap();
        assert!(a.holds(&env(&[("full", 1, 0), ("push", 1, 1)])));
        assert!(a.holds(&env(&[("full", 1, 1), ("push", 1, 0)])));
        assert!(!a.holds(&env(&[("full", 1, 1), ("push", 1, 1)])));
    }

    #[test]
    fn x_valued_property_fails() {
        let a = Assertion::parse("count_sane", "count <= 4'd8").unwrap();
        // `count` missing from the snapshot: X, conservative failure.
        assert!(!a.holds(&HashMap::new()));
        assert!(a.holds(&env(&[("count", 4, 8)])));
        assert!(!a.holds(&env(&[("count", 5, 9)])));
    }

    #[test]
    fn relational_and_arith_properties() {
        let a = Assertion::parse("sum_bound", "(a + b) >= a").unwrap();
        assert!(a.holds(&env(&[("a", 8, 200), ("b", 8, 55)])));
        let onehot = Assertion::parse("onehot", "(y & (y - 8'd1)) == 8'd0").unwrap();
        assert!(onehot.holds(&env(&[("y", 8, 0b0100_0000)])));
        assert!(!onehot.holds(&env(&[("y", 8, 0b0110_0000)])));
    }

    #[test]
    fn bad_expression_is_rejected() {
        assert!(Assertion::parse("broken", "a +* b").is_err());
    }
}
