//! DUT interface descriptions shared by drivers, monitors and reference
//! models.

use std::collections::BTreeMap;
use uvllm_sim::Logic;

/// One named port with its width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSig {
    pub name: String,
    pub width: u32,
}

impl PortSig {
    /// Creates a port signature.
    pub fn new(name: impl Into<String>, width: u32) -> Self {
        PortSig { name: name.into(), width }
    }
}

/// Reset line description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResetSpec {
    pub name: String,
    /// True when the reset asserts at logic 0 (`rst_n` style).
    pub active_low: bool,
}

/// The pin-level contract of a DUT: clocking, reset and data ports.
///
/// `inputs`/`outputs` exclude the clock and reset lines, which the
/// [`crate::env::Environment`] drives itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DutInterface {
    /// Clock port; `None` for purely combinational DUTs.
    pub clock: Option<String>,
    /// Reset port, if the DUT has one.
    pub reset: Option<ResetSpec>,
    pub inputs: Vec<PortSig>,
    pub outputs: Vec<PortSig>,
}

impl DutInterface {
    /// A combinational interface (no clock, no reset).
    pub fn combinational(inputs: Vec<PortSig>, outputs: Vec<PortSig>) -> Self {
        DutInterface { clock: None, reset: None, inputs, outputs }
    }

    /// A clocked interface with an active-low reset named `rst_n`.
    pub fn clocked(inputs: Vec<PortSig>, outputs: Vec<PortSig>) -> Self {
        DutInterface {
            clock: Some("clk".to_string()),
            reset: Some(ResetSpec { name: "rst_n".to_string(), active_low: true }),
            inputs,
            outputs,
        }
    }

    /// True when the DUT has a clock.
    pub fn is_sequential(&self) -> bool {
        self.clock.is_some()
    }

    /// Looks up an input port by name.
    pub fn input(&self, name: &str) -> Option<&PortSig> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Looks up an output port by name.
    pub fn output(&self, name: &str) -> Option<&PortSig> {
        self.outputs.iter().find(|p| p.name == name)
    }
}

/// A single stimulus item: values for every data input for one cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Transaction {
    /// Input name → driven value. `BTreeMap` keeps log rendering stable.
    pub values: BTreeMap<String, Logic>,
}

impl Transaction {
    /// Creates an empty transaction.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Builder-style value insertion.
    pub fn with(mut self, name: impl Into<String>, value: Logic) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Renders as `a=8'h12 b=8'h03` for logs.
    pub fn render(&self) -> String {
        self.values.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_constructors() {
        let iface = DutInterface::clocked(vec![PortSig::new("d", 8)], vec![PortSig::new("q", 8)]);
        assert!(iface.is_sequential());
        assert_eq!(iface.clock.as_deref(), Some("clk"));
        assert!(iface.reset.as_ref().unwrap().active_low);
        assert!(iface.input("d").is_some());
        assert!(iface.output("q").is_some());
        assert!(iface.input("q").is_none());

        let comb = DutInterface::combinational(vec![PortSig::new("a", 1)], vec![]);
        assert!(!comb.is_sequential());
    }

    #[test]
    fn transaction_render_is_stable() {
        let t =
            Transaction::new().with("b", Logic::from_u128(4, 3)).with("a", Logic::from_u128(4, 1));
        assert_eq!(t.render(), "a=4'h1 b=4'h3");
    }
}
