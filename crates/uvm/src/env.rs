//! The UVM environment: sequencer → driver → DUT → monitor → scoreboard
//! (Fig. 3 of the paper), with waveform capture and coverage.

use crate::assertion::Assertion;
use crate::iface::{DutInterface, Transaction};
use crate::log::UvmLog;
use crate::refmodel::{IoFrame, IoSpec, RefModel};
use crate::scoreboard::{Coverage, Mismatch, Scoreboard};
use crate::sequence::Sequence;
use std::fmt;
use std::sync::Arc;
use uvllm_sim::{
    AnySim, CheckoutError, Design, Logic, SimBackend, SimControl, SimError, Simulator, Waveform,
};

/// Nanoseconds per clock cycle in the recorded waveform.
pub const CYCLE_TIME: u64 = 10;

/// Environment construction / execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum UvmError {
    /// The DUT does not expose a port the interface requires.
    MissingPort(String),
    /// Elaboration of the DUT failed.
    Elab(String),
    /// The simulator failed during the run.
    Sim(String),
}

impl fmt::Display for UvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UvmError::MissingPort(p) => write!(f, "DUT has no port '{p}'"),
            UvmError::Elab(m) => write!(f, "elaboration failed: {m}"),
            UvmError::Sim(m) => write!(f, "simulation failed: {m}"),
        }
    }
}

impl std::error::Error for UvmError {}

/// Drives transactions onto DUT inputs (pin-level translation of the
/// sequencer's items).
#[derive(Debug, Default, Clone, Copy)]
pub struct Driver;

impl Driver {
    /// Applies every input value of `txn` (works on either kernel),
    /// resolving port names on the fly.
    pub fn drive<S: SimControl + ?Sized>(
        &self,
        sim: &mut S,
        iface: &DutInterface,
        txn: &Transaction,
    ) -> Result<(), SimError> {
        for port in &iface.inputs {
            let id = sim
                .design()
                .signal_id(&port.name)
                .ok_or_else(|| SimError::UnknownSignal(port.name.clone()))?;
            self.drive_port(sim, &port.name, id, port.width, txn)?;
        }
        Ok(())
    }

    /// Pin-level fast path over pre-resolved ports (the environment's
    /// hot loop — no name lookups).
    pub fn drive_resolved<S: SimControl + ?Sized>(
        &self,
        sim: &mut S,
        ports: &[(String, uvllm_sim::SignalId, u32)],
        txn: &Transaction,
    ) -> Result<(), SimError> {
        for (name, id, width) in ports {
            self.drive_port(sim, name, *id, *width, txn)?;
        }
        Ok(())
    }

    /// Drives one port: missing transaction values default to zero and
    /// everything is resized to the port width.
    fn drive_port<S: SimControl + ?Sized>(
        &self,
        sim: &mut S,
        name: &str,
        id: uvllm_sim::SignalId,
        width: u32,
        txn: &Transaction,
    ) -> Result<(), SimError> {
        let v = txn.values.get(name).copied().unwrap_or_else(|| Logic::zeros(width));
        sim.poke(id, v.resize(width))
    }
}

/// Observes DUT pins.
#[derive(Debug, Default, Clone, Copy)]
pub struct Monitor;

impl Monitor {
    /// Refreshes slot `i` of `into` with the current value of the `i`-th
    /// listed signal — the environment's hot loop samples through
    /// pre-resolved ids into a reused slot-ordered buffer, so the steady
    /// state allocates nothing.
    pub fn observe_slots<S: SimControl + ?Sized>(
        &self,
        sim: &S,
        ids: impl Iterator<Item = uvllm_sim::SignalId>,
        into: &mut [Logic],
    ) {
        for (slot, id) in ids.enumerate() {
            into[slot] = sim.peek(id);
        }
    }
}

/// Pulls transactions out of a list of sequences in order.
pub struct Sequencer {
    sequences: Vec<Box<dyn Sequence>>,
    current: usize,
}

impl Sequencer {
    /// Creates a sequencer over `sequences`.
    pub fn new(sequences: Vec<Box<dyn Sequence>>) -> Self {
        Sequencer { sequences, current: 0 }
    }

    /// Next transaction, advancing through sequences as they exhaust.
    /// Also returns the name of the producing sequence.
    pub fn next(&mut self, cycle: usize) -> Option<(Transaction, String)> {
        while self.current < self.sequences.len() {
            let seq = &mut self.sequences[self.current];
            if let Some(t) = seq.next(cycle) {
                return Some((t, seq.name().to_string()));
            }
            self.current += 1;
        }
        None
    }

    /// Allocation-free variant of [`Sequencer::next`]: refills `txn` in
    /// place via [`Sequence::next_into`]. The buffer is cleared at
    /// sequence boundaries so one sequence's key set cannot leak stale
    /// drive values into the next.
    pub fn next_into(&mut self, cycle: usize, txn: &mut Transaction) -> bool {
        while self.current < self.sequences.len() {
            if self.sequences[self.current].next_into(cycle, txn) {
                return true;
            }
            self.current += 1;
            txn.values.clear();
        }
        false
    }
}

impl fmt::Debug for Sequencer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sequencer")
            .field("sequences", &self.sequences.len())
            .field("current", &self.current)
            .finish()
    }
}

/// The input-side agent of Fig. 3: sequencer + driver (+ input monitor).
pub struct InAgent {
    pub sequencer: Sequencer,
    pub driver: Driver,
    pub monitor: Monitor,
}

/// Summary of one UVM run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Cycles that were driven and checked.
    pub cycles: usize,
    /// Scoreboard pass rate in `[0, 1]` — the rollback score.
    pub pass_rate: f64,
    /// All mismatches in time order.
    pub mismatches: Vec<Mismatch>,
    /// Rendered UVM log.
    pub log: UvmLog,
    /// Recorded waveform (one capture per checked cycle).
    pub waveform: Waveform,
    /// Input-bin coverage in `[0, 1]`.
    pub input_coverage: f64,
    /// Output toggle coverage in `[0, 1]`.
    pub toggle_coverage: f64,
    /// Set when the run aborted early (oscillation etc.).
    pub aborted: Option<String>,
    /// Set when the abort was a combinational oscillation: the process
    /// activation count at which the simulator gave up
    /// ([`uvllm_sim::MAX_ACTIVATIONS`]). Lets harnesses report
    /// `SimError::Unstable` as a distinct outcome instead of an opaque
    /// abort string.
    pub unstable: Option<usize>,
    /// Immediate-assertion failures observed (cycle count, not unique).
    pub assertion_failures: usize,
}

impl RunSummary {
    /// True when every cycle matched and the run completed.
    pub fn all_passed(&self) -> bool {
        self.aborted.is_none() && self.cycles > 0 && self.mismatches.is_empty()
    }
}

/// The top-level verification environment.
pub struct Environment {
    sim: AnySim,
    iface: DutInterface,
    refmodel: Box<dyn RefModel>,
    in_agent: InAgent,
    out_monitor: Monitor,
    scoreboard: Scoreboard,
    coverage: Coverage,
    log: UvmLog,
    wave: Waveform,
    assertions: Vec<Assertion>,
    assertion_failures: usize,
    /// Interned I/O layout shared with the reference model; also the
    /// slot order of every buffer below.
    spec: IoSpec,
    /// Input ports pre-resolved to `(name, id, width)` — the per-cycle
    /// drive/observe loops must not do name lookups.
    in_ports: Vec<(String, uvllm_sim::SignalId, u32)>,
    /// Output ports pre-resolved to `(name, id)`.
    out_ports: Vec<(String, uvllm_sim::SignalId)>,
    clock_id: Option<uvllm_sim::SignalId>,
    /// Reusable slot-ordered observation/expectation buffers
    /// (steady-state: zero allocations/cycle).
    inputs_buf: Vec<Logic>,
    outputs_buf: Vec<Logic>,
    expected_buf: Vec<Logic>,
    /// When false, per-cycle waveform capture is skipped — pass/fail
    /// harnesses (the campaign's metric runs) don't pay for frames
    /// nobody reads.
    record_waveform: bool,
}

impl fmt::Debug for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Environment").field("iface", &self.iface).finish()
    }
}

impl Environment {
    /// Builds an environment around a shared elaborated design on the
    /// process-default backend ([`SimBackend::from_env`]). The `Arc`
    /// is threaded through to the kernel as-is — nothing on this path
    /// clones the design.
    ///
    /// # Errors
    ///
    /// [`UvmError::MissingPort`] when the DUT lacks an interface port;
    /// [`UvmError::Sim`] when time-zero settling fails.
    pub fn new(
        design: &Arc<Design>,
        iface: DutInterface,
        refmodel: Box<dyn RefModel>,
        sequences: Vec<Box<dyn Sequence>>,
    ) -> Result<Self, UvmError> {
        Environment::new_with(design, iface, refmodel, sequences, SimBackend::from_env())
    }

    /// Builds an environment around a shared elaborated design on an
    /// explicit simulation backend.
    ///
    /// # Errors
    ///
    /// As [`Environment::new`].
    pub fn new_with(
        design: &Arc<Design>,
        iface: DutInterface,
        refmodel: Box<dyn RefModel>,
        sequences: Vec<Box<dyn Sequence>>,
        backend: SimBackend,
    ) -> Result<Self, UvmError> {
        let sim = AnySim::new(design, backend).map_err(|e| UvmError::Sim(e.to_string()))?;
        Environment::with_sim(sim, iface, refmodel, sequences)
    }

    /// Wraps an already-built simulation (either kernel), binding the
    /// reference model to the interface's [`IoSpec`].
    ///
    /// # Errors
    ///
    /// [`UvmError::MissingPort`] when the DUT lacks an interface port.
    pub fn with_sim(
        sim: AnySim,
        iface: DutInterface,
        mut refmodel: Box<dyn RefModel>,
        sequences: Vec<Box<dyn Sequence>>,
    ) -> Result<Self, UvmError> {
        let design = sim.design();
        let mut required: Vec<&str> = Vec::new();
        if let Some(c) = &iface.clock {
            required.push(c);
        }
        if let Some(r) = &iface.reset {
            required.push(&r.name);
        }
        for p in iface.inputs.iter().chain(&iface.outputs) {
            required.push(&p.name);
        }
        for name in required {
            if design.signal_id(name).is_none() {
                return Err(UvmError::MissingPort(name.to_string()));
            }
        }
        let resolve = |name: &str| design.signal_id(name).expect("port presence checked above");
        let in_ports: Vec<(String, uvllm_sim::SignalId, u32)> =
            iface.inputs.iter().map(|p| (p.name.clone(), resolve(&p.name), p.width)).collect();
        let out_ports: Vec<(String, uvllm_sim::SignalId)> =
            iface.outputs.iter().map(|p| (p.name.clone(), resolve(&p.name))).collect();
        let clock_id = iface.clock.as_deref().map(resolve);
        let wave = Waveform::new(&sim);
        // Intern the port layout once and hand it to the model: all
        // per-cycle traffic from here on is slot-indexed.
        let spec = IoSpec::from_interface(&iface);
        refmodel.bind(&spec);
        let inputs_buf = iface.inputs.iter().map(|p| Logic::xs(p.width)).collect();
        let outputs_buf: Vec<Logic> = iface.outputs.iter().map(|p| Logic::xs(p.width)).collect();
        let expected_buf = outputs_buf.clone();
        Ok(Environment {
            sim,
            iface,
            refmodel,
            in_agent: InAgent {
                sequencer: Sequencer::new(sequences),
                driver: Driver,
                monitor: Monitor,
            },
            out_monitor: Monitor,
            scoreboard: Scoreboard::new(),
            coverage: Coverage::new(),
            log: UvmLog::new(),
            wave,
            assertions: Vec::new(),
            assertion_failures: 0,
            spec,
            in_ports,
            out_ports,
            clock_id,
            inputs_buf,
            outputs_buf,
            expected_buf,
            record_waveform: true,
        })
    }

    /// Attaches immediate assertions checked after every cycle — the
    /// paper's extensibility hook for AI-generated protocol properties.
    pub fn with_assertions(mut self, assertions: Vec<Assertion>) -> Self {
        self.assertions = assertions;
        self
    }

    /// Disables per-cycle waveform capture. Pass/fail harnesses that
    /// never query the waveform (metric runs, baseline acceptance
    /// tests) skip the one remaining per-cycle allocation; the summary
    /// then carries an empty waveform. Repair pipelines that feed the
    /// localization engine must keep capture on (the default).
    pub fn without_waveform(mut self) -> Self {
        self.record_waveform = false;
        self
    }

    /// Parses, elaborates and wraps `src` in one call on the
    /// process-default backend ([`SimBackend::from_env`]).
    ///
    /// Elaboration goes through the process-wide content-addressed
    /// cache ([`uvllm_sim::cache`]), so repeated runs over the same
    /// text — differential metrics, multi-method campaigns — elaborate
    /// once and share the result.
    ///
    /// # Errors
    ///
    /// [`UvmError::Elab`] on parse/elaboration failure, plus everything
    /// [`Environment::new`] can return.
    pub fn from_source(
        src: &str,
        top: &str,
        iface: DutInterface,
        refmodel: Box<dyn RefModel>,
        sequences: Vec<Box<dyn Sequence>>,
    ) -> Result<Self, UvmError> {
        Environment::from_source_with(src, top, iface, refmodel, sequences, SimBackend::from_env())
    }

    /// Parses, elaborates and wraps `src` on an explicit backend. The
    /// compiled backend additionally memoises the *compiled* design
    /// ([`uvllm_sim::compile_source_cached`]) **and** checks a reusable
    /// simulation instance out of the process-wide pool
    /// ([`uvllm_sim::checkout_sim`]): repeated texts skip elaboration,
    /// levelization *and* re-instantiation — the instance's state is
    /// rewound instead.
    ///
    /// # Errors
    ///
    /// As [`Environment::from_source`].
    pub fn from_source_with(
        src: &str,
        top: &str,
        iface: DutInterface,
        refmodel: Box<dyn RefModel>,
        sequences: Vec<Box<dyn Sequence>>,
        backend: SimBackend,
    ) -> Result<Self, UvmError> {
        let sim = match backend {
            SimBackend::EventDriven => {
                let design =
                    uvllm_sim::elaborate_source_cached(src, top).map_err(UvmError::Elab)?;
                AnySim::Event(
                    Simulator::from_arc(design).map_err(|e| UvmError::Sim(e.to_string()))?,
                )
            }
            SimBackend::Compiled => {
                let pooled = uvllm_sim::checkout_sim(src, top).map_err(|e| match e {
                    CheckoutError::Build(m) => UvmError::Elab(m),
                    CheckoutError::Sim(e) => UvmError::Sim(e.to_string()),
                })?;
                AnySim::Compiled(pooled)
            }
        };
        Environment::with_sim(sim, iface, refmodel, sequences)
    }

    /// The simulation backend this environment runs on.
    pub fn backend(&self) -> SimBackend {
        self.sim.backend()
    }

    /// Runs every sequence to exhaustion, returning the summary.
    pub fn run(mut self) -> RunSummary {
        let mut cycle = 0usize;
        let mut aborted = None;
        let mut unstable = None;

        if let Err(e) = self.reset_phase() {
            if let SimError::Unstable { activations } = e {
                unstable = Some(activations);
            }
            aborted = Some(e.to_string());
        }

        if aborted.is_none() {
            // One transaction buffer for the whole run: sequences
            // refill it in place (see `Sequence::next_into`).
            let mut txn = Transaction::new();
            while self.in_agent.sequencer.next_into(cycle, &mut txn) {
                match self.one_cycle(cycle, &txn) {
                    Ok(()) => {}
                    Err(e) => {
                        self.log.error(self.sim.time(), "env", format!("aborted: {e}"));
                        if let SimError::Unstable { activations } = e {
                            unstable = Some(activations);
                        }
                        aborted = Some(e.to_string());
                        break;
                    }
                }
                cycle += 1;
            }
        }

        let pass_rate = self.scoreboard.pass_rate();
        self.log.info(
            self.sim.time(),
            "env",
            format!(
                "run complete: {} cycles, pass rate {:.2}%, {} mismatches",
                cycle,
                pass_rate * 100.0,
                self.scoreboard.mismatches().len()
            ),
        );
        RunSummary {
            cycles: cycle,
            pass_rate,
            mismatches: self.scoreboard.mismatches().to_vec(),
            log: self.log,
            waveform: self.wave,
            input_coverage: self.coverage.input_coverage(),
            toggle_coverage: self.coverage.toggle_coverage(),
            aborted,
            unstable,
            assertion_failures: self.assertion_failures,
        }
    }

    fn reset_phase(&mut self) -> Result<(), SimError> {
        self.refmodel.reset();
        let Some(reset) = self.iface.reset.clone() else {
            // Still initialise inputs to zero for a clean start.
            for p in self.iface.inputs.clone() {
                self.sim.poke_by_name(&p.name, Logic::zeros(p.width))?;
            }
            return Ok(());
        };
        let assert_v = Logic::bit(!reset.active_low);
        let deassert_v = Logic::bit(reset.active_low);
        for p in self.iface.inputs.clone() {
            self.sim.poke_by_name(&p.name, Logic::zeros(p.width))?;
        }
        if let Some(clk) = self.iface.clock.clone() {
            self.sim.poke_by_name(&clk, Logic::bit(false))?;
            self.sim.poke_by_name(&reset.name, assert_v)?;
            for _ in 0..2 {
                self.sim.poke_by_name(&clk, Logic::bit(true))?;
                self.sim.poke_by_name(&clk, Logic::bit(false))?;
                self.sim.set_time(self.sim.time() + CYCLE_TIME);
            }
            self.sim.poke_by_name(&reset.name, deassert_v)?;
        } else {
            self.sim.poke_by_name(&reset.name, assert_v)?;
            self.sim.poke_by_name(&reset.name, deassert_v)?;
        }
        self.log.info(self.sim.time(), "driver", "reset sequence complete");
        Ok(())
    }

    /// One driven + checked cycle. This is the hot loop of the whole
    /// verification stack: the driver and monitors work through
    /// pre-resolved port ids, observations land in reused slot-ordered
    /// buffers, and the reference model reads/writes its [`IoFrame`] in
    /// place — the steady state performs no name lookups and no
    /// per-cycle allocations beyond the waveform frame.
    fn one_cycle(&mut self, cycle: usize, txn: &Transaction) -> Result<(), SimError> {
        self.in_agent.driver.drive_resolved(&mut self.sim, &self.in_ports, txn)?;
        if let Some(clk) = self.clock_id {
            self.sim.poke(clk, Logic::bit(true))?;
        }
        self.sim.settle()?;

        // Capture the post-edge state for the localization engine.
        if self.record_waveform {
            self.wave.capture(&self.sim);
        }

        self.in_agent.monitor.observe_slots(
            &self.sim,
            self.in_ports.iter().map(|(_, id, _)| *id),
            &mut self.inputs_buf,
        );
        self.out_monitor.observe_slots(
            &self.sim,
            self.out_ports.iter().map(|(_, id)| *id),
            &mut self.outputs_buf,
        );
        // Expected outputs start each cycle as all-X: a model that
        // skips a port expects "unknown", it does not inherit last
        // cycle's (possibly correct) value.
        for (slot, v) in self.expected_buf.iter_mut().enumerate() {
            *v = Logic::xs(self.spec.output_width(slot));
        }
        let mut frame = IoFrame::new(&self.inputs_buf, &mut self.expected_buf);
        self.refmodel.step(&mut frame);
        let time = self.sim.time();
        let before = self.scoreboard.mismatches().len();
        let ok = self.scoreboard.check_cycle(
            time,
            cycle,
            &self.spec,
            &self.expected_buf,
            &self.outputs_buf,
        );
        if !ok {
            let new = self.scoreboard.mismatches()[before..].to_vec();
            for m in &new {
                self.log.mismatch(m);
            }
        }
        self.coverage.sample(&self.inputs_buf, &self.outputs_buf);

        // Immediate assertions over the post-edge snapshot.
        if !self.assertions.is_empty() {
            let snapshot = self.sim.named_values();
            for a in &self.assertions {
                if !a.holds(&snapshot) {
                    self.assertion_failures += 1;
                    self.log.error(
                        time,
                        "assert",
                        format!("assertion '{}' failed: {}", a.name, a.text),
                    );
                }
            }
        }

        if let Some(clk) = self.clock_id {
            self.sim.poke(clk, Logic::bit(false))?;
        }
        self.sim.set_time(self.sim.time() + CYCLE_TIME);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::PortSig;
    use crate::refmodel::{FnModel, InSlot, OutSlot};
    use crate::sequence::{CornerSequence, RandomSequence};

    fn adder_iface() -> DutInterface {
        DutInterface::combinational(
            vec![PortSig::new("a", 8), PortSig::new("b", 8)],
            vec![PortSig::new("y", 9)],
        )
    }

    fn adder_model() -> Box<dyn RefModel> {
        Box::new(FnModel::new(|s: &IoSpec| {
            let (a, b, y) = (s.input("a"), s.input("b"), s.output("y"));
            move |io: &mut IoFrame<'_>| {
                let v = io.get(a) + io.get(b);
                io.set(y, v);
            }
        }))
    }

    const GOOD_ADDER: &str = "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
                              assign y = a + b;\nendmodule\n";
    const BAD_ADDER: &str = "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
                             assign y = a - b;\nendmodule\n";

    #[test]
    fn correct_dut_passes() {
        let iface = adder_iface();
        let seqs: Vec<Box<dyn Sequence>> = vec![
            Box::new(RandomSequence::new(&iface.inputs, 50, 42)),
            Box::new(CornerSequence::new(&iface.inputs)),
        ];
        let env =
            Environment::from_source(GOOD_ADDER, "add", iface, adder_model(), seqs).expect("env");
        let summary = env.run();
        assert!(summary.all_passed(), "log:\n{}", summary.log.render());
        assert!(summary.pass_rate > 0.999);
        assert!(summary.cycles >= 50);
        assert!(summary.input_coverage > 0.5);
    }

    #[test]
    fn buggy_dut_produces_mismatches_and_log() {
        let iface = adder_iface();
        let seqs: Vec<Box<dyn Sequence>> =
            vec![Box::new(RandomSequence::new(&iface.inputs, 30, 7))];
        let env =
            Environment::from_source(BAD_ADDER, "add", iface, adder_model(), seqs).expect("env");
        let summary = env.run();
        assert!(!summary.all_passed());
        assert!(summary.pass_rate < 0.5);
        assert!(!summary.mismatches.is_empty());
        let rendered = summary.log.render();
        assert!(rendered.contains("UVM_ERROR"));
        let parsed = UvmLog::parse_mismatches(&rendered);
        assert_eq!(parsed.len(), summary.mismatches.len());
        assert_eq!(parsed[0].1, "y");
        // Waveform recorded one frame per cycle.
        assert_eq!(summary.waveform.len(), summary.cycles);
    }

    #[test]
    fn sequential_counter_verified() {
        let src = "module c(input clk, input rst_n, input en, output reg [3:0] q);\n\
                   always @(posedge clk or negedge rst_n) begin\n\
                   if (!rst_n) q <= 4'd0;\nelse if (en) q <= q + 4'd1;\nend\nendmodule\n";
        #[derive(Default)]
        struct CounterModel {
            q: u128,
            en: InSlot,
            q_out: OutSlot,
        }
        impl RefModel for CounterModel {
            fn bind(&mut self, spec: &IoSpec) {
                self.en = spec.input("en");
                self.q_out = spec.output("q");
            }
            fn reset(&mut self) {
                self.q = 0;
            }
            fn step(&mut self, io: &mut IoFrame<'_>) {
                if io.get(self.en) == 1 {
                    self.q = (self.q + 1) & 0xf;
                }
                io.set(self.q_out, self.q);
            }
        }
        let iface = DutInterface::clocked(vec![PortSig::new("en", 1)], vec![PortSig::new("q", 4)]);
        let seqs: Vec<Box<dyn Sequence>> =
            vec![Box::new(RandomSequence::new(&iface.inputs, 100, 3))];
        let env = Environment::from_source(src, "c", iface, Box::<CounterModel>::default(), seqs)
            .expect("env");
        let summary = env.run();
        assert!(summary.all_passed(), "log:\n{}", summary.log.render());
    }

    #[test]
    fn assertions_catch_protocol_violations() {
        use crate::assertion::Assertion;
        let src = "module m(input clk, input rst_n, input en, output reg [3:0] q);\n\
                   always @(posedge clk or negedge rst_n) begin\n\
                   if (!rst_n) q <= 4'd0;\nelse if (en) q <= q + 4'd2;\nend\nendmodule\n";
        #[derive(Default)]
        struct M {
            q: u128,
            en: InSlot,
            q_out: OutSlot,
        }
        impl RefModel for M {
            fn bind(&mut self, spec: &IoSpec) {
                self.en = spec.input("en");
                self.q_out = spec.output("q");
            }
            fn reset(&mut self) {
                self.q = 0;
            }
            fn step(&mut self, io: &mut IoFrame<'_>) {
                if io.get(self.en) == 1 {
                    self.q = (self.q + 2) & 0xf;
                }
                io.set(self.q_out, self.q);
            }
        }
        let iface = DutInterface::clocked(vec![PortSig::new("en", 1)], vec![PortSig::new("q", 4)]);
        let seqs: Vec<Box<dyn Sequence>> =
            vec![Box::new(RandomSequence::new(&iface.inputs, 40, 5))];
        let env = Environment::from_source(src, "m", iface, Box::<M>::default(), seqs)
            .expect("env")
            .with_assertions(vec![
                Assertion::parse("q_even", "q[0] == 1'b0").expect("parse"),
                Assertion::parse("q_small", "q < 4'd15").expect("parse"),
            ]);
        let summary = env.run();
        // The DUT matches its model (both step by 2), so the scoreboard
        // passes — but the q_small assertion fires whenever q == 15
        // (never: q stays even), while q_even always holds.
        assert!(summary.all_passed());
        assert_eq!(summary.assertion_failures, 0);

        // Now assert something false and watch it fire.
        let iface = DutInterface::clocked(vec![PortSig::new("en", 1)], vec![PortSig::new("q", 4)]);
        let seqs: Vec<Box<dyn Sequence>> =
            vec![Box::new(RandomSequence::new(&iface.inputs, 40, 5))];
        let env = Environment::from_source(src, "m", iface, Box::<M>::default(), seqs)
            .expect("env")
            .with_assertions(vec![Assertion::parse("q_zero", "q == 4'd0").expect("parse")]);
        let summary = env.run();
        assert!(summary.assertion_failures > 0);
        assert!(summary.log.render().contains("assertion 'q_zero' failed"));
    }

    #[test]
    fn missing_port_is_reported() {
        let iface = DutInterface::combinational(
            vec![PortSig::new("a", 8), PortSig::new("nonexistent", 1)],
            vec![PortSig::new("y", 9)],
        );
        let err =
            Environment::from_source(GOOD_ADDER, "add", iface, adder_model(), vec![]).unwrap_err();
        assert_eq!(err, UvmError::MissingPort("nonexistent".to_string()));
    }

    #[test]
    fn mid_run_oscillation_aborts_cleanly() {
        // Two cross-coupled comb processes gated by `trig`: stable while
        // trig is 0, oscillating once a random vector drives trig high.
        let src = "module osc(input trig, output reg a, output reg b, output y);\n\
                   assign y = a;\n\
                   always @(*) begin\nif (trig) begin\ncase (b)\n1'b0: a = 1'b1;\n\
                   default: a = 1'b0;\nendcase\nend else\na = 1'b0;\nend\n\
                   always @(*) begin\nif (trig) begin\ncase (a)\n1'b0: b = 1'b0;\n\
                   default: b = 1'b1;\nendcase\nend else\nb = 1'b0;\nend\nendmodule\n";
        let iface =
            DutInterface::combinational(vec![PortSig::new("trig", 1)], vec![PortSig::new("y", 1)]);
        let model = FnModel::new(|s: &IoSpec| {
            let y = s.output("y");
            move |io: &mut IoFrame<'_>| io.set(y, 0)
        });
        let seqs: Vec<Box<dyn Sequence>> =
            vec![Box::new(RandomSequence::new(&iface.inputs, 50, 3))];
        let env = Environment::from_source(src, "osc", iface, Box::new(model), seqs)
            .expect("env builds: stable at reset");
        let summary = env.run();
        assert!(summary.aborted.is_some(), "oscillation must abort the run");
        assert!(summary.log.render().contains("aborted"));
        // The oscillation is reported structurally, with the activation
        // count pinned at the simulator's cap.
        assert_eq!(summary.unstable, Some(uvllm_sim::MAX_ACTIVATIONS));
        // The scoreboard keeps whatever cycles completed before the hang.
        assert!(summary.pass_rate <= 1.0);
    }

    #[test]
    fn both_backends_run_the_same_environment() {
        for backend in SimBackend::ALL {
            let iface = adder_iface();
            let seqs: Vec<Box<dyn Sequence>> =
                vec![Box::new(RandomSequence::new(&iface.inputs, 25, 11))];
            let env = Environment::from_source_with(
                GOOD_ADDER,
                "add",
                iface,
                adder_model(),
                seqs,
                backend,
            )
            .expect("env");
            assert_eq!(env.backend(), backend);
            let summary = env.run();
            assert!(summary.all_passed(), "{backend}: {}", summary.log.render());
        }
    }

    #[test]
    fn syntax_error_is_elab_error() {
        let iface = adder_iface();
        let err = Environment::from_source(
            "module add(input a, output y)\nendmodule\n",
            "add",
            iface,
            adder_model(),
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, UvmError::Elab(_)));
    }

    #[test]
    fn unwritten_outputs_are_expected_unknown() {
        // A model that never writes `y` expects all-X every cycle: it
        // must mismatch a driving DUT instead of silently passing.
        let iface = adder_iface();
        let model = FnModel::new(|_: &IoSpec| |_: &mut IoFrame<'_>| {});
        let seqs: Vec<Box<dyn Sequence>> =
            vec![Box::new(RandomSequence::new(&iface.inputs, 10, 9))];
        let env =
            Environment::from_source(GOOD_ADDER, "add", iface, Box::new(model), seqs).expect("env");
        let summary = env.run();
        assert!(!summary.all_passed());
        assert!(summary.mismatches.iter().all(|m| !m.expected.is_fully_known()));
    }
}
