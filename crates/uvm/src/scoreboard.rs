//! Scoreboard: per-cycle comparison of DUT outputs against the reference
//! model, plus functional coverage collection.

use std::collections::{BTreeMap, HashMap, HashSet};
use uvllm_sim::Logic;

/// One observed deviation between the DUT and the reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Simulation time at which the comparison was made.
    pub time: u64,
    /// Cycle index within the run.
    pub cycle: usize,
    /// Output signal that deviated.
    pub signal: String,
    pub expected: Logic,
    pub actual: Logic,
}

/// Accumulates comparison outcomes; its pass rate is the score the
/// rollback mechanism uses (§III-C of the paper).
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    checked_cycles: usize,
    passed_cycles: usize,
    mismatches: Vec<Mismatch>,
}

impl Scoreboard {
    /// New empty scoreboard.
    pub fn new() -> Self {
        Scoreboard::default()
    }

    /// Compares one cycle of outputs; records any mismatches.
    /// Returns `true` when the cycle passed.
    pub fn check_cycle(
        &mut self,
        time: u64,
        cycle: usize,
        expected: &BTreeMap<String, Logic>,
        actual: &BTreeMap<String, Logic>,
    ) -> bool {
        self.checked_cycles += 1;
        let mut ok = true;
        for (name, exp) in expected {
            let act = actual.get(name).copied().unwrap_or_else(|| Logic::xs(exp.width()));
            // Four-state aware comparison: values must be literally
            // identical (an X where a value was expected is a failure).
            if act.resize(exp.width()) != *exp {
                ok = false;
                self.mismatches.push(Mismatch {
                    time,
                    cycle,
                    signal: name.clone(),
                    expected: *exp,
                    actual: act,
                });
            }
        }
        if ok {
            self.passed_cycles += 1;
        }
        ok
    }

    /// Fraction of checked cycles that fully matched, in `[0, 1]`.
    /// An unchecked run scores 0.
    pub fn pass_rate(&self) -> f64 {
        if self.checked_cycles == 0 {
            0.0
        } else {
            self.passed_cycles as f64 / self.checked_cycles as f64
        }
    }

    /// Cycles compared so far.
    pub fn checked_cycles(&self) -> usize {
        self.checked_cycles
    }

    /// All recorded mismatches in time order.
    pub fn mismatches(&self) -> &[Mismatch] {
        &self.mismatches
    }

    /// Distinct mismatching signal names, in first-seen order.
    pub fn mismatch_signals(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for m in &self.mismatches {
            if seen.insert(m.signal.clone()) {
                out.push(m.signal.clone());
            }
        }
        out
    }

    /// True when every checked cycle passed (and at least one ran).
    pub fn all_passed(&self) -> bool {
        self.checked_cycles > 0 && self.mismatches.is_empty()
    }
}

/// Functional coverage: value bins per input and toggle coverage per
/// output, in the spirit of UVM covergroups.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// input name → (width, bins hit).
    input_bins: HashMap<String, (u32, HashSet<u32>)>,
    /// output name → (bits seen 0, bits seen 1).
    toggles: HashMap<String, (u128, u128)>,
    output_widths: HashMap<String, u32>,
}

/// Number of value bins per input signal.
const BINS: u32 = 16;

impl Coverage {
    /// New empty coverage collector.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Samples one cycle of activity.
    ///
    /// Runs every checked cycle, so it must not allocate in the steady
    /// state: names are cloned only the first time a signal is seen.
    pub fn sample(&mut self, inputs: &BTreeMap<String, Logic>, outputs: &BTreeMap<String, Logic>) {
        for (name, v) in inputs {
            let entry = match self.input_bins.get_mut(name) {
                Some(e) => e,
                None => self
                    .input_bins
                    .entry(name.clone())
                    .or_insert_with(|| (v.width(), HashSet::new())),
            };
            if let Some(val) = v.to_u128() {
                let w = entry.0;
                let total = if w >= 32 { u128::MAX } else { 1u128 << w };
                let nbins = total.min(BINS as u128) as u32;
                let bin = if total <= BINS as u128 {
                    val as u32
                } else {
                    // Equal-width bins over the value space.
                    ((val.saturating_mul(nbins as u128)) / total) as u32
                };
                entry.1.insert(bin.min(nbins - 1));
            }
        }
        for (name, v) in outputs {
            if !self.output_widths.contains_key(name) {
                self.output_widths.insert(name.clone(), v.width());
            }
            let entry = match self.toggles.get_mut(name) {
                Some(e) => e,
                None => self.toggles.entry(name.clone()).or_insert((0, 0)),
            };
            let known = !v.xz();
            entry.0 |= !v.val() & known & uvllm_sim::logic::mask(v.width());
            entry.1 |= v.val() & known;
        }
    }

    /// Fraction of input value bins hit, in `[0, 1]`.
    pub fn input_coverage(&self) -> f64 {
        if self.input_bins.is_empty() {
            return 1.0;
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for (w, bins) in self.input_bins.values() {
            let space = if *w >= 32 { BINS } else { (1u64 << w).min(BINS as u64) as u32 };
            total += space as usize;
            hit += bins.len().min(space as usize);
        }
        hit as f64 / total as f64
    }

    /// Fraction of output bits observed at both 0 and 1, in `[0, 1]`.
    pub fn toggle_coverage(&self) -> f64 {
        if self.toggles.is_empty() {
            return 1.0;
        }
        let mut toggled = 0u32;
        let mut total = 0u32;
        for (name, (zeros, ones)) in &self.toggles {
            let w = self.output_widths.get(name).copied().unwrap_or(1);
            total += w;
            toggled += (zeros & ones).count_ones().min(w);
        }
        if total == 0 {
            1.0
        } else {
            toggled as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(pairs: &[(&str, u32, u128)]) -> BTreeMap<String, Logic> {
        pairs.iter().map(|(n, w, v)| (n.to_string(), Logic::from_u128(*w, *v))).collect()
    }

    #[test]
    fn scoreboard_tracks_pass_rate() {
        let mut sb = Scoreboard::new();
        let exp = vals(&[("y", 8, 10)]);
        assert!(sb.check_cycle(0, 0, &exp, &vals(&[("y", 8, 10)])));
        assert!(!sb.check_cycle(10, 1, &exp, &vals(&[("y", 8, 11)])));
        assert!((sb.pass_rate() - 0.5).abs() < 1e-9);
        assert_eq!(sb.mismatches().len(), 1);
        assert_eq!(sb.mismatch_signals(), vec!["y".to_string()]);
        assert!(!sb.all_passed());
    }

    #[test]
    fn x_output_counts_as_mismatch() {
        let mut sb = Scoreboard::new();
        let exp = vals(&[("y", 4, 0)]);
        let mut act = BTreeMap::new();
        act.insert("y".to_string(), Logic::xs(4));
        assert!(!sb.check_cycle(0, 0, &exp, &act));
    }

    #[test]
    fn missing_output_is_mismatch() {
        let mut sb = Scoreboard::new();
        let exp = vals(&[("y", 4, 2)]);
        assert!(!sb.check_cycle(0, 0, &exp, &BTreeMap::new()));
    }

    #[test]
    fn empty_scoreboard_scores_zero() {
        assert_eq!(Scoreboard::new().pass_rate(), 0.0);
        assert!(!Scoreboard::new().all_passed());
    }

    #[test]
    fn coverage_bins_fill_up() {
        let mut cov = Coverage::new();
        // 1-bit input: two bins.
        cov.sample(&vals(&[("a", 1, 0)]), &vals(&[("y", 1, 0)]));
        assert!(cov.input_coverage() < 1.0);
        cov.sample(&vals(&[("a", 1, 1)]), &vals(&[("y", 1, 1)]));
        assert!((cov.input_coverage() - 1.0).abs() < 1e-9);
        assert!((cov.toggle_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn toggle_requires_both_values() {
        let mut cov = Coverage::new();
        cov.sample(&BTreeMap::new(), &vals(&[("y", 2, 0b01)]));
        // Bit0 saw 1, bit1 saw 0 — nothing toggled yet.
        assert_eq!(cov.toggle_coverage(), 0.0);
        cov.sample(&BTreeMap::new(), &vals(&[("y", 2, 0b10)]));
        assert!((cov.toggle_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_input_bins_are_bucketed() {
        let mut cov = Coverage::new();
        for v in 0..=255u128 {
            cov.sample(&vals(&[("a", 8, v)]), &BTreeMap::new());
        }
        assert!((cov.input_coverage() - 1.0).abs() < 1e-9);
    }
}
