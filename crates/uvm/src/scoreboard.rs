//! Scoreboard: per-cycle comparison of DUT outputs against the reference
//! model, plus functional coverage collection.
//!
//! Both collectors work over the environment's slot-ordered observation
//! buffers (see [`crate::refmodel::IoSpec`]): the comparison loop walks
//! two `Logic` slices index by index, so the steady state performs no
//! name lookups and no allocations — names are materialised only when a
//! mismatch is actually recorded.

use crate::refmodel::IoSpec;
use std::collections::HashSet;
use uvllm_sim::Logic;

/// One observed deviation between the DUT and the reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Simulation time at which the comparison was made.
    pub time: u64,
    /// Cycle index within the run.
    pub cycle: usize,
    /// Output signal that deviated.
    pub signal: String,
    pub expected: Logic,
    pub actual: Logic,
}

/// Accumulates comparison outcomes; its pass rate is the score the
/// rollback mechanism uses (§III-C of the paper).
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    checked_cycles: usize,
    passed_cycles: usize,
    mismatches: Vec<Mismatch>,
}

impl Scoreboard {
    /// New empty scoreboard.
    pub fn new() -> Self {
        Scoreboard::default()
    }

    /// Compares one cycle of outputs, slot by slot; records any
    /// mismatches. `expected` and `actual` must be in `spec` output-slot
    /// order. Returns `true` when the cycle passed.
    pub fn check_cycle(
        &mut self,
        time: u64,
        cycle: usize,
        spec: &IoSpec,
        expected: &[Logic],
        actual: &[Logic],
    ) -> bool {
        self.checked_cycles += 1;
        let mut ok = true;
        for (slot, exp) in expected.iter().enumerate() {
            let act = actual[slot];
            // Four-state aware comparison: values must be literally
            // identical (an X where a value was expected is a failure).
            if act.resize(exp.width()) != *exp {
                ok = false;
                self.mismatches.push(Mismatch {
                    time,
                    cycle,
                    signal: spec.output_name(slot).to_string(),
                    expected: *exp,
                    actual: act,
                });
            }
        }
        if ok {
            self.passed_cycles += 1;
        }
        ok
    }

    /// Fraction of checked cycles that fully matched, in `[0, 1]`.
    /// An unchecked run scores 0.
    pub fn pass_rate(&self) -> f64 {
        if self.checked_cycles == 0 {
            0.0
        } else {
            self.passed_cycles as f64 / self.checked_cycles as f64
        }
    }

    /// Cycles compared so far.
    pub fn checked_cycles(&self) -> usize {
        self.checked_cycles
    }

    /// All recorded mismatches in time order.
    pub fn mismatches(&self) -> &[Mismatch] {
        &self.mismatches
    }

    /// Distinct mismatching signal names, in first-seen order.
    pub fn mismatch_signals(&self) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for m in &self.mismatches {
            if seen.insert(m.signal.clone()) {
                out.push(m.signal.clone());
            }
        }
        out
    }

    /// True when every checked cycle passed (and at least one ran).
    pub fn all_passed(&self) -> bool {
        self.checked_cycles > 0 && self.mismatches.is_empty()
    }
}

/// Functional coverage: value bins per input and toggle coverage per
/// output, in the spirit of UVM covergroups.
///
/// Collectors are slot-indexed vectors sized on first sample, so the
/// per-cycle path is plain indexing — no hashing, no name lookups, and
/// (after the bin sets warm up) no allocations.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Input slot → (width, bins hit).
    input_bins: Vec<(u32, HashSet<u32>)>,
    /// Output slot → (width, bits seen 0, bits seen 1).
    toggles: Vec<(u32, u128, u128)>,
}

/// Number of value bins per input signal.
const BINS: u32 = 16;

impl Coverage {
    /// New empty coverage collector.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Samples one cycle of activity over slot-ordered buffers. Widths
    /// are captured from the first sample; collectors grow only if the
    /// slot count does (i.e. never, in the steady state).
    pub fn sample(&mut self, inputs: &[Logic], outputs: &[Logic]) {
        if self.input_bins.len() < inputs.len() {
            self.input_bins.resize_with(inputs.len(), || (0, HashSet::new()));
        }
        if self.toggles.len() < outputs.len() {
            self.toggles.resize(outputs.len(), (0, 0, 0));
        }
        for (slot, v) in inputs.iter().enumerate() {
            let entry = &mut self.input_bins[slot];
            if entry.0 == 0 {
                entry.0 = v.width();
            }
            if let Some(val) = v.to_u128() {
                let w = entry.0;
                let total = if w >= 32 { u128::MAX } else { 1u128 << w };
                let nbins = total.min(BINS as u128) as u32;
                let bin = if total <= BINS as u128 {
                    val as u32
                } else {
                    // Equal-width bins over the value space.
                    ((val.saturating_mul(nbins as u128)) / total) as u32
                };
                entry.1.insert(bin.min(nbins - 1));
            }
        }
        for (slot, v) in outputs.iter().enumerate() {
            let entry = &mut self.toggles[slot];
            if entry.0 == 0 {
                entry.0 = v.width();
            }
            let known = !v.xz();
            entry.1 |= !v.val() & known & uvllm_sim::logic::mask(v.width());
            entry.2 |= v.val() & known;
        }
    }

    /// Fraction of input value bins hit, in `[0, 1]`.
    pub fn input_coverage(&self) -> f64 {
        if self.input_bins.is_empty() {
            return 1.0;
        }
        let mut hit = 0usize;
        let mut total = 0usize;
        for (w, bins) in &self.input_bins {
            let space = if *w >= 32 { BINS } else { (1u64 << w).min(BINS as u64) as u32 };
            total += space as usize;
            hit += bins.len().min(space as usize);
        }
        hit as f64 / total as f64
    }

    /// Fraction of output bits observed at both 0 and 1, in `[0, 1]`.
    pub fn toggle_coverage(&self) -> f64 {
        if self.toggles.is_empty() {
            return 1.0;
        }
        let mut toggled = 0u32;
        let mut total = 0u32;
        for (w, zeros, ones) in &self.toggles {
            let w = (*w).max(1);
            total += w;
            toggled += (zeros & ones).count_ones().min(w);
        }
        if total == 0 {
            1.0
        } else {
            toggled as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::PortSig;

    fn spec_y(width: u32) -> IoSpec {
        IoSpec::from_ports(&[], &[PortSig::new("y", width)])
    }

    fn vals(pairs: &[(u32, u128)]) -> Vec<Logic> {
        pairs.iter().map(|(w, v)| Logic::from_u128(*w, *v)).collect()
    }

    #[test]
    fn scoreboard_tracks_pass_rate() {
        let spec = spec_y(8);
        let mut sb = Scoreboard::new();
        let exp = vals(&[(8, 10)]);
        assert!(sb.check_cycle(0, 0, &spec, &exp, &vals(&[(8, 10)])));
        assert!(!sb.check_cycle(10, 1, &spec, &exp, &vals(&[(8, 11)])));
        assert!((sb.pass_rate() - 0.5).abs() < 1e-9);
        assert_eq!(sb.mismatches().len(), 1);
        assert_eq!(sb.mismatch_signals(), vec!["y".to_string()]);
        assert!(!sb.all_passed());
    }

    #[test]
    fn x_output_counts_as_mismatch() {
        let spec = spec_y(4);
        let mut sb = Scoreboard::new();
        let exp = vals(&[(4, 0)]);
        assert!(!sb.check_cycle(0, 0, &spec, &exp, &[Logic::xs(4)]));
    }

    #[test]
    fn expected_x_matches_actual_x_only() {
        // A model that expects unknown (e.g. an unwritten RAM word)
        // passes against an X DUT output and fails against a value.
        let spec = spec_y(4);
        let mut sb = Scoreboard::new();
        assert!(sb.check_cycle(0, 0, &spec, &[Logic::xs(4)], &[Logic::xs(4)]));
        assert!(!sb.check_cycle(10, 1, &spec, &[Logic::xs(4)], &vals(&[(4, 2)])[..]));
    }

    #[test]
    fn narrow_actual_is_resized_for_comparison() {
        // A mutated DUT whose port shrank: `resize` zero-extends, so
        // the comparison passes while the expected high bits are 0 and
        // fails as soon as the expectation carries a 1 in a truncated
        // bit — a narrowed port is caught only when the value space
        // actually needs the missing bits.
        let spec = spec_y(8);
        let mut sb = Scoreboard::new();
        let exp = vals(&[(8, 3)]);
        assert!(sb.check_cycle(0, 0, &spec, &exp, &vals(&[(4, 3)])));
        assert!(!sb.check_cycle(10, 1, &spec, &vals(&[(8, 0x83)]), &vals(&[(4, 3)])));
    }

    #[test]
    fn empty_scoreboard_scores_zero() {
        assert_eq!(Scoreboard::new().pass_rate(), 0.0);
        assert!(!Scoreboard::new().all_passed());
    }

    #[test]
    fn coverage_bins_fill_up() {
        let mut cov = Coverage::new();
        // 1-bit input: two bins.
        cov.sample(&vals(&[(1, 0)]), &vals(&[(1, 0)]));
        assert!(cov.input_coverage() < 1.0);
        cov.sample(&vals(&[(1, 1)]), &vals(&[(1, 1)]));
        assert!((cov.input_coverage() - 1.0).abs() < 1e-9);
        assert!((cov.toggle_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn toggle_requires_both_values() {
        let mut cov = Coverage::new();
        cov.sample(&[], &vals(&[(2, 0b01)]));
        // Bit0 saw 1, bit1 saw 0 — nothing toggled yet.
        assert_eq!(cov.toggle_coverage(), 0.0);
        cov.sample(&[], &vals(&[(2, 0b10)]));
        assert!((cov.toggle_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_input_bins_are_bucketed() {
        let mut cov = Coverage::new();
        for v in 0..=255u128 {
            cov.sample(&vals(&[(8, v)]), &[]);
        }
        assert!((cov.input_coverage() - 1.0).abs() < 1e-9);
    }
}
