//! UVM-style simulation log: the artefact the post-processing stage
//! parses (Algorithm 2's `getMismatch` consumes these lines).

use crate::scoreboard::Mismatch;
use std::fmt;

/// Log severity, following UVM report levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UvmSeverity {
    Info,
    Warning,
    Error,
    Fatal,
}

impl fmt::Display for UvmSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UvmSeverity::Info => "UVM_INFO",
            UvmSeverity::Warning => "UVM_WARNING",
            UvmSeverity::Error => "UVM_ERROR",
            UvmSeverity::Fatal => "UVM_FATAL",
        })
    }
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    pub severity: UvmSeverity,
    pub time: u64,
    /// Emitting component, e.g. `scoreboard`, `driver`.
    pub component: String,
    pub message: String,
}

impl LogEntry {
    /// Renders in UVM log style:
    /// `UVM_ERROR @ 125 [scoreboard] mismatch on signal 'sum': …`.
    pub fn render(&self) -> String {
        format!("{} @ {} [{}] {}", self.severity, self.time, self.component, self.message)
    }
}

/// The whole log of one UVM run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UvmLog {
    pub entries: Vec<LogEntry>,
}

impl UvmLog {
    /// New empty log.
    pub fn new() -> Self {
        UvmLog::default()
    }

    /// Appends an info entry.
    pub fn info(&mut self, time: u64, component: &str, message: impl Into<String>) {
        self.entries.push(LogEntry {
            severity: UvmSeverity::Info,
            time,
            component: component.to_string(),
            message: message.into(),
        });
    }

    /// Appends an error entry.
    pub fn error(&mut self, time: u64, component: &str, message: impl Into<String>) {
        self.entries.push(LogEntry {
            severity: UvmSeverity::Error,
            time,
            component: component.to_string(),
            message: message.into(),
        });
    }

    /// Records a scoreboard mismatch in the canonical format parsed by
    /// the localization engine. The signal name is quote-escaped so
    /// [`UvmLog::parse_mismatches`] recovers it byte-exactly whatever
    /// characters it contains.
    pub fn mismatch(&mut self, m: &Mismatch) {
        self.entries.push(LogEntry {
            severity: UvmSeverity::Error,
            time: m.time,
            component: "scoreboard".to_string(),
            message: format!(
                "mismatch on signal '{}': expected {} actual {}",
                escape_signal(&m.signal),
                m.expected,
                m.actual
            ),
        });
    }

    /// Number of error entries.
    pub fn error_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.severity, UvmSeverity::Error | UvmSeverity::Fatal))
            .count()
    }

    /// Renders the full log.
    pub fn render(&self) -> String {
        self.entries.iter().map(LogEntry::render).collect::<Vec<_>>().join("\n")
    }

    /// Parses mismatch lines back out of a rendered log:
    /// `(time, signal, expected, actual)` as strings. This mirrors the
    /// `PAT_MS` pattern matching of Algorithm 2.
    pub fn parse_mismatches(rendered: &str) -> Vec<(u64, String, String, String)> {
        let mut out = Vec::new();
        for line in rendered.lines() {
            if !line.starts_with("UVM_ERROR") {
                continue;
            }
            let Some(time) = line
                .split('@')
                .nth(1)
                .and_then(|s| s.trim().split(' ').next())
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            let Some(rest) = line.split("mismatch on signal '").nth(1) else { continue };
            let Some((signal, tail)) = split_quoted(rest) else { continue };
            let expected = tail
                .split("expected ")
                .nth(1)
                .and_then(|s| s.split(' ').next())
                .unwrap_or_default();
            let actual =
                tail.split("actual ").nth(1).and_then(|s| s.split(' ').next()).unwrap_or_default();
            out.push((time, signal, expected.to_string(), actual.to_string()));
        }
        out
    }
}

/// Escapes a signal name for embedding between single quotes:
/// `\` → `\\`, `'` → `\'`. Inverse of the scan in [`split_quoted`].
fn escape_signal(signal: &str) -> String {
    let mut out = String::with_capacity(signal.len());
    for c in signal.chars() {
        if c == '\\' || c == '\'' {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Splits `rest` at its first *unescaped* closing quote, returning the
/// unescaped signal name and the tail after the quote.
fn split_quoted(rest: &str) -> Option<(String, &str)> {
    let mut signal = String::new();
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            signal.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '\'' {
            return Some((signal, &rest[i + 1..]));
        } else {
            signal.push(c);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_sim::Logic;

    #[test]
    fn render_and_parse_round_trip() {
        let mut log = UvmLog::new();
        log.info(0, "driver", "reset released");
        log.mismatch(&Mismatch {
            time: 125,
            cycle: 12,
            signal: "sum".to_string(),
            expected: Logic::from_u128(8, 0x1a),
            actual: Logic::from_u128(8, 0x0a),
        });
        let rendered = log.render();
        assert!(rendered.contains("UVM_ERROR @ 125 [scoreboard]"));
        let parsed = UvmLog::parse_mismatches(&rendered);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, 125);
        assert_eq!(parsed[0].1, "sum");
        assert_eq!(parsed[0].2, "8'h1a");
        assert_eq!(parsed[0].3, "8'h0a");
    }

    #[test]
    fn error_count_ignores_info() {
        let mut log = UvmLog::new();
        log.info(0, "env", "starting");
        log.error(5, "scoreboard", "boom");
        assert_eq!(log.error_count(), 1);
    }

    #[test]
    fn parse_skips_malformed_lines() {
        let parsed = UvmLog::parse_mismatches("UVM_ERROR nonsense\nplain text\n");
        assert!(parsed.is_empty());
        // An unterminated quote is malformed, not a panic or a bogus row.
        let parsed = UvmLog::parse_mismatches(
            "UVM_ERROR @ 5 [scoreboard] mismatch on signal 'dangling: expected 1 actual 0",
        );
        assert!(parsed.is_empty());
    }

    #[test]
    fn awkward_signal_names_round_trip_exactly() {
        // Names with spaces, '=', quotes and backslashes used to render
        // unescaped, silently truncating the parsed signal (and with a
        // stray quote, corrupting the expected/actual fields too).
        for signal in ["bus [3]", "a=b", "don't", "path\\leaf", "mix 'q' = \\x", "it's 'nested'"] {
            let mut log = UvmLog::new();
            log.mismatch(&Mismatch {
                time: 7,
                cycle: 1,
                signal: signal.to_string(),
                expected: Logic::from_u128(4, 0x3),
                actual: Logic::from_u128(4, 0x1),
            });
            let parsed = UvmLog::parse_mismatches(&log.render());
            assert_eq!(parsed.len(), 1, "signal {signal:?}");
            assert_eq!(parsed[0].1, signal, "signal must round-trip byte-exactly");
            assert_eq!(parsed[0].2, "4'h3", "expected field intact for {signal:?}");
            assert_eq!(parsed[0].3, "4'h1", "actual field intact for {signal:?}");
        }
    }
}
