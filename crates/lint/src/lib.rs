//! # uvllm-lint
//!
//! Verilator-style static linter for the UVLLM pre-processing stage
//! (§III-A of the paper, Algorithm 1).
//!
//! [`lint`] analyses a Verilog source and returns a [`LintReport`] of
//! [`Diagnostic`]s rendered in compiler-log style. Errors (syntax
//! failures, undeclared identifiers, bad instantiations) must be repaired
//! by an LLM agent; a subset of warnings — notably `COMBDLY`
//! (non-blocking assignment in combinational logic) and `BLKSEQ`
//! (blocking assignment in sequential logic) — carry scripted
//! [`diag::TextFix`] templates that [`apply_fixes`] applies without any
//! LLM involvement, exactly the joint LLM-script split the paper
//! describes.
//!
//! ## Example
//!
//! ```rust
//! use uvllm_lint::{apply_fixes, lint};
//!
//! let src = "module m(input a, input b, output reg y);\n\
//!            always @(*) y <= a & b;\nendmodule\n";
//! let report = lint(src);
//! assert!(!report.is_clean());
//! let (fixed, n) = apply_fixes(src, &report);
//! assert_eq!(n, 1);
//! assert!(lint(&fixed).is_clean());
//! ```

pub mod diag;
pub mod fix;
pub mod rules;

pub use diag::{Diagnostic, LintCode, LintReport, Severity, TextFix};
pub use fix::{apply_fix, apply_fixes};
pub use rules::lint;
