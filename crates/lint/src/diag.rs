//! Diagnostic types rendered in Verilator log style.

use std::fmt;
use uvllm_verilog::span::{LineMap, Span};

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Blocks simulation; must be repaired (by the LLM agent).
    Error,
    /// Style / latent-bug warning; may have a scripted fix template.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "Error",
            Severity::Warning => "Warning",
        })
    }
}

/// Machine-readable diagnostic codes, mirroring Verilator's taxonomy
/// where an equivalent exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// Lex/parse failure.
    Syntax,
    /// Identifier read or written without a declaration.
    Undeclared,
    /// Instantiated module not found in the file.
    UnknownModule,
    /// Named connection to a port the module does not have.
    UnknownPort,
    /// More positional connections than ports.
    PortCount,
    /// Connection width differs from port width.
    PortWidth,
    /// Non-blocking assignment in combinational logic (Verilator
    /// `COMBDLY`); scripted fix: `<=` → `=`.
    CombDly,
    /// Blocking assignment in sequential logic (Verilator `BLKSEQ`);
    /// scripted fix: `=` → `<=`.
    BlkSeq,
    /// Sized literal wider than the assignment target (`WIDTHTRUNC`).
    WidthTrunc,
    /// Level-sensitive block whose sensitivity list misses read signals.
    MissingSens,
    /// `case` without `default` that does not cover the selector space.
    CaseIncomplete,
    /// Output port that is never driven.
    Undriven,
    /// Signal written by more than one continuous driver.
    MultiDriven,
    /// Signal assigned on some but not all paths of combinational logic.
    Latch,
    /// Declared but never read.
    Unused,
    /// Procedural assignment to a net (must be declared `reg`).
    ProcWire,
}

impl LintCode {
    /// Verilator-style tag (used in rendered messages).
    pub fn tag(&self) -> &'static str {
        match self {
            LintCode::Syntax => "SYNTAX",
            LintCode::Undeclared => "UNDECLARED",
            LintCode::UnknownModule => "MODMISSING",
            LintCode::UnknownPort => "PINNOTFOUND",
            LintCode::PortCount => "PINMISSING",
            LintCode::PortWidth => "WIDTH",
            LintCode::CombDly => "COMBDLY",
            LintCode::BlkSeq => "BLKSEQ",
            LintCode::WidthTrunc => "WIDTHTRUNC",
            LintCode::MissingSens => "SYNCASYNCNET",
            LintCode::CaseIncomplete => "CASEINCOMPLETE",
            LintCode::Undriven => "UNDRIVEN",
            LintCode::MultiDriven => "MULTIDRIVEN",
            LintCode::Latch => "LATCH",
            LintCode::Unused => "UNUSEDSIGNAL",
            LintCode::ProcWire => "PROCASSWIRE",
        }
    }
}

/// A scripted textual fix: replace `span` with `replacement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextFix {
    pub span: Span,
    pub replacement: String,
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub code: LintCode,
    pub message: String,
    pub span: Span,
    /// Template fix applied by the pre-processing scripts, when one is
    /// known (Algorithm 1's `Replace` step).
    pub fix: Option<TextFix>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(code: LintCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, code, message: message.into(), span, fix: None }
    }

    /// Creates a warning diagnostic.
    pub fn warning(code: LintCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, code, message: message.into(), span, fix: None }
    }

    /// Attaches a scripted fix.
    pub fn with_fix(mut self, span: Span, replacement: impl Into<String>) -> Self {
        self.fix = Some(TextFix { span, replacement: replacement.into() });
        self
    }

    /// Renders in Verilator log style against `src`:
    /// `%Warning-COMBDLY: dut.v:12:5: message`.
    pub fn render(&self, src: &str) -> String {
        let map = LineMap::new(src);
        let (line, col) = map.line_col(self.span.start);
        format!("%{}-{}: dut.v:{}:{}: {}", self.severity, self.code.tag(), line, col, self.message)
    }

    /// 1-based source line of the finding.
    pub fn line(&self, src: &str) -> u32 {
        LineMap::new(src).line(self.span.start)
    }
}

/// The result of linting one source file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintReport {
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// All error-severity findings.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).collect()
    }

    /// All warning-severity findings.
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).collect()
    }

    /// Warnings that carry a scripted fix template — the subset the
    /// pre-processing stage repairs without an LLM.
    pub fn fixable_warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning && d.fix.is_some())
            .collect()
    }

    /// True when the file has no errors and no fixable warnings — the
    /// Algorithm 1 loop exit condition.
    pub fn is_clean(&self) -> bool {
        self.errors().is_empty() && self.fixable_warnings().is_empty()
    }

    /// Renders the full report as a compiler log.
    pub fn render(&self, src: &str) -> String {
        self.diagnostics.iter().map(|d| d.render(src)).collect::<Vec<_>>().join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_format() {
        let src = "module m;\nwire w;\nendmodule\n";
        let d = Diagnostic::warning(LintCode::Unused, Span::new(10, 16), "signal 'w' unused");
        let s = d.render(src);
        assert!(s.starts_with("%Warning-UNUSEDSIGNAL: dut.v:2:1"), "got {s}");
    }

    #[test]
    fn report_partitions() {
        let mut r = LintReport::default();
        r.diagnostics.push(Diagnostic::error(LintCode::Syntax, Span::point(0), "boom"));
        r.diagnostics.push(
            Diagnostic::warning(LintCode::CombDly, Span::new(1, 3), "nb in comb")
                .with_fix(Span::new(1, 3), "="),
        );
        r.diagnostics.push(Diagnostic::warning(LintCode::Unused, Span::point(5), "unused"));
        assert_eq!(r.errors().len(), 1);
        assert_eq!(r.warnings().len(), 2);
        assert_eq!(r.fixable_warnings().len(), 1);
        assert!(!r.is_clean());
    }
}
