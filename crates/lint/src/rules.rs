//! Lint passes over the AST.

use crate::diag::{Diagnostic, LintCode, LintReport};
use std::collections::{HashMap, HashSet};
use uvllm_verilog::ast::*;
use uvllm_verilog::lexer::tokenize;
use uvllm_verilog::span::Span;
use uvllm_verilog::token::TokenKind;
use uvllm_verilog::visit::{walk_expr, Visitor};
use uvllm_verilog::{parse, SourceFile};

/// Lints `src`, returning every finding.
///
/// A lex/parse failure produces a single [`LintCode::Syntax`] error (the
/// file cannot be analysed further), mirroring how a real compiler stops
/// at the first syntax error.
pub fn lint(src: &str) -> LintReport {
    let mut report = LintReport::default();
    let file = match parse(src) {
        Ok(f) => f,
        Err(e) => {
            report.diagnostics.push(Diagnostic::error(LintCode::Syntax, e.span, e.message.clone()));
            return report;
        }
    };
    for module in &file.modules {
        lint_module(src, &file, module, &mut report);
    }
    report
}

/// Declared-name table for one module.
struct Symbols {
    /// name → declared width (None when unknown).
    widths: HashMap<String, Option<u32>>,
    params: HashSet<String>,
    /// Names with `reg`/`integer` storage (procedurally assignable).
    regs: HashSet<String>,
}

impl Symbols {
    fn build(module: &Module) -> Self {
        let mut widths = HashMap::new();
        let mut params = HashSet::new();
        let mut regs = HashSet::new();
        for p in &module.ports {
            widths.insert(p.name.clone(), range_width(&p.range));
            if p.net == NetKind::Reg {
                regs.insert(p.name.clone());
            }
        }
        for item in &module.items {
            match item {
                Item::Net(d) => {
                    for decl in &d.decls {
                        widths.entry(decl.name.clone()).or_insert_with(|| range_width(&d.range));
                        if d.kind == NetKind::Reg {
                            regs.insert(decl.name.clone());
                        }
                    }
                }
                Item::Integer(d) => {
                    for n in &d.names {
                        widths.insert(n.clone(), Some(32));
                        regs.insert(n.clone());
                    }
                }
                Item::Param(p) => {
                    for (n, _) in &p.params {
                        widths.insert(n.clone(), Some(32));
                        params.insert(n.clone());
                    }
                }
                _ => {}
            }
        }
        Symbols { widths, params, regs }
    }

    fn contains(&self, name: &str) -> bool {
        self.widths.contains_key(name)
    }

    fn width(&self, name: &str) -> Option<u32> {
        self.widths.get(name).copied().flatten()
    }
}

fn range_width(range: &Option<Range>) -> Option<u32> {
    match range {
        None => Some(1),
        Some(r) => match (lit_value(&r.msb), lit_value(&r.lsb)) {
            (Some(m), Some(l)) => Some(m.abs_diff(l) as u32 + 1),
            _ => None,
        },
    }
}

fn lit_value(e: &Expr) -> Option<i64> {
    match e {
        Expr::Number(n) if n.xz == 0 => Some(n.value as i64),
        Expr::Unary(UnaryOp::Neg, inner) => lit_value(inner).map(|v| -v),
        Expr::Binary(op, a, b) => {
            let x = lit_value(a)?;
            let y = lit_value(b)?;
            Some(match op {
                BinaryOp::Add => x + y,
                BinaryOp::Sub => x - y,
                BinaryOp::Mul => x * y,
                _ => return None,
            })
        }
        _ => None,
    }
}

fn lint_module(src: &str, file: &SourceFile, module: &Module, report: &mut LintReport) {
    let symbols = Symbols::build(module);
    check_undeclared(module, &symbols, report);
    check_proc_wire(module, &symbols, report);
    check_instances(file, module, &symbols, report);
    check_assign_kinds(src, module, report);
    check_width_trunc(module, &symbols, report);
    check_missing_sens(src, module, report);
    check_case_completeness(module, &symbols, report);
    check_drivers(module, report);
    check_latches(module, report);
    check_unused(module, &symbols, report);
}

// ----------------------------------------------------------------------
// Undeclared identifiers
// ----------------------------------------------------------------------

fn check_undeclared(module: &Module, symbols: &Symbols, report: &mut LintReport) {
    struct U<'a> {
        symbols: &'a Symbols,
        loop_vars: HashSet<String>,
        found: Vec<(String, Span)>,
        current_span: Span,
    }
    impl Visitor for U<'_> {
        fn visit_stmt(&mut self, stmt: &Stmt) {
            let prev = self.current_span;
            self.current_span = stmt.span();
            if let Stmt::For(f) = stmt {
                // For-loop variables may be implicitly used even when the
                // `integer` declaration was dropped by a mutation; they
                // are still reported (Verilator does too), so no special
                // casing beyond tracking them once.
                for n in f.init.0.base_names() {
                    self.loop_vars.insert(n.to_string());
                }
            }
            uvllm_verilog::visit::walk_stmt(self, stmt);
            self.current_span = prev;
        }
        fn visit_expr(&mut self, expr: &Expr) {
            if let Expr::Ident(name) = expr {
                if !self.symbols.contains(name) {
                    self.found.push((name.clone(), self.current_span));
                }
            }
            walk_expr(self, expr);
        }
        fn visit_lvalue(&mut self, lv: &LValue) {
            for name in lv.base_names() {
                if !self.symbols.contains(name) {
                    self.found.push((name.to_string(), lv.span()));
                }
            }
            uvllm_verilog::visit::walk_lvalue(self, lv);
        }
    }
    let mut u =
        U { symbols, loop_vars: HashSet::new(), found: Vec::new(), current_span: module.span };
    for item in &module.items {
        // Instance connections reference parent-scope signals; port
        // names themselves are checked separately.
        u.current_span = item.span();
        u.visit_item(item);
    }
    // Sensitivity lists.
    for item in &module.items {
        if let Item::Always(a) = item {
            if let Sensitivity::List(items) = &a.sensitivity {
                for s in items {
                    if !symbols.contains(&s.signal) {
                        u.found.push((s.signal.clone(), s.span));
                    }
                }
            }
        }
    }
    let mut seen = HashSet::new();
    for (name, span) in u.found {
        if seen.insert(name.clone()) {
            report.diagnostics.push(Diagnostic::error(
                LintCode::Undeclared,
                span,
                format!("signal '{name}' is used but not declared"),
            ));
        }
    }
}

// ----------------------------------------------------------------------
// Procedural assignment to nets
// ----------------------------------------------------------------------

fn check_proc_wire(module: &Module, symbols: &Symbols, report: &mut LintReport) {
    struct P<'a> {
        symbols: &'a Symbols,
        report: &'a mut LintReport,
    }
    impl Visitor for P<'_> {
        fn visit_stmt(&mut self, stmt: &Stmt) {
            if let Stmt::Blocking(a) | Stmt::NonBlocking(a) = stmt {
                for name in a.lhs.base_names() {
                    if self.symbols.contains(name) && !self.symbols.regs.contains(name) {
                        self.report.diagnostics.push(Diagnostic::error(
                            LintCode::ProcWire,
                            a.span,
                            format!(
                                "procedural assignment to wire '{name}'; \
                                 declare it as reg"
                            ),
                        ));
                    }
                }
            }
            if let Stmt::For(f) = stmt {
                // Loop variables are handled by the integer declaration
                // check; skip the init/step writes here if declared.
                let _ = f;
            }
            uvllm_verilog::visit::walk_stmt(self, stmt);
        }
    }
    let mut p = P { symbols, report };
    for item in &module.items {
        match item {
            Item::Always(a) => p.visit_stmt(&a.body),
            Item::Initial(i) => p.visit_stmt(&i.body),
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// Instances
// ----------------------------------------------------------------------

fn check_instances(file: &SourceFile, module: &Module, symbols: &Symbols, report: &mut LintReport) {
    for item in &module.items {
        let Item::Instance(inst) = item else { continue };
        let Some(child) = file.module(&inst.module) else {
            report.diagnostics.push(Diagnostic::error(
                LintCode::UnknownModule,
                inst.span,
                format!("cannot find module '{}'", inst.module),
            ));
            continue;
        };
        if inst.conns.iter().all(|c| c.port.is_none()) && inst.conns.len() > child.ports.len() {
            report.diagnostics.push(Diagnostic::error(
                LintCode::PortCount,
                inst.span,
                format!(
                    "instance '{}' has {} connections but '{}' has {} ports",
                    inst.name,
                    inst.conns.len(),
                    inst.module,
                    child.ports.len()
                ),
            ));
        }
        for (idx, conn) in inst.conns.iter().enumerate() {
            let port = match &conn.port {
                Some(name) => match child.port(name) {
                    Some(p) => p,
                    None => {
                        report.diagnostics.push(Diagnostic::error(
                            LintCode::UnknownPort,
                            conn.span,
                            format!("module '{}' has no port '{name}'", inst.module),
                        ));
                        continue;
                    }
                },
                None => match child.ports.get(idx) {
                    Some(p) => p,
                    None => continue,
                },
            };
            let (Some(pw), Some(cw)) =
                (range_width(&port.range), conn.expr.as_ref().and_then(|e| expr_width(e, symbols)))
            else {
                continue;
            };
            if pw != cw {
                report.diagnostics.push(Diagnostic::warning(
                    LintCode::PortWidth,
                    conn.span,
                    format!(
                        "port '{}' of '{}' is {pw} bit(s) but connection is {cw} bit(s)",
                        port.name, inst.module
                    ),
                ));
            }
        }
    }
}

/// Best-effort self-determined width of an expression.
fn expr_width(e: &Expr, symbols: &Symbols) -> Option<u32> {
    match e {
        Expr::Number(n) => n.width,
        Expr::Ident(name) => symbols.width(name),
        Expr::Index(_, _) => Some(1),
        Expr::Part(_, m, l) => {
            let m = lit_value(m)?;
            let l = lit_value(l)?;
            Some(m.abs_diff(l) as u32 + 1)
        }
        Expr::Concat(items) => {
            let mut w = 0;
            for i in items {
                w += expr_width(i, symbols)?;
            }
            Some(w)
        }
        Expr::Repeat(count, items) => {
            let c = lit_value(count)? as u32;
            let mut w = 0;
            for i in items {
                w += expr_width(i, symbols)?;
            }
            Some(c * w)
        }
        _ => None,
    }
}

// ----------------------------------------------------------------------
// COMBDLY / BLKSEQ (the scripted timing fixes of Algorithm 1)
// ----------------------------------------------------------------------

fn check_assign_kinds(src: &str, module: &Module, report: &mut LintReport) {
    for item in &module.items {
        let Item::Always(a) = item else { continue };
        let seq = a.sensitivity.is_edge_triggered();
        collect_assign_kind(src, &a.body, seq, report);
    }
}

fn collect_assign_kind(src: &str, stmt: &Stmt, seq: bool, report: &mut LintReport) {
    match stmt {
        Stmt::Block(b) => {
            for s in &b.stmts {
                collect_assign_kind(src, s, seq, report);
            }
        }
        Stmt::NonBlocking(a) if !seq => {
            if let Some(op_span) = assign_op_span(src, a) {
                report.diagnostics.push(
                    Diagnostic::warning(
                        LintCode::CombDly,
                        a.span,
                        "non-blocking assignment in combinational logic; \
                         expect '=' (delayed assignment in always block with \
                         non-clocked sensitivity)",
                    )
                    .with_fix(op_span, "="),
                );
            }
        }
        Stmt::Blocking(a) if seq => {
            if let Some(op_span) = assign_op_span(src, a) {
                report.diagnostics.push(
                    Diagnostic::warning(
                        LintCode::BlkSeq,
                        a.span,
                        "blocking assignment in sequential logic; expect '<=' \
                         (blocking assignment in clocked always block)",
                    )
                    .with_fix(op_span, "<="),
                );
            }
        }
        Stmt::If(i) => {
            collect_assign_kind(src, &i.then_branch, seq, report);
            if let Some(e) = &i.else_branch {
                collect_assign_kind(src, e, seq, report);
            }
        }
        Stmt::Case(c) => {
            for arm in &c.arms {
                collect_assign_kind(src, &arm.body, seq, report);
            }
            if let Some(d) = &c.default {
                collect_assign_kind(src, d, seq, report);
            }
        }
        Stmt::For(f) => collect_assign_kind(src, &f.body, seq, report),
        _ => {}
    }
}

/// Finds the span of the assignment operator (`=` or `<=`) between the
/// target and the right-hand side by re-lexing the statement slice.
fn assign_op_span(src: &str, a: &Assign) -> Option<Span> {
    let start = a.lhs.span().end;
    let end = a.span.end.min(src.len());
    if start >= end {
        return None;
    }
    let slice = &src[start..end];
    let tokens = tokenize(slice).ok()?;
    for t in tokens {
        match t.kind {
            TokenKind::Assign | TokenKind::LeAssign => {
                return Some(Span::new(start + t.span.start, start + t.span.end));
            }
            TokenKind::Eof => break,
            _ => {}
        }
    }
    None
}

// ----------------------------------------------------------------------
// Width truncation
// ----------------------------------------------------------------------

fn check_width_trunc(module: &Module, symbols: &Symbols, report: &mut LintReport) {
    let mut check = |lhs: &LValue, rhs: &Expr, span: Span, report: &mut LintReport| {
        let LValue::Ident(name, _) = lhs else { return };
        let (Some(lw), Expr::Number(n)) = (symbols.width(name), rhs) else { return };
        if let Some(rw) = n.width {
            if rw > lw {
                report.diagnostics.push(Diagnostic::warning(
                    LintCode::WidthTrunc,
                    span,
                    format!(
                        "operator ASSIGN expects {lw} bits on the assign RHS but \
                         RHS's CONST generates {rw} bits"
                    ),
                ));
            }
        }
    };
    struct W<'a, F: FnMut(&LValue, &Expr, Span, &mut LintReport)> {
        f: F,
        report: &'a mut LintReport,
    }
    impl<F: FnMut(&LValue, &Expr, Span, &mut LintReport)> Visitor for W<'_, F> {
        fn visit_stmt(&mut self, stmt: &Stmt) {
            if let Stmt::Blocking(a) | Stmt::NonBlocking(a) = stmt {
                (self.f)(&a.lhs, &a.rhs, a.span, self.report);
            }
            uvllm_verilog::visit::walk_stmt(self, stmt);
        }
    }
    let mut w = W { f: &mut check, report };
    for item in &module.items {
        if let Item::Assign(a) = item {
            (w.f)(&a.lhs, &a.rhs, a.span, w.report);
        }
        if let Item::Always(a) = item {
            w.visit_stmt(&a.body);
        }
    }
}

// ----------------------------------------------------------------------
// Missing sensitivity entries
// ----------------------------------------------------------------------

fn check_missing_sens(src: &str, module: &Module, report: &mut LintReport) {
    for item in &module.items {
        let Item::Always(a) = item else { continue };
        let Sensitivity::List(items) = &a.sensitivity else { continue };
        if a.sensitivity.is_edge_triggered() || items.is_empty() {
            continue;
        }
        let listed: HashSet<&str> = items.iter().map(|i| i.signal.as_str()).collect();
        let mut read = HashSet::new();
        collect_reads(&a.body, &mut read);
        let written: HashSet<String> = written_names(&a.body);
        let missing: Vec<String> = read
            .into_iter()
            .filter(|r| !listed.contains(r.as_str()) && !written.contains(r))
            .collect();
        if missing.is_empty() {
            continue;
        }
        // Scripted fix: replace the parenthesised list with `(*)`.
        let fix_span = sens_paren_span(src, items);
        let mut missing = missing;
        missing.sort();
        let mut diag = Diagnostic::warning(
            LintCode::MissingSens,
            a.span,
            format!("sensitivity list misses signal(s) read in the block: {}", missing.join(", ")),
        );
        if let Some(span) = fix_span {
            diag = diag.with_fix(span, "(*)");
        }
        report.diagnostics.push(diag);
    }
}

fn sens_paren_span(src: &str, items: &[SensItem]) -> Option<Span> {
    let first = items.first()?.span.start;
    let last = items.last()?.span.end;
    let open = src[..first].rfind('(')?;
    let close = src[last..].find(')')? + last;
    Some(Span::new(open, close + 1))
}

fn collect_reads(stmt: &Stmt, out: &mut HashSet<String>) {
    struct R<'a> {
        out: &'a mut HashSet<String>,
    }
    impl Visitor for R<'_> {
        fn visit_expr(&mut self, expr: &Expr) {
            if let Expr::Ident(n) = expr {
                self.out.insert(n.clone());
            }
            walk_expr(self, expr);
        }
        fn visit_stmt(&mut self, stmt: &Stmt) {
            if let Stmt::For(f) = stmt {
                // The loop variable is loop-local.
                for n in f.init.0.base_names() {
                    self.out.remove(n);
                }
            }
            uvllm_verilog::visit::walk_stmt(self, stmt);
            if let Stmt::For(f) = stmt {
                for n in f.init.0.base_names() {
                    self.out.remove(n);
                }
            }
        }
    }
    let mut r = R { out };
    r.visit_stmt(stmt);
}

fn written_names(stmt: &Stmt) -> HashSet<String> {
    let mut out = HashSet::new();
    struct W<'a> {
        out: &'a mut HashSet<String>,
    }
    impl Visitor for W<'_> {
        fn visit_stmt(&mut self, stmt: &Stmt) {
            if let Stmt::Blocking(a) | Stmt::NonBlocking(a) = stmt {
                for n in a.lhs.base_names() {
                    self.out.insert(n.to_string());
                }
            }
            uvllm_verilog::visit::walk_stmt(self, stmt);
        }
    }
    let mut w = W { out: &mut out };
    w.visit_stmt(stmt);
    out
}

// ----------------------------------------------------------------------
// Case completeness
// ----------------------------------------------------------------------

fn check_case_completeness(module: &Module, symbols: &Symbols, report: &mut LintReport) {
    struct C<'a> {
        symbols: &'a Symbols,
        report: &'a mut LintReport,
    }
    impl Visitor for C<'_> {
        fn visit_stmt(&mut self, stmt: &Stmt) {
            if let Stmt::Case(c) = stmt {
                if c.default.is_none() {
                    let sel_width = expr_width(&c.expr, self.symbols);
                    let labels: usize = c.arms.iter().map(|a| a.labels.len()).sum();
                    let covered = match sel_width {
                        Some(w) if w <= 16 => (labels as u128) >= (1u128 << w),
                        _ => false,
                    };
                    if !covered {
                        self.report.diagnostics.push(Diagnostic::warning(
                            LintCode::CaseIncomplete,
                            c.span,
                            "case statement has no default and does not cover \
                             all selector values",
                        ));
                    }
                }
            }
            uvllm_verilog::visit::walk_stmt(self, stmt);
        }
    }
    let mut c = C { symbols, report };
    for item in &module.items {
        if let Item::Always(a) = item {
            c.visit_stmt(&a.body);
        }
    }
}

// ----------------------------------------------------------------------
// Drivers
// ----------------------------------------------------------------------

fn check_drivers(module: &Module, report: &mut LintReport) {
    // Count whole-signal continuous drivers (assign / always writes count
    // per item; multiple writes inside one block are fine).
    let mut drivers: HashMap<String, u32> = HashMap::new();
    for item in &module.items {
        match item {
            Item::Assign(a) => {
                for n in a.lhs.base_names() {
                    *drivers.entry(n.to_string()).or_default() += 1;
                }
            }
            Item::Always(a) => {
                for n in written_names(&a.body) {
                    *drivers.entry(n).or_default() += 1;
                }
            }
            Item::Instance(inst) => {
                for conn in &inst.conns {
                    // Output connections drive parent signals; direction
                    // is unknown here without the child, so skip.
                    let _ = conn;
                }
            }
            _ => {}
        }
    }
    for (name, count) in &drivers {
        if *count > 1 {
            report.diagnostics.push(Diagnostic::warning(
                LintCode::MultiDriven,
                module.span,
                format!("signal '{name}' has {count} drivers"),
            ));
        }
    }
    // Undriven outputs (ignore modules with instances: child outputs may
    // drive them).
    let has_instances = module.items.iter().any(|i| matches!(i, Item::Instance(_)));
    if !has_instances {
        for port in module.outputs() {
            if !drivers.contains_key(&port.name) {
                report.diagnostics.push(Diagnostic::warning(
                    LintCode::Undriven,
                    port.span,
                    format!("output port '{}' is never driven", port.name),
                ));
            }
        }
    }
}

// ----------------------------------------------------------------------
// Latch inference
// ----------------------------------------------------------------------

fn check_latches(module: &Module, report: &mut LintReport) {
    for item in &module.items {
        let Item::Always(a) = item else { continue };
        if a.sensitivity.is_edge_triggered() {
            continue;
        }
        let all = written_names(&a.body);
        let definite = definitely_assigned(&a.body);
        let mut partial: Vec<&String> = all.iter().filter(|n| !definite.contains(*n)).collect();
        partial.sort();
        for name in partial {
            report.diagnostics.push(Diagnostic::warning(
                LintCode::Latch,
                a.span,
                format!("signal '{name}' is not assigned on all paths; latch inferred"),
            ));
        }
    }
}

fn definitely_assigned(stmt: &Stmt) -> HashSet<String> {
    match stmt {
        Stmt::Block(b) => {
            let mut out = HashSet::new();
            for s in &b.stmts {
                out.extend(definitely_assigned(s));
            }
            out
        }
        Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
            // Only whole-signal writes count as definite.
            match &a.lhs {
                LValue::Ident(n, _) => [n.clone()].into(),
                _ => HashSet::new(),
            }
        }
        Stmt::If(i) => match &i.else_branch {
            Some(e) => {
                let t = definitely_assigned(&i.then_branch);
                let f = definitely_assigned(e);
                t.intersection(&f).cloned().collect()
            }
            None => HashSet::new(),
        },
        Stmt::Case(c) => {
            let Some(d) = &c.default else { return HashSet::new() };
            let mut acc = definitely_assigned(d);
            for arm in &c.arms {
                let s = definitely_assigned(&arm.body);
                acc = acc.intersection(&s).cloned().collect();
            }
            acc
        }
        Stmt::For(f) => definitely_assigned(&f.body),
        _ => HashSet::new(),
    }
}

// ----------------------------------------------------------------------
// Unused signals
// ----------------------------------------------------------------------

fn check_unused(module: &Module, symbols: &Symbols, report: &mut LintReport) {
    let mut read: HashSet<String> = HashSet::new();
    for item in &module.items {
        struct R<'a> {
            out: &'a mut HashSet<String>,
        }
        impl Visitor for R<'_> {
            fn visit_expr(&mut self, expr: &Expr) {
                if let Expr::Ident(n) = expr {
                    self.out.insert(n.clone());
                }
                walk_expr(self, expr);
            }
            fn visit_lvalue(&mut self, lv: &LValue) {
                // Index expressions read signals.
                uvllm_verilog::visit::walk_lvalue(self, lv);
            }
        }
        let mut r = R { out: &mut read };
        r.visit_item(item);
        if let Item::Always(a) = item {
            if let Sensitivity::List(items) = &a.sensitivity {
                for s in items {
                    read.insert(s.signal.clone());
                }
            }
        }
    }
    let port_names: HashSet<&str> = module.ports.iter().map(|p| p.name.as_str()).collect();
    for item in &module.items {
        let Item::Net(d) = item else { continue };
        for decl in &d.decls {
            if port_names.contains(decl.name.as_str()) {
                continue;
            }
            if symbols.params.contains(&decl.name) {
                continue;
            }
            if !read.contains(&decl.name) {
                report.diagnostics.push(Diagnostic::warning(
                    LintCode::Unused,
                    decl.span,
                    format!("signal '{}' is declared but never read", decl.name),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn codes(src: &str) -> Vec<LintCode> {
        lint(src).diagnostics.into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_module_has_no_findings() {
        let report = lint(
            "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
             assign y = a + b;\nendmodule\n",
        );
        assert!(report.is_clean(), "unexpected findings: {:?}", report.diagnostics);
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn syntax_error_reported() {
        let cs = codes("module m(input a, output y);\nassign y = a\nendmodule\n");
        assert_eq!(cs, vec![LintCode::Syntax]);
    }

    #[test]
    fn undeclared_signal_reported() {
        let cs = codes("module m(input a, output y);\nassign y = a & ghost;\nendmodule\n");
        assert!(cs.contains(&LintCode::Undeclared));
    }

    #[test]
    fn combdly_detected_with_fix() {
        let src = "module m(input a, input b, output reg y);\n\
                   always @(*) y <= a & b;\nendmodule\n";
        let report = lint(src);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::CombDly)
            .expect("COMBDLY expected");
        let fix = d.fix.as_ref().expect("fix template expected");
        assert_eq!(fix.span.text(src), "<=");
        assert_eq!(fix.replacement, "=");
    }

    #[test]
    fn blkseq_detected_with_fix() {
        let src = "module m(input clk, input d, output reg q);\n\
                   always @(posedge clk) q = d;\nendmodule\n";
        let report = lint(src);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::BlkSeq)
            .expect("BLKSEQ expected");
        let fix = d.fix.as_ref().expect("fix template expected");
        assert_eq!(fix.span.text(src), "=");
        assert_eq!(fix.replacement, "<=");
    }

    #[test]
    fn missing_sensitivity_detected() {
        let src = "module m(input a, input b, output reg y);\n\
                   always @(a) y = a & b;\nendmodule\n";
        let report = lint(src);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == LintCode::MissingSens)
            .expect("MissingSens expected");
        assert!(d.message.contains('b'));
        let fix = d.fix.as_ref().expect("fix");
        assert_eq!(fix.span.text(src), "(a)");
        assert_eq!(fix.replacement, "(*)");
    }

    #[test]
    fn case_incomplete_detected() {
        let src = "module m(input [1:0] s, output reg y);\nalways @(*) begin\ny = 1'b0;\n\
                   case (s)\n2'b00: y = 1'b1;\n2'b01: y = 1'b0;\nendcase\nend\nendmodule\n";
        assert!(codes(src).contains(&LintCode::CaseIncomplete));
        // With default: clean.
        let src2 = "module m(input [1:0] s, output reg y);\nalways @(*) begin\n\
                    case (s)\n2'b00: y = 1'b1;\ndefault: y = 1'b0;\nendcase\nend\nendmodule\n";
        assert!(!codes(src2).contains(&LintCode::CaseIncomplete));
    }

    #[test]
    fn undriven_and_unused_detected() {
        let src = "module m(input a, output y, output z);\nwire dead;\n\
                   assign y = a;\nendmodule\n";
        let cs = codes(src);
        assert!(cs.contains(&LintCode::Undriven));
        assert!(cs.contains(&LintCode::Unused));
    }

    #[test]
    fn multidriven_detected() {
        let src = "module m(input a, input b, output y);\n\
                   assign y = a;\nassign y = b;\nendmodule\n";
        assert!(codes(src).contains(&LintCode::MultiDriven));
    }

    #[test]
    fn latch_detected() {
        let src = "module m(input en, input d, output reg q);\n\
                   always @(*) begin\nif (en) q = d;\nend\nendmodule\n";
        assert!(codes(src).contains(&LintCode::Latch));
        // Default assignment first: no latch.
        let src2 = "module m(input en, input d, output reg q);\n\
                    always @(*) begin\nq = 1'b0;\nif (en) q = d;\nend\nendmodule\n";
        assert!(!codes(src2).contains(&LintCode::Latch));
    }

    #[test]
    fn width_trunc_detected() {
        let src = "module m(input a, output reg [3:0] y);\n\
                   always @(*) y = 8'hff;\nendmodule\n";
        assert!(codes(src).contains(&LintCode::WidthTrunc));
    }

    #[test]
    fn unknown_module_and_port() {
        let src = "module top(input a, output y);\nghost u(.i(a), .o(y));\nendmodule\n";
        assert!(codes(src).contains(&LintCode::UnknownModule));
        let src2 = "module top(input a, output y);\nsub u(.bad(a), .o(y));\nendmodule\n\
                    module sub(input i, output o);\nassign o = i;\nendmodule\n";
        assert!(codes(src2).contains(&LintCode::UnknownPort));
    }

    #[test]
    fn port_width_mismatch_warned() {
        let src = "module top(input a, output [1:0] y);\n\
                   sub u(.i(a), .o(y));\nendmodule\n\
                   module sub(input [1:0] i, output [1:0] o);\nassign o = i;\nendmodule\n";
        let report = lint(src);
        let d = report.diagnostics.iter().find(|d| d.code == LintCode::PortWidth);
        assert!(d.is_some());
        assert_eq!(d.unwrap().severity, Severity::Warning);
    }

    #[test]
    fn errors_precede_in_severity() {
        let report = lint("module m(input a, output y);\nassign y = zz;\nendmodule\n");
        assert_eq!(report.errors().len(), 1);
        assert!(!report.is_clean());
    }
}
