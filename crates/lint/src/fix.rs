//! Scripted fix application — the `Replace` step of Algorithm 1.

use crate::diag::{Diagnostic, LintReport};

/// Applies every scripted fix in `report` to `src`, returning the
/// rewritten source and the number of fixes applied.
///
/// Fixes are applied back-to-front so earlier spans stay valid;
/// overlapping fixes are skipped after the first.
pub fn apply_fixes(src: &str, report: &LintReport) -> (String, usize) {
    let mut fixes: Vec<_> =
        report.fixable_warnings().into_iter().filter_map(|d| d.fix.clone()).collect();
    fixes.sort_by_key(|f| std::cmp::Reverse(f.span.start));
    let mut out = src.to_string();
    let mut applied = 0;
    let mut last_start = usize::MAX;
    for fix in fixes {
        if fix.span.end > out.len() || fix.span.end > last_start {
            continue; // overlap or stale span
        }
        out.replace_range(fix.span.start..fix.span.end, &fix.replacement);
        last_start = fix.span.start;
        applied += 1;
    }
    (out, applied)
}

/// Applies one diagnostic's fix (if any).
pub fn apply_fix(src: &str, diag: &Diagnostic) -> Option<String> {
    let fix = diag.fix.as_ref()?;
    if fix.span.end > src.len() {
        return None;
    }
    let mut out = src.to_string();
    out.replace_range(fix.span.start..fix.span.end, &fix.replacement);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::lint;

    #[test]
    fn combdly_fix_round_trip() {
        let src = "module m(input a, input b, output reg y);\n\
                   always @(*) y <= a & b;\nendmodule\n";
        let report = lint(src);
        let (fixed, n) = apply_fixes(src, &report);
        assert_eq!(n, 1);
        assert!(fixed.contains("y = a & b;"), "got:\n{fixed}");
        // Fixed source is clean of fixable warnings.
        assert!(lint(&fixed).fixable_warnings().is_empty());
    }

    #[test]
    fn blkseq_fix_round_trip() {
        let src = "module m(input clk, input d, output reg q);\n\
                   always @(posedge clk) q = d;\nendmodule\n";
        let report = lint(src);
        let (fixed, n) = apply_fixes(src, &report);
        assert_eq!(n, 1);
        assert!(fixed.contains("q <= d;"), "got:\n{fixed}");
        assert!(lint(&fixed).is_clean());
    }

    #[test]
    fn multiple_fixes_applied_back_to_front() {
        let src = "module m(input a, input b, output reg x, output reg y);\n\
                   always @(*) begin\nx <= a;\ny <= b;\nend\nendmodule\n";
        let report = lint(src);
        let (fixed, n) = apply_fixes(src, &report);
        assert_eq!(n, 2);
        assert!(fixed.contains("x = a;"));
        assert!(fixed.contains("y = b;"));
        assert!(lint(&fixed).fixable_warnings().is_empty());
    }

    #[test]
    fn sensitivity_fix_repairs_behaviour() {
        let src = "module m(input a, input b, output reg y);\n\
                   always @(a) y = a & b;\nendmodule\n";
        let report = lint(src);
        let (fixed, n) = apply_fixes(src, &report);
        assert_eq!(n, 1);
        assert!(fixed.contains("always @(*)"), "got:\n{fixed}");
        assert!(lint(&fixed).is_clean());
    }

    #[test]
    fn no_fix_for_error_only_reports() {
        let src = "module m(input a, output y);\nassign y = ghost;\nendmodule\n";
        let report = lint(src);
        let (fixed, n) = apply_fixes(src, &report);
        assert_eq!(n, 0);
        assert_eq!(fixed, src);
    }
}
