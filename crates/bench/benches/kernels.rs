//! Criterion benchmarks pitting the compiled levelized kernel against
//! the event-driven baseline on the campaign hot path: raw clocked
//! settle throughput, whole UVM environment runs, and a campaign slice.
//!
//! ```text
//! cargo bench --bench kernels
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use uvllm_campaign::{Campaign, CampaignConfig, MemorySink, MethodKind, SimBackend};
use uvllm_designs::by_name;
use uvllm_sim::{elaborate, AnySim, Logic, SimControl};
use uvllm_uvm::{CornerSequence, Environment, RandomSequence, Sequence};

fn bench_clocked_settle(c: &mut Criterion) {
    let d = by_name("counter_12").unwrap();
    let file = uvllm_verilog::parse(d.source).unwrap();
    let design = elaborate(&file, d.name).unwrap();
    for backend in SimBackend::ALL {
        c.bench_function(&format!("counter_1000_cycles[{backend}]"), |b| {
            b.iter_batched(
                || AnySim::new(&design, backend).unwrap(),
                |mut sim| {
                    sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
                    sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
                    sim.poke_by_name("en", Logic::bit(true)).unwrap();
                    for _ in 0..1000 {
                        sim.poke_by_name("clk", Logic::bit(true)).unwrap();
                        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
                    }
                    black_box(sim.peek_by_name("q").unwrap())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_uvm_run(c: &mut Criterion) {
    let d = by_name("alu_8bit").unwrap();
    for backend in SimBackend::ALL {
        c.bench_function(&format!("uvm_run_alu_100_cycles[{backend}]"), |b| {
            b.iter(|| {
                let iface = (d.iface)();
                let seqs: Vec<Box<dyn Sequence>> = vec![
                    Box::new(RandomSequence::new(&iface.inputs, 100, 7)),
                    Box::new(CornerSequence::new(&iface.inputs)),
                ];
                let env = Environment::from_source_with(
                    d.source,
                    d.name,
                    iface,
                    (d.model)(),
                    seqs,
                    backend,
                )
                .unwrap();
                black_box(env.run().pass_rate)
            })
        });
    }
}

fn bench_campaign_slice(c: &mut Criterion) {
    for backend in SimBackend::ALL {
        c.bench_function(&format!("campaign_8x2_script_methods[{backend}]"), |b| {
            b.iter(|| {
                let config = CampaignConfig {
                    dataset_size: 8,
                    dataset_seed: 0xBE7C,
                    methods: vec![MethodKind::Strider, MethodKind::RtlRepair],
                    workers: 1,
                    backend,
                    ..CampaignConfig::default()
                };
                let mut sink = MemorySink::new();
                let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();
                black_box(outcome.new_records.len())
            })
        });
    }
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_clocked_settle, bench_uvm_run, bench_campaign_slice,
);
criterion_main!(kernels);
