//! Criterion benchmarks pitting the compiled levelized kernel against
//! the event-driven baseline on the campaign hot path: raw clocked
//! settle throughput, whole UVM environment runs, and a campaign slice.
//!
//! ```text
//! cargo bench --bench kernels
//! ```
//!
//! Besides the criterion output, the run writes **`BENCH_kernels.json`**
//! (schema v4, path overridable via `UVLLM_BENCH_JSON`): per-backend
//! ns/cycle **and measured heap allocations per cycle** (a counting
//! global allocator wraps the timed loop; both kernels must report 0)
//! for the raw kernel, ns/cycle for the whole UVM environment, plus the
//! wall-clock of a full campaign (`UVLLM_BENCH_SIZE` instances × all
//! six methods; the paper's 331 by default) on each backend — so the
//! perf *and* allocation trajectories are tracked machine-readably
//! across PRs instead of living in README prose. v4 folds in headline
//! `uvllm-obs` registry counters: activations per cycle and (compiled
//! kernel) the two-state fast-path hit rate for the timed kernel loop,
//! and the mean flush batch size of the batched llm-overlap run. v5
//! adds the `netlist_opt` record: per-pass rewrite counts, levelized
//! depth before/after and measured settle ns/cycle base vs optimized
//! for the featured design (`adder_16bit`, whose ripple chain the
//! buffer-removal pass shortens).

use criterion::{criterion_group, BatchSize, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Counts every allocation so the perf record can assert the hot loop
/// is allocation-free, not just fast (mirrors
/// `tests/alloc_steady_state.rs`).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed
// atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;
use uvllm_campaign::{BatchConfig, Campaign, CampaignConfig, MemorySink, MethodKind, SimBackend};
use uvllm_designs::by_name;
use uvllm_json::Json;
use uvllm_sim::{elaborate, AnySim, Logic, SimControl};
use uvllm_uvm::{CornerSequence, Environment, RandomSequence, Sequence};

fn bench_clocked_settle(c: &mut Criterion) {
    let d = by_name("counter_12").unwrap();
    let file = uvllm_verilog::parse(d.source).unwrap();
    let design = std::sync::Arc::new(elaborate(&file, d.name).unwrap());
    for backend in SimBackend::ALL {
        c.bench_function(&format!("counter_1000_cycles[{backend}]"), |b| {
            b.iter_batched(
                || AnySim::new(&design, backend).unwrap(),
                |mut sim| {
                    sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
                    sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
                    sim.poke_by_name("en", Logic::bit(true)).unwrap();
                    for _ in 0..1000 {
                        sim.poke_by_name("clk", Logic::bit(true)).unwrap();
                        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
                    }
                    black_box(sim.peek_by_name("q").unwrap())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_uvm_run(c: &mut Criterion) {
    let d = by_name("alu_8bit").unwrap();
    for backend in SimBackend::ALL {
        c.bench_function(&format!("uvm_run_alu_100_cycles[{backend}]"), |b| {
            b.iter(|| {
                let iface = (d.iface)();
                let seqs: Vec<Box<dyn Sequence>> = vec![
                    Box::new(RandomSequence::new(&iface.inputs, 100, 7)),
                    Box::new(CornerSequence::new(&iface.inputs)),
                ];
                let env = Environment::from_source_with(
                    d.source,
                    d.name,
                    iface,
                    (d.model)(),
                    seqs,
                    backend,
                )
                .unwrap();
                black_box(env.run().pass_rate)
            })
        });
    }
}

fn bench_campaign_slice(c: &mut Criterion) {
    for backend in SimBackend::ALL {
        c.bench_function(&format!("campaign_8x2_script_methods[{backend}]"), |b| {
            b.iter(|| {
                let config = CampaignConfig {
                    dataset_size: 8,
                    dataset_seed: 0xBE7C,
                    methods: vec![MethodKind::Strider, MethodKind::RtlRepair],
                    workers: 1,
                    backend,
                    ..CampaignConfig::default()
                };
                let mut sink = MemorySink::new();
                let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();
                black_box(outcome.new_records.len())
            })
        });
    }
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_clocked_settle, bench_uvm_run, bench_campaign_slice,
);

// ----------------------------------------------------------------------
// Machine-readable perf record (BENCH_kernels.json)
// ----------------------------------------------------------------------

/// Raw kernel measurements over the timed loop.
struct KernelCosts {
    ns_per_cycle: f64,
    allocs_per_cycle: f64,
    /// Registry-measured process activations per full clock cycle.
    activations_per_cycle: f64,
    /// Compiled kernel only: fraction of activations that ran the
    /// unchecked two-state fast path.
    fastpath_hit_rate: Option<f64>,
}

/// Raw kernel throughput and allocation rate: ns and heap allocations
/// per full clock cycle (two pokes) of the counter_12 design, measured
/// over `cycles` cycles after a warm-up. The allocation rate must be 0
/// on both backends — the strict bound `tests/alloc_steady_state.rs`
/// enforces, recorded here so `BENCH_kernels.json` tracks it per run.
/// Activation and fast-path counters come from the `uvllm-obs` registry
/// (reset around the timed loop, so they cover exactly those cycles).
fn kernel_cycle_costs(backend: SimBackend, cycles: u64) -> KernelCosts {
    let d = by_name("counter_12").unwrap();
    let file = uvllm_verilog::parse(d.source).unwrap();
    let design = std::sync::Arc::new(elaborate(&file, d.name).unwrap());
    let mut sim = AnySim::new(&design, backend).unwrap();
    sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
    sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
    sim.poke_by_name("en", Logic::bit(true)).unwrap();
    for _ in 0..200 {
        sim.poke_by_name("clk", Logic::bit(true)).unwrap();
        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
    }
    uvllm_obs::registry().reset();
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..cycles {
        sim.poke_by_name("clk", Logic::bit(true)).unwrap();
        sim.poke_by_name("clk", Logic::bit(false)).unwrap();
    }
    let elapsed = start.elapsed();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    black_box(sim.peek_by_name("q").unwrap());
    let snapshot = uvllm_obs::registry().snapshot();
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0) as f64;
    let (activations, fastpath_hit_rate) = match backend {
        SimBackend::EventDriven => (counter("sim.event.activations"), None),
        SimBackend::Compiled => {
            let fast = counter("sim.compiled.fastpath_hits");
            let slow = counter("sim.compiled.fallback_hits");
            (fast + slow, Some(fast / (fast + slow).max(1.0)))
        }
    };
    KernelCosts {
        ns_per_cycle: elapsed.as_nanos() as f64 / cycles as f64,
        allocs_per_cycle: allocs as f64 / cycles as f64,
        activations_per_cycle: activations / cycles as f64,
        fastpath_hit_rate,
    }
}

/// Whole-environment throughput: ns per checked cycle of a UVM run over
/// alu_8bit (drive + settle + observe + refmodel frame + scoreboard +
/// coverage), averaged over `reps` runs of `cycles` cycles.
fn env_ns_per_cycle(backend: SimBackend, cycles: usize, reps: u32) -> f64 {
    let d = by_name("alu_8bit").unwrap();
    let mut total_ns = 0u128;
    let mut total_cycles = 0u64;
    for rep in 0..reps {
        let iface = (d.iface)();
        let seqs: Vec<Box<dyn Sequence>> =
            vec![Box::new(RandomSequence::new(&iface.inputs, cycles, 7 + rep as u64))];
        let env =
            Environment::from_source_with(d.source, d.name, iface, (d.model)(), seqs, backend)
                .unwrap()
                .without_waveform();
        let start = Instant::now();
        let summary = env.run();
        total_ns += start.elapsed().as_nanos();
        total_cycles += summary.cycles as u64;
        black_box(summary.pass_rate);
    }
    total_ns as f64 / total_cycles as f64
}

/// Full campaign wall-clock: `size` instances × every method, one
/// worker (deterministic timing), memory sink. Returns (seconds, jobs).
fn campaign_wall_clock(backend: SimBackend, size: usize) -> (f64, usize) {
    let config = CampaignConfig {
        dataset_size: size,
        methods: MethodKind::ALL.to_vec(),
        workers: 1,
        backend,
        ..CampaignConfig::default()
    };
    let mut sink = MemorySink::new();
    let start = Instant::now();
    let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();
    (start.elapsed().as_secs_f64(), outcome.new_records.len())
}

// How the LLM-overlap record is measured: 8 workers, a 5 ms endpoint
// round trip, LLM-heavy methods only.
const OVERLAP_LATENCY: Duration = Duration::from_millis(5);
const OVERLAP_WORKERS: usize = 8;
const OVERLAP_SIZE: usize = 24;

/// Campaign wall-clock under an injected endpoint round-trip latency:
/// per-job oracle (one gated round trip per prompt — the exclusive
/// connection the old `complete(&mut M)` API models) vs. the shared
/// batched service (one round trip per flush). The gap this measures is
/// exactly the overlap the submit/await redesign buys, tracked in
/// `BENCH_kernels.json` as `llm_overlap`.
fn llm_overlap_wall_clock(batched: bool) -> (f64, f64) {
    let config = CampaignConfig {
        dataset_size: OVERLAP_SIZE,
        methods: vec![MethodKind::Uvllm, MethodKind::Meic, MethodKind::GptDirect],
        workers: OVERLAP_WORKERS,
        backend: SimBackend::Compiled,
        llm_latency: Some(OVERLAP_LATENCY),
        llm_batch: batched
            .then(|| BatchConfig { max_batch: OVERLAP_WORKERS, ..BatchConfig::default() }),
        ..CampaignConfig::default()
    };
    let mut sink = MemorySink::new();
    uvllm_obs::registry().reset();
    let start = Instant::now();
    let outcome = Campaign::new(config).unwrap().run(&mut sink).unwrap();
    black_box(outcome.new_records.len());
    let flushes = outcome.metrics.counter("llm.flushes").unwrap_or(0) as f64;
    let prompts = outcome.metrics.counter("llm.flushed_prompts").unwrap_or(0) as f64;
    (start.elapsed().as_secs_f64(), prompts / flushes.max(1.0))
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Settle throughput of a combinational design on the compiled kernel:
/// ns per poke-all-inputs-and-settle iteration, after a warm-up.
fn comb_settle_ns(design: &uvllm_sim::Design, iters: u64) -> f64 {
    let design = std::sync::Arc::new(design.clone());
    let inputs: Vec<(String, u32)> = design
        .inputs()
        .iter()
        .map(|&id| (design.signal(id).name.clone(), design.signal(id).width))
        .collect();
    let mut sim = AnySim::new(&design, SimBackend::Compiled).unwrap();
    let drive = |sim: &mut AnySim, i: u64| {
        for (name, width) in &inputs {
            let v = Logic::from_u128(*width, (i as u128).wrapping_mul(0x9E37_79B9));
            sim.poke_by_name(name, v).unwrap();
        }
        sim.settle().unwrap();
    };
    for i in 0..500 {
        drive(&mut sim, i);
    }
    let start = Instant::now();
    for i in 0..iters {
        drive(&mut sim, i);
    }
    let elapsed = start.elapsed();
    black_box(sim.peek_word(design.outputs()[0], 0));
    elapsed.as_nanos() as f64 / iters as f64
}

/// The netlist-pass perf record: pass statistics and the measured
/// settle-throughput delta on the featured design, optimized (O3)
/// against unoptimized, compiled kernel.
fn netlist_opt_record() -> Json {
    use uvllm_netlist::{levelized_depth, OptLevel, PassManager};
    const FEATURED: &str = "adder_16bit";
    let d = by_name(FEATURED).unwrap();
    let file = uvllm_verilog::parse(d.source).unwrap();
    let base = elaborate(&file, d.name).unwrap();
    let mut opt = base.clone();
    let stats = PassManager::standard(OptLevel::O3).run(&mut opt);
    let base_ns = comb_settle_ns(&base, 200_000);
    let opt_ns = comb_settle_ns(&opt, 200_000);
    println!(
        "netlist opt ({FEATURED}, O3): depth {} -> {}, {} rewrites, \
         settle {base_ns:.0} -> {opt_ns:.0} ns/cycle ({:.2}x)",
        stats.depth_before,
        stats.depth_after,
        stats.total_rewrites(),
        base_ns / opt_ns.max(1e-9),
    );
    let passes =
        stats.per_pass.iter().map(|p| (p.name.to_string(), Json::Num(p.rewrites as f64))).collect();
    Json::Obj(vec![
        ("design".into(), Json::Str(FEATURED.into())),
        ("opt_level".into(), Json::Str("O3".into())),
        ("depth_before".into(), Json::Num(levelized_depth(&base) as f64)),
        ("depth_after".into(), Json::Num(levelized_depth(&opt) as f64)),
        ("rounds".into(), Json::Num(stats.rounds as f64)),
        ("rewrites".into(), Json::Obj(passes)),
        ("base_settle_ns_per_cycle".into(), Json::Num(round2(base_ns))),
        ("opt_settle_ns_per_cycle".into(), Json::Num(round2(opt_ns))),
        ("speedup_opt_vs_base".into(), Json::Num(round2(base_ns / opt_ns.max(1e-9)))),
    ])
}

fn write_bench_json() {
    let size = std::env::var("UVLLM_BENCH_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(uvllm::dataset::PAPER_DATASET_SIZE);
    // Benches run with CWD = crates/bench; default the record to the
    // workspace root so it sits next to README.
    let path = std::env::var("UVLLM_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string()
    });
    let mut backends = Vec::new();
    let mut campaign_s = [0.0f64; 2];
    let mut allocs = [0.0f64; 2];
    for (i, backend) in SimBackend::ALL.into_iter().enumerate() {
        let costs = kernel_cycle_costs(backend, 20_000);
        let kernel_ns = costs.ns_per_cycle;
        let alloc_per_cycle = costs.allocs_per_cycle;
        allocs[i] = alloc_per_cycle;
        let env_ns = env_ns_per_cycle(backend, 2_000, 5);
        let (wall_s, jobs) = campaign_wall_clock(backend, size);
        campaign_s[i] = wall_s;
        println!(
            "{backend}: kernel {kernel_ns:.0} ns/cycle, {alloc_per_cycle} allocs/cycle, \
             {:.2} activations/cycle, env {env_ns:.0} ns/cycle, \
             campaign {size}x6 {wall_s:.2}s ({jobs} jobs)",
            costs.activations_per_cycle,
        );
        let mut obj = vec![
            ("backend".into(), Json::Str(backend.label().to_string())),
            ("kernel_ns_per_cycle".into(), Json::Num(round2(kernel_ns))),
            ("alloc_per_cycle".into(), Json::Num(alloc_per_cycle)),
            ("activations_per_cycle".into(), Json::Num(round2(costs.activations_per_cycle))),
            ("env_ns_per_cycle".into(), Json::Num(round2(env_ns))),
            ("campaign_wall_s".into(), Json::Num(round2(wall_s))),
            ("campaign_jobs".into(), Json::Num(jobs as f64)),
        ];
        if let Some(rate) = costs.fastpath_hit_rate {
            obj.push(("fastpath_hit_rate".into(), Json::Num(round2(rate))));
        }
        backends.push(Json::Obj(obj));
    }
    let (direct_s, _) = llm_overlap_wall_clock(false);
    let (batched_s, mean_batch) = llm_overlap_wall_clock(true);
    println!(
        "llm overlap ({}ms rtt, {} workers, {} instances x 3 llm methods): \
         per-job {direct_s:.2}s vs batched {batched_s:.2}s ({:.2}x)",
        OVERLAP_LATENCY.as_millis(),
        OVERLAP_WORKERS,
        OVERLAP_SIZE,
        direct_s / batched_s.max(1e-9),
    );
    let netlist_opt = netlist_opt_record();
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("uvllm-bench-kernels/v5".into())),
        ("campaign_size".into(), Json::Num(size as f64)),
        ("campaign_methods".into(), Json::Num(MethodKind::ALL.len() as f64)),
        ("backends".into(), Json::Arr(backends)),
        (
            "campaign_speedup_compiled_vs_event".into(),
            Json::Num(round2(campaign_s[0] / campaign_s[1].max(1e-9))),
        ),
        (
            "llm_overlap".into(),
            Json::Obj(vec![
                ("latency_ms".into(), Json::Num(OVERLAP_LATENCY.as_millis() as f64)),
                ("workers".into(), Json::Num(OVERLAP_WORKERS as f64)),
                ("campaign_size".into(), Json::Num(OVERLAP_SIZE as f64)),
                ("llm_methods".into(), Json::Num(3.0)),
                ("per_job_wall_s".into(), Json::Num(round2(direct_s))),
                ("batched_wall_s".into(), Json::Num(round2(batched_s))),
                ("mean_batch_size".into(), Json::Num(round2(mean_batch))),
                (
                    "speedup_batched_vs_per_job".into(),
                    Json::Num(round2(direct_s / batched_s.max(1e-9))),
                ),
            ]),
        ),
        ("netlist_opt".into(), netlist_opt),
    ]);
    std::fs::write(&path, format!("{}\n", doc.render())).expect("write BENCH_kernels.json");
    println!("wrote {path}");
    // Assert the zero-allocation bound only after the record is on
    // disk: a regression must still leave its measured value in the
    // trajectory file, not abort the run recordless.
    for (backend, a) in SimBackend::ALL.into_iter().zip(allocs) {
        assert_eq!(
            a, 0.0,
            "{backend}: the steady-state cycle loop allocated — the zero bound \
             (tests/alloc_steady_state.rs) has regressed; see {path}"
        );
    }
}

fn main() {
    kernels();
    // A positional CLI arg is a criterion-style name filter — an
    // exploratory run that should not pay for (or overwrite) the full
    // campaign perf record.
    let filtered = std::env::args().skip(1).any(|a| !a.starts_with('-'));
    if filtered {
        println!("bench filter given: skipping BENCH_kernels.json generation");
    } else {
        write_bench_json();
    }
}
