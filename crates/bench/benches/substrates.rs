//! Criterion micro/meso benchmarks for every substrate on the UVLLM
//! critical path, plus a smoke-scale end-to-end pipeline benchmark.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use uvllm::{Uvllm, VerifyConfig};
use uvllm_designs::by_name;
use uvllm_errgen::{mutate, ErrorKind};
use uvllm_llm::{ModelProfile, OracleLlm};
use uvllm_sim::{elaborate, Logic, Simulator};
use uvllm_uvm::{CornerSequence, Environment, RandomSequence, Sequence};

fn bench_parser(c: &mut Criterion) {
    let src = by_name("fifo_sync").unwrap().source;
    c.bench_function("parse_fifo_sync", |b| {
        b.iter(|| uvllm_verilog::parse(black_box(src)).unwrap())
    });
}

fn bench_lint(c: &mut Criterion) {
    let src = by_name("traffic_light").unwrap().source;
    c.bench_function("lint_traffic_light", |b| b.iter(|| uvllm_lint::lint(black_box(src))));
}

fn bench_elaborate(c: &mut Criterion) {
    let file = uvllm_verilog::parse(by_name("adder_16bit").unwrap().source).unwrap();
    c.bench_function("elaborate_adder_16bit_hierarchy", |b| {
        b.iter(|| elaborate(black_box(&file), "adder_16bit").unwrap())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let d = by_name("counter_12").unwrap();
    let file = uvllm_verilog::parse(d.source).unwrap();
    let design = std::sync::Arc::new(elaborate(&file, d.name).unwrap());
    c.bench_function("simulate_counter_1000_cycles", |b| {
        b.iter_batched(
            || Simulator::from_arc(std::sync::Arc::clone(&design)).unwrap(),
            |mut sim| {
                sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
                sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
                sim.poke_by_name("en", Logic::bit(true)).unwrap();
                for _ in 0..1000 {
                    sim.poke_by_name("clk", Logic::bit(true)).unwrap();
                    sim.poke_by_name("clk", Logic::bit(false)).unwrap();
                }
                black_box(sim.peek_by_name("q").unwrap())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_dfg_slice(c: &mut Criterion) {
    let d = by_name("fifo_sync").unwrap();
    let file = uvllm_verilog::parse(d.source).unwrap();
    let module = file.module(d.name).unwrap().clone();
    c.bench_function("dfg_build_and_slice_fifo", |b| {
        b.iter(|| {
            let dfg = uvllm_dfg::Dfg::build(black_box(&module));
            black_box(dfg.static_slice("dout"))
        })
    });
}

fn bench_uvm_run(c: &mut Criterion) {
    let d = by_name("alu_8bit").unwrap();
    c.bench_function("uvm_run_alu_100_cycles", |b| {
        b.iter(|| {
            let iface = (d.iface)();
            let seqs: Vec<Box<dyn Sequence>> = vec![
                Box::new(RandomSequence::new(&iface.inputs, 100, 7)),
                Box::new(CornerSequence::new(&iface.inputs)),
            ];
            let env = Environment::from_source(d.source, d.name, iface, (d.model)(), seqs).unwrap();
            black_box(env.run().pass_rate)
        })
    });
}

fn bench_mutation(c: &mut Criterion) {
    let src = by_name("traffic_light").unwrap().source;
    c.bench_function("mutate_value_misuse", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mutate(black_box(src), ErrorKind::ValueMisuse, seed).unwrap())
        })
    });
}

fn bench_end_to_end_repair(c: &mut Criterion) {
    let d = by_name("adder_8bit").unwrap();
    let m = mutate(d.source, ErrorKind::OperatorMisuse, 3).unwrap();
    c.bench_function("uvllm_verify_one_instance", |b| {
        b.iter(|| {
            let mut llm =
                OracleLlm::new(m.ground_truth.clone(), d.source, ModelProfile::Gpt4Turbo, 3);
            let mut framework = Uvllm::new(&mut llm, VerifyConfig::default());
            black_box(framework.verify(d, &m.mutated_src).success)
        })
    });
}

fn bench_fr_check(c: &mut Criterion) {
    let d = by_name("counter_12").unwrap();
    c.bench_function("fr_differential_validation", |b| {
        b.iter(|| black_box(uvllm::metrics::fix_confirmed(d, d.source)))
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(10);
    targets =
        bench_parser,
        bench_lint,
        bench_elaborate,
        bench_simulator,
        bench_dfg_slice,
        bench_uvm_run,
        bench_mutation,
        bench_end_to_end_repair,
        bench_fr_check
}
criterion_main!(substrates);
