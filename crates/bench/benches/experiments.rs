//! Criterion wrappers around the paper's experiments at smoke scale —
//! one benchmark per table/figure, so `cargo bench` exercises every
//! harness end to end (the binaries regenerate the full artefacts).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uvllm_bench::harness::{evaluate, MethodKind};
use uvllm_bench::report::fr;

/// A small fixed dataset shared by the experiment benches.
fn smoke_dataset() -> uvllm::Dataset {
    uvllm::build_dataset(12, 0xBE7C)
}

fn bench_fig5(c: &mut Criterion) {
    let ds = smoke_dataset();
    let syntax: Vec<_> = ds.syntax().into_iter().cloned().collect();
    c.bench_function("fig5_syntax_smoke", |b| {
        b.iter(|| {
            let recs = evaluate(MethodKind::Uvllm, black_box(&syntax));
            let refs: Vec<_> = recs.iter().collect();
            black_box(fr(&refs))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    let ds = smoke_dataset();
    let functional: Vec<_> = ds.functional().into_iter().cloned().collect();
    c.bench_function("fig6_functional_smoke", |b| {
        b.iter(|| {
            let recs = evaluate(MethodKind::Strider, black_box(&functional));
            let refs: Vec<_> = recs.iter().collect();
            black_box(fr(&refs))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let ds = smoke_dataset();
    c.bench_function("fig7_heatmap_smoke", |b| {
        b.iter(|| {
            let recs = evaluate(MethodKind::Uvllm, black_box(&ds.instances));
            black_box(recs.len())
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let ds = smoke_dataset();
    c.bench_function("table2_segmented_smoke", |b| {
        b.iter(|| {
            let u = evaluate(MethodKind::Uvllm, black_box(&ds.instances));
            let m = evaluate(MethodKind::Meic, black_box(&ds.instances));
            black_box((u.len(), m.len()))
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let ds = smoke_dataset();
    c.bench_function("table3_ablation_smoke", |b| {
        b.iter(|| {
            let p = evaluate(MethodKind::Uvllm, black_box(&ds.instances));
            let q = evaluate(MethodKind::UvllmComplete, black_box(&ds.instances));
            black_box((p.len(), q.len()))
        })
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5, bench_fig6, bench_fig7, bench_table2, bench_table3
}
criterion_main!(experiments);
