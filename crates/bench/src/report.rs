//! Aggregation and ASCII table rendering for the experiment binaries.

use crate::harness::EvalRecord;
use std::fmt::Write;

/// Fix rate over a record slice, in percent.
pub fn fr(records: &[&EvalRecord]) -> f64 {
    percent(records.iter().filter(|r| r.fixed).count(), records.len())
}

/// Hit rate over a record slice, in percent.
pub fn hr(records: &[&EvalRecord]) -> f64 {
    percent(records.iter().filter(|r| r.hit).count(), records.len())
}

pub use uvllm_campaign::report::{pct_cell, percent};

/// Mean `texec` in seconds.
pub fn mean_time(records: &[&EvalRecord]) -> f64 {
    if records.is_empty() {
        return f64::NAN;
    }
    records.iter().map(|r| r.texec).sum::<f64>() / records.len() as f64
}

/// A minimal right-aligned ASCII table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a seconds cell.
pub fn secs_cell(v: f64) -> String {
    if v.is_nan() {
        "x".to_string()
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_and_guards() {
        assert!((percent(1, 2) - 50.0).abs() < 1e-9);
        assert!(percent(0, 0).is_nan());
        assert_eq!(pct_cell(f64::NAN), "x");
        assert_eq!(pct_cell(86.99), "87.0");
        assert_eq!(secs_cell(13.829), "13.83");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["Types", "FR/%", "Texec/s"]);
        t.row(vec!["Arithmetic".into(), "84.3".into(), "14.20".into()]);
        t.row(vec!["Control".into(), "89.1".into(), "10.61".into()]);
        let s = t.render();
        assert!(s.contains("Types"));
        assert!(s.lines().count() == 4);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
