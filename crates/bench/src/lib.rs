//! # uvllm-bench
//!
//! The experiment harness reproducing the paper's evaluation: it runs
//! every repair method over the validated benchmark dataset, judges each
//! candidate externally (Hit Rate on the public vectors, Fix Rate by
//! extended differential validation) and aggregates the tables/figures.
//!
//! Evaluation itself lives in `uvllm-campaign` (re-exported here):
//! [`harness::evaluate`] fans out over the campaign worker pool, sized
//! by `UVLLM_WORKERS`. For sharded / resumable full-scale runs use the
//! `campaign` example binary instead of the per-figure binaries.
//!
//! Binaries (one per paper artefact):
//!
//! | binary | artefact |
//! |---|---|
//! | `fig5_syntax` | Fig. 5 — HR vs FR, syntax categories |
//! | `fig6_functional` | Fig. 6 — HR vs FR, functional categories |
//! | `fig7_heatmap` | Fig. 7 — per-module FR heat map |
//! | `table2_segmented` | Table II — per-stage FR/Texec + speedup |
//! | `table3_ablation` | Table III — pairs vs complete-code repair |

pub mod harness;
pub mod report;

pub use harness::{evaluate, EvalRecord, EvalRow, MethodKind};
pub use report::{fr, hr, mean_time, percent, Table};
