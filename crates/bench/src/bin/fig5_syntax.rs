//! Regenerates **Fig. 5**: HR vs FR in syntax-error verification for
//! UVLLM, MEIC and plain GPT-4-turbo, per syntax category.
//!
//! Run: `cargo run -p uvllm-bench --bin fig5_syntax --release`
//! (set `UVLLM_BENCH_SIZE=80` for a quick pass).

use uvllm_bench::harness::{dataset_size_from_env, evaluate, MethodKind};
use uvllm_bench::report::{fr, hr, pct_cell, Table};
use uvllm_errgen::{ErrorCategory, SyntaxCategory};

fn main() {
    let size = dataset_size_from_env();
    eprintln!("building dataset ({size} instances)...");
    let dataset = uvllm::build_dataset(size, 0xDA7A);
    let syntax: Vec<_> = dataset.syntax().into_iter().cloned().collect();
    eprintln!("{} syntax instances; evaluating 3 methods...", syntax.len());

    let methods = [MethodKind::Uvllm, MethodKind::Meic, MethodKind::GptDirect];
    let mut all_records = Vec::new();
    for m in methods {
        eprintln!("  running {}...", m.label());
        all_records.extend(evaluate(m, &syntax));
    }

    println!("Fig. 5 — HR vs FR in Syntax-Error Verification (%)");
    println!("(deviation = HR - FR, the overfitting gap shaded in the paper)\n");
    let mut table = Table::new(&[
        "Category",
        "FR(UVLLM)",
        "HR(UVLLM)",
        "FR(MEIC)",
        "HR(MEIC)",
        "FR(GPT-4)",
        "HR(GPT-4)",
    ]);
    for cat in SyntaxCategory::ALL {
        let mut row = vec![cat.label().to_string()];
        for m in methods {
            let recs: Vec<_> = all_records
                .iter()
                .filter(|r| r.method == m && r.category == ErrorCategory::Syntax(cat))
                .collect();
            row.push(pct_cell(fr(&recs)));
            row.push(pct_cell(hr(&recs)));
        }
        table.row(row);
    }
    // Average row.
    let mut avg = vec!["Average".to_string()];
    for m in methods {
        let recs: Vec<_> = all_records.iter().filter(|r| r.method == m).collect();
        avg.push(pct_cell(fr(&recs)));
        avg.push(pct_cell(hr(&recs)));
    }
    table.row(avg);
    println!("{}", table.render());

    // Deviation summary (Result 2 of the paper).
    println!("HR-FR deviation per method:");
    for m in methods {
        let recs: Vec<_> = all_records.iter().filter(|r| r.method == m).collect();
        println!("  {:<12} {:+.1} pp", m.label(), hr(&recs) - fr(&recs));
    }
}
