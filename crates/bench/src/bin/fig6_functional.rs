//! Regenerates **Fig. 6**: HR vs FR in functional-error verification for
//! UVLLM, GPT-4-turbo, Strider, MEIC and RTLrepair, per category.
//!
//! Run: `cargo run -p uvllm-bench --bin fig6_functional --release`

use uvllm_bench::harness::{dataset_size_from_env, evaluate, MethodKind};
use uvllm_bench::report::{fr, hr, pct_cell, Table};
use uvllm_errgen::{ErrorCategory, FunctionalCategory};

fn main() {
    let size = dataset_size_from_env();
    eprintln!("building dataset ({size} instances)...");
    let dataset = uvllm::build_dataset(size, 0xDA7A);
    let functional: Vec<_> = dataset.functional().into_iter().cloned().collect();
    eprintln!("{} functional instances; evaluating 5 methods...", functional.len());

    let methods = [
        MethodKind::Uvllm,
        MethodKind::GptDirect,
        MethodKind::Strider,
        MethodKind::Meic,
        MethodKind::RtlRepair,
    ];
    let mut all_records = Vec::new();
    for m in methods {
        eprintln!("  running {}...", m.label());
        all_records.extend(evaluate(m, &functional));
    }

    println!("Fig. 6 — HR vs FR in Functional-Error Verification (%)\n");
    let mut header: Vec<String> = vec!["Category".into()];
    for m in methods {
        header.push(format!("FR({})", m.label()));
        header.push(format!("HR({})", m.label()));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    for cat in FunctionalCategory::ALL {
        let mut row = vec![cat.label().to_string()];
        for m in methods {
            let recs: Vec<_> = all_records
                .iter()
                .filter(|r| r.method == m && r.category == ErrorCategory::Functional(cat))
                .collect();
            row.push(pct_cell(fr(&recs)));
            row.push(pct_cell(hr(&recs)));
        }
        table.row(row);
    }
    let mut avg = vec!["Average".to_string()];
    for m in methods {
        let recs: Vec<_> = all_records.iter().filter(|r| r.method == m).collect();
        avg.push(pct_cell(fr(&recs)));
        avg.push(pct_cell(hr(&recs)));
    }
    table.row(avg);
    println!("{}", table.render());

    println!("HR-FR deviation per method (the paper: >30 pp for baselines, ~1.4 pp for UVLLM):");
    for m in methods {
        let recs: Vec<_> = all_records.iter().filter(|r| r.method == m).collect();
        println!("  {:<12} {:+.1} pp", m.label(), hr(&recs) - fr(&recs));
    }
}
