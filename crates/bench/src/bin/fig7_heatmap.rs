//! Regenerates **Fig. 7**: the per-module FR heat map — 27 modules ×
//! (syntax, function) UVLLM fix rates, with `x` where an error type
//! cannot be imposed on a module.
//!
//! Run: `cargo run -p uvllm-bench --bin fig7_heatmap --release`

use uvllm_bench::harness::{dataset_size_from_env, evaluate, MethodKind};
use uvllm_bench::report::{fr, pct_cell, Table};

fn main() {
    let size = dataset_size_from_env();
    eprintln!("building dataset ({size} instances)...");
    let dataset = uvllm::build_dataset(size, 0xDA7A);
    eprintln!("{} instances; evaluating UVLLM...", dataset.instances.len());
    let records = evaluate(MethodKind::Uvllm, &dataset.instances);

    println!("Fig. 7 — UVLLM FR heat map per module (%; x = error type not applicable)\n");
    let mut table = Table::new(&["Module", "Group", "Type", "Syntax FR", "Function FR", "n"]);
    for design in uvllm_designs::all() {
        let syn: Vec<_> =
            records.iter().filter(|r| r.design == design.name && r.kind.is_syntax()).collect();
        let func: Vec<_> =
            records.iter().filter(|r| r.design == design.name && !r.kind.is_syntax()).collect();
        table.row(vec![
            design.name.to_string(),
            design.category.label().to_string(),
            design.module_type.to_string(),
            pct_cell(fr(&syn)),
            pct_cell(fr(&func)),
            format!("{}", syn.len() + func.len()),
        ]);
    }
    println!("{}", table.render());

    // Weighted means (the paper's Syntax / Function summary cells).
    let syn: Vec<_> = records.iter().filter(|r| r.kind.is_syntax()).collect();
    let func: Vec<_> = records.iter().filter(|r| !r.kind.is_syntax()).collect();
    println!(
        "Weighted mean FR:  syntax {:>5}   function {:>5}",
        pct_cell(fr(&syn)),
        pct_cell(fr(&func))
    );

    if !dataset.inapplicable.is_empty() {
        println!("\nInapplicable (design, error-type) pairs — the 'x' cells:");
        for (design, kind) in &dataset.inapplicable {
            println!("  {design} x {kind}");
        }
    }
}
