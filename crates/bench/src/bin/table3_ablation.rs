//! Regenerates **Table III**: the repair-generation-form ablation —
//! original→patched pairs (UVLLM_pair) vs complete-code regeneration
//! (UVLLM_comp), FR and Texec for syntax and functional errors.
//!
//! Run: `cargo run -p uvllm-bench --bin table3_ablation --release`

use uvllm_bench::harness::{dataset_size_from_env, evaluate, MethodKind};
use uvllm_bench::report::{fr, mean_time, pct_cell, secs_cell, Table};

fn main() {
    let size = dataset_size_from_env();
    eprintln!("building dataset ({size} instances)...");
    let dataset = uvllm::build_dataset(size, 0xDA7A);
    eprintln!("{} instances; evaluating both repair forms...", dataset.instances.len());
    let pair_recs = evaluate(MethodKind::Uvllm, &dataset.instances);
    let comp_recs = evaluate(MethodKind::UvllmComplete, &dataset.instances);

    println!("Table III — Ablation: repair generation form\n");
    let mut table =
        Table::new(&["Framework", "FR Syntax", "FR Func.", "Texec Syntax", "Texec Func."]);
    for (label, recs) in [("UVLLM_pair", &pair_recs), ("UVLLM_comp", &comp_recs)] {
        let syn: Vec<_> = recs.iter().filter(|r| r.kind.is_syntax()).collect();
        let func: Vec<_> = recs.iter().filter(|r| !r.kind.is_syntax()).collect();
        table.row(vec![
            label.to_string(),
            pct_cell(fr(&syn)),
            pct_cell(fr(&func)),
            secs_cell(mean_time(&syn)),
            secs_cell(mean_time(&func)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape (paper): pair-wise repair wins on FR and is 2-4x \
         faster; complete regeneration only helps on structural omissions."
    );
}
