//! Extension experiment (beyond the paper's Table III): ablates the two
//! framework mechanisms DESIGN.md calls out — the score-register
//! rollback and the MS→SL information escalation — quantifying what each
//! contributes to the fix rate.
//!
//! Run: `cargo run -p uvllm-bench --bin ablation_framework --release`

use uvllm::{BenchInstance, Uvllm, VerifyConfig};
use uvllm_bench::report::{pct_cell, percent, Table};
use uvllm_llm::{ModelProfile, OracleLlm};

fn run_with(config: &VerifyConfig, instances: &[BenchInstance]) -> (f64, f64) {
    let mut fixed_syntax = 0usize;
    let mut n_syntax = 0usize;
    let mut fixed_func = 0usize;
    let mut n_func = 0usize;
    for inst in instances {
        let mut llm = OracleLlm::new(
            inst.ground_truth.clone(),
            inst.design.source,
            ModelProfile::Gpt4Turbo,
            inst.seed ^ 0xAB1A,
        );
        let mut framework = Uvllm::new(&mut llm, config.clone());
        let out = framework.verify(inst.design, &inst.mutated_src);
        let fixed = out.success && uvllm::metrics::fix_confirmed(inst.design, &out.final_code);
        if inst.kind.is_syntax() {
            n_syntax += 1;
            fixed_syntax += fixed as usize;
        } else {
            n_func += 1;
            fixed_func += fixed as usize;
        }
    }
    (percent(fixed_syntax, n_syntax), percent(fixed_func, n_func))
}

fn main() {
    let size = std::env::var("UVLLM_BENCH_SIZE").ok().and_then(|s| s.parse().ok()).unwrap_or(160);
    eprintln!("building dataset ({size} instances)...");
    let dataset = uvllm::build_dataset(size, 0xDA7A);

    let configs: [(&str, VerifyConfig); 4] = [
        ("full framework", VerifyConfig::default()),
        ("no rollback", VerifyConfig { rollback_enabled: false, ..VerifyConfig::default() }),
        ("no SL escalation", VerifyConfig { sl_enabled: false, ..VerifyConfig::default() }),
        (
            "no rollback, no SL",
            VerifyConfig { rollback_enabled: false, sl_enabled: false, ..VerifyConfig::default() },
        ),
    ];

    println!("Framework-mechanism ablation (FR %, {} instances)\n", dataset.instances.len());
    let mut table = Table::new(&["Configuration", "FR Syntax", "FR Func."]);
    for (label, config) in configs {
        eprintln!("  running {label}...");
        let (syn, func) = run_with(&config, &dataset.instances);
        table.row(vec![label.to_string(), pct_cell(syn), pct_cell(func)]);
    }
    println!("{}", table.render());
    println!(
        "expected: disabling rollback lets damaging patches persist; \
         disabling SL keeps hard functional errors at MS-level information."
    );
}
