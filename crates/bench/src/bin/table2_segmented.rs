//! Regenerates **Table II**: per-stage FR/Texec contributions of the
//! segmented pipeline (Pre-processing, MS mode, SL mode) across module
//! groups and error classes, with the MEIC comparison and speedup.
//!
//! Run: `cargo run -p uvllm-bench --bin table2_segmented --release`

use uvllm::Stage;
use uvllm_bench::harness::{dataset_size_from_env, evaluate, EvalRecord, MethodKind};
use uvllm_bench::report::{fr, mean_time, pct_cell, percent, secs_cell, Table};
use uvllm_designs::Category;

fn stage_fr(records: &[&EvalRecord], stage: Stage) -> f64 {
    percent(records.iter().filter(|r| r.fixed && r.fixed_by == Some(stage)).count(), records.len())
}

fn stage_time(records: &[&EvalRecord], pick: fn(&uvllm::StageTimes) -> f64) -> f64 {
    if records.is_empty() {
        return f64::NAN;
    }
    records.iter().filter_map(|r| r.stage_times.as_ref().map(pick)).sum::<f64>()
        / records.len() as f64
}

fn main() {
    let size = dataset_size_from_env();
    eprintln!("building dataset ({size} instances)...");
    let dataset = uvllm::build_dataset(size, 0xDA7A);
    eprintln!("{} instances; evaluating UVLLM + MEIC...", dataset.instances.len());
    let uvllm_recs = evaluate(MethodKind::Uvllm, &dataset.instances);
    let meic_recs = evaluate(MethodKind::Meic, &dataset.instances);

    println!("Table II — Performance of the segmented approach (FR %, Texec s)\n");
    let mut table = Table::new(&[
        "Types", "Pre FR", "Pre T", "MS FR", "MS T", "SL FR", "SL T", "UVLLM FR", "UVLLM T",
        "MEIC FR", "MEIC T", "Speedup",
    ]);

    let emit = |label: String, u: Vec<&EvalRecord>, m: Vec<&EvalRecord>, table: &mut Table| {
        if u.is_empty() {
            return;
        }
        let ut = mean_time(&u);
        let mt = mean_time(&m);
        table.row(vec![
            label,
            pct_cell(stage_fr(&u, Stage::Preprocess)),
            secs_cell(stage_time(&u, |t| t.preprocess.as_secs_f64())),
            pct_cell(stage_fr(&u, Stage::RepairMs)),
            secs_cell(stage_time(&u, |t| t.ms.as_secs_f64())),
            pct_cell(stage_fr(&u, Stage::RepairSl)),
            secs_cell(stage_time(&u, |t| t.sl.as_secs_f64())),
            pct_cell(fr(&u)),
            secs_cell(ut),
            pct_cell(fr(&m)),
            secs_cell(mt),
            if ut > 0.0 && mt.is_finite() { format!("{:.2}x", mt / ut) } else { "x".into() },
        ]);
    };

    for syntax in [true, false] {
        for group in Category::ALL {
            let u: Vec<_> = uvllm_recs
                .iter()
                .filter(|r| r.group == group && r.kind.is_syntax() == syntax)
                .collect();
            let m: Vec<_> = meic_recs
                .iter()
                .filter(|r| r.group == group && r.kind.is_syntax() == syntax)
                .collect();
            let tag = if syntax { "s" } else { "f" };
            emit(format!("{} {tag}", group.label()), u, m, &mut table);
        }
        let u: Vec<_> = uvllm_recs.iter().filter(|r| r.kind.is_syntax() == syntax).collect();
        let m: Vec<_> = meic_recs.iter().filter(|r| r.kind.is_syntax() == syntax).collect();
        emit(if syntax { "Syntax".to_string() } else { "Function".to_string() }, u, m, &mut table);
    }
    let u: Vec<_> = uvllm_recs.iter().collect();
    let m: Vec<_> = meic_recs.iter().collect();
    emit("Overall".to_string(), u, m, &mut table);

    println!("{}", table.render());
    println!(
        "note: per-stage FR columns attribute each fixed instance to the stage \
         that produced the final successful change; UVLLM FR is their sum."
    );
}
