//! Method evaluation over benchmark instances.
//!
//! The evaluation logic itself ([`MethodKind`], [`EvalRecord`],
//! [`evaluate_one`]) lives in `uvllm-campaign` and is re-exported here;
//! this module keeps the historical `evaluate` entry point, now running
//! on the campaign engine's worker pool instead of a serial loop.

pub use uvllm_campaign::{evaluate_one, EvalRecord, EvalRow, MethodKind};

use uvllm::BenchInstance;

/// Evaluates `method` on every instance (records in instance order),
/// fanned out over [`worker_count_from_env`] campaign workers on the
/// [`sim_backend_from_env`] simulation kernel.
pub fn evaluate(method: MethodKind, instances: &[BenchInstance]) -> Vec<EvalRecord> {
    uvllm_campaign::evaluate_parallel_with(
        method,
        instances,
        worker_count_from_env(),
        sim_backend_from_env(),
    )
}

/// Reads the dataset size from `UVLLM_BENCH_SIZE` (default: the paper's
/// 331; set a smaller value for quick runs).
pub fn dataset_size_from_env() -> usize {
    std::env::var("UVLLM_BENCH_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(uvllm::dataset::PAPER_DATASET_SIZE)
}

/// Reads the worker count from `UVLLM_WORKERS` (default: one per
/// available CPU) — the campaign engine's sizing policy. A
/// set-but-invalid value panics with a clear message instead of
/// silently falling back to the CPU count
/// (see [`uvllm_campaign::worker_count_from_env`]).
pub fn worker_count_from_env() -> usize {
    uvllm_campaign::default_worker_count()
}

/// Reads the simulation kernel from `UVLLM_SIM_BACKEND` (`event` /
/// `compiled`; default: the event-driven engine). Every harness entry
/// point honours this flag, so a whole experiment can be flipped onto
/// the compiled levelized kernel without touching code.
pub fn sim_backend_from_env() -> uvllm_sim::SimBackend {
    uvllm_sim::SimBackend::from_env()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm::build_instance;
    use uvllm_designs::{by_name, Category};
    use uvllm_errgen::ErrorKind;

    #[test]
    fn evaluate_one_produces_consistent_record() {
        let d = by_name("adder_8bit").unwrap();
        let inst = build_instance(d, ErrorKind::OperatorMisuse, 5).expect("instance");
        let rec = evaluate_one(MethodKind::Uvllm, &inst);
        assert_eq!(rec.design, "adder_8bit");
        assert_eq!(rec.group, Category::Arithmetic);
        assert!(rec.texec > 0.0);
        // Fixed implies hit (FR campaign includes the public vectors).
        if rec.fixed {
            assert!(rec.hit);
        }
        // UVLLM success implies differential equivalence (the strong
        // testbench does not overfit on these simple adders).
        assert!(rec.stage_times.is_some());
    }

    #[test]
    fn methods_are_deterministic() {
        let d = by_name("counter_12").unwrap();
        let inst = build_instance(d, ErrorKind::ValueMisuse, 9).expect("instance");
        let a = evaluate_one(MethodKind::Meic, &inst);
        let b = evaluate_one(MethodKind::Meic, &inst);
        assert_eq!(a.fixed, b.fixed);
        assert_eq!(a.hit, b.hit);
        assert_eq!(a.usage.calls, b.usage.calls);
    }

    #[test]
    fn script_methods_report_zero_llm_usage() {
        let d = by_name("alu_8bit").unwrap();
        let inst = build_instance(d, ErrorKind::OperatorMisuse, 2).expect("instance");
        let rec = evaluate_one(MethodKind::Strider, &inst);
        assert_eq!(rec.usage.calls, 0);
        let rec = evaluate_one(MethodKind::RtlRepair, &inst);
        assert_eq!(rec.usage.calls, 0);
    }

    #[test]
    fn parallel_evaluate_matches_serial_evaluate_one() {
        let d = by_name("adder_8bit").unwrap();
        let instances: Vec<BenchInstance> =
            (0..4).filter_map(|s| build_instance(d, ErrorKind::OperatorMisuse, s)).collect();
        assert!(!instances.is_empty());
        let parallel = evaluate(MethodKind::Uvllm, &instances);
        assert_eq!(parallel.len(), instances.len());
        for (rec, inst) in parallel.iter().zip(&instances) {
            let serial = evaluate_one(MethodKind::Uvllm, inst);
            assert_eq!(rec.instance_id, serial.instance_id);
            assert_eq!(rec.to_row().to_json_line(), serial.to_row().to_json_line());
        }
    }
}
