//! Method evaluation over benchmark instances.

use uvllm::{BenchInstance, Stage, StageTimes, Uvllm, VerifyConfig};
use uvllm_baselines::{GptDirect, MeicRepair, RepairMethod, RtlRepair, StriderRepair};
use uvllm_designs::Category;
use uvllm_errgen::{ErrorCategory, ErrorKind};
use uvllm_llm::{ModelProfile, OracleLlm, OutputMode, Usage};

/// Which method to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// The full framework (pair-wise repair generation).
    Uvllm,
    /// Table III ablation: complete-code regeneration.
    UvllmComplete,
    Meic,
    GptDirect,
    Strider,
    RtlRepair,
}

impl MethodKind {
    /// Display name used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Uvllm => "UVLLM",
            MethodKind::UvllmComplete => "UVLLM(comp)",
            MethodKind::Meic => "MEIC",
            MethodKind::GptDirect => "GPT-4-turbo",
            MethodKind::Strider => "Strider",
            MethodKind::RtlRepair => "RTLrepair",
        }
    }

    /// Seed salt so each method draws independent oracle randomness.
    fn salt(&self) -> u64 {
        match self {
            MethodKind::Uvllm => 0x01,
            MethodKind::UvllmComplete => 0x02,
            MethodKind::Meic => 0x03,
            MethodKind::GptDirect => 0x04,
            MethodKind::Strider => 0x05,
            MethodKind::RtlRepair => 0x06,
        }
    }
}

/// One instance × method evaluation result.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    pub instance_id: String,
    pub design: &'static str,
    pub group: Category,
    pub kind: ErrorKind,
    pub category: ErrorCategory,
    pub method: MethodKind,
    /// Passed the public directed vectors (Hit Rate).
    pub hit: bool,
    /// Passed the extended differential validation (Fix Rate).
    pub fixed: bool,
    /// The method's own claim of success.
    pub claimed: bool,
    /// Total execution time in (simulated+measured) seconds.
    pub texec: f64,
    /// UVLLM-only: per-stage times.
    pub stage_times: Option<StageTimes>,
    /// UVLLM-only: which stage produced the final fix.
    pub fixed_by: Option<Stage>,
    /// LLM accounting.
    pub usage: Usage,
}

/// Evaluates `method` on every instance, judging candidates externally.
pub fn evaluate(method: MethodKind, instances: &[BenchInstance]) -> Vec<EvalRecord> {
    instances.iter().map(|inst| evaluate_one(method, inst)).collect()
}

/// Evaluates `method` on one instance.
pub fn evaluate_one(method: MethodKind, inst: &BenchInstance) -> EvalRecord {
    let oracle_seed = inst.seed ^ method.salt().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let design = inst.design;
    let (final_code, claimed, texec, stage_times, fixed_by, usage) = match method {
        MethodKind::Uvllm | MethodKind::UvllmComplete => {
            let mut llm = OracleLlm::new(
                inst.ground_truth.clone(),
                design.source,
                ModelProfile::Gpt4Turbo,
                oracle_seed,
            );
            let config = VerifyConfig {
                output_mode: if method == MethodKind::UvllmComplete {
                    OutputMode::Complete
                } else {
                    OutputMode::Pairs
                },
                ..VerifyConfig::default()
            };
            let mut framework = Uvllm::new(&mut llm, config);
            let out = framework.verify(design, &inst.mutated_src);
            (
                out.final_code,
                out.success,
                out.times.total().as_secs_f64(),
                Some(out.times),
                out.fixed_by,
                out.usage,
            )
        }
        MethodKind::Meic => {
            let mut llm = OracleLlm::new(
                inst.ground_truth.clone(),
                design.source,
                ModelProfile::Gpt4TurboWeakHarness,
                oracle_seed,
            );
            let mut m = MeicRepair::new(&mut llm);
            let out = m.repair(design, &inst.mutated_src);
            (out.final_code, out.claimed_success, out.time.as_secs_f64(), None, None, out.usage)
        }
        MethodKind::GptDirect => {
            let mut llm = OracleLlm::new(
                inst.ground_truth.clone(),
                design.source,
                ModelProfile::Gpt4TurboWeakHarness,
                oracle_seed,
            );
            let mut m = GptDirect::new(&mut llm);
            let out = m.repair(design, &inst.mutated_src);
            (out.final_code, out.claimed_success, out.time.as_secs_f64(), None, None, out.usage)
        }
        MethodKind::Strider => {
            let mut m = StriderRepair::new();
            let out = m.repair(design, &inst.mutated_src);
            (out.final_code, out.claimed_success, out.time.as_secs_f64(), None, None, out.usage)
        }
        MethodKind::RtlRepair => {
            let mut m = RtlRepair::new();
            let out = m.repair(design, &inst.mutated_src);
            (out.final_code, out.claimed_success, out.time.as_secs_f64(), None, None, out.usage)
        }
    };
    let hit = uvllm::metrics::hit_confirmed(design, &final_code);
    let fixed = uvllm::metrics::fix_confirmed(design, &final_code);
    EvalRecord {
        instance_id: inst.id(),
        design: design.name,
        group: design.category,
        kind: inst.kind,
        category: inst.ground_truth.category,
        method,
        hit,
        fixed,
        claimed,
        texec,
        stage_times,
        fixed_by,
        usage,
    }
}

/// Reads the dataset size from `UVLLM_BENCH_SIZE` (default: the paper's
/// 331; set a smaller value for quick runs).
pub fn dataset_size_from_env() -> usize {
    std::env::var("UVLLM_BENCH_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(uvllm::dataset::PAPER_DATASET_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm::build_instance;
    use uvllm_designs::by_name;

    #[test]
    fn evaluate_one_produces_consistent_record() {
        let d = by_name("adder_8bit").unwrap();
        let inst = build_instance(d, ErrorKind::OperatorMisuse, 5).expect("instance");
        let rec = evaluate_one(MethodKind::Uvllm, &inst);
        assert_eq!(rec.design, "adder_8bit");
        assert_eq!(rec.group, Category::Arithmetic);
        assert!(rec.texec > 0.0);
        // Fixed implies hit (FR campaign includes the public vectors).
        if rec.fixed {
            assert!(rec.hit);
        }
        // UVLLM success implies differential equivalence (the strong
        // testbench does not overfit on these simple adders).
        assert!(rec.stage_times.is_some());
    }

    #[test]
    fn methods_are_deterministic() {
        let d = by_name("counter_12").unwrap();
        let inst = build_instance(d, ErrorKind::ValueMisuse, 9).expect("instance");
        let a = evaluate_one(MethodKind::Meic, &inst);
        let b = evaluate_one(MethodKind::Meic, &inst);
        assert_eq!(a.fixed, b.fixed);
        assert_eq!(a.hit, b.hit);
        assert_eq!(a.usage.calls, b.usage.calls);
    }

    #[test]
    fn script_methods_report_zero_llm_usage() {
        let d = by_name("alu_8bit").unwrap();
        let inst = build_instance(d, ErrorKind::OperatorMisuse, 2).expect("instance");
        let rec = evaluate_one(MethodKind::Strider, &inst);
        assert_eq!(rec.usage.calls, 0);
        let rec = evaluate_one(MethodKind::RtlRepair, &inst);
        assert_eq!(rec.usage.calls, 0);
    }
}
