//! Property tests: printer/parser round-trips and lexer totality over
//! generated inputs.
//!
//! Written as seeded randomised loops with a hand-rolled AST/string
//! generator (the workspace builds without the `proptest` crate).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uvllm_verilog::ast::*;
use uvllm_verilog::{parse, parse_expr, print_expr, print_source};

/// Random identifier that is never a keyword: `[a-z][a-z0-9_]{0,6}`.
fn ident(rng: &mut StdRng) -> String {
    loop {
        let len = rng.random_range(1..8usize);
        let mut s = String::new();
        s.push((b'a' + rng.random_range(0..26u32) as u8) as char);
        for _ in 1..len {
            let c = match rng.random_range(0..37u32) {
                0..=25 => (b'a' + rng.random_range(0..26u32) as u8) as char,
                26..=35 => (b'0' + rng.random_range(0..10u32) as u8) as char,
                _ => '_',
            };
            s.push(c);
        }
        if uvllm_verilog::token::Keyword::lookup(&s).is_none() {
            return s;
        }
    }
}

/// Random number literal (sized hex or unsized decimal).
fn number(rng: &mut StdRng) -> Expr {
    if rng.random::<bool>() {
        let w = rng.random_range(1..=32u32);
        let v = rng.random::<u64>();
        Expr::Number(Number::sized(
            w,
            uvllm_verilog::token::NumberBase::Hex,
            (v as u128) & ((1u128 << w) - 1),
        ))
    } else {
        Expr::number(rng.random_range(0..100_000u64) as u128)
    }
}

/// Random expression tree of bounded depth.
fn expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.random_range(0..4u32) == 0 {
        return if rng.random::<bool>() { number(rng) } else { Expr::Ident(ident(rng)) };
    }
    match rng.random_range(0..7u32) {
        0 => Expr::Binary(
            BinaryOp::Add,
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
        ),
        1 => Expr::Binary(
            BinaryOp::BitXor,
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
        ),
        2 => Expr::Binary(
            BinaryOp::Lt,
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
        ),
        3 => Expr::Ternary(
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
            Box::new(expr(rng, depth - 1)),
        ),
        4 => Expr::Unary(UnaryOp::BitNot, Box::new(expr(rng, depth - 1))),
        5 => Expr::Unary(UnaryOp::LogNot, Box::new(expr(rng, depth - 1))),
        _ => {
            let n = rng.random_range(1..4usize);
            Expr::Concat((0..n).map(|_| expr(rng, depth - 1)).collect())
        }
    }
}

/// Random printable-ish string drawn from `alphabet`.
fn random_text(rng: &mut StdRng, alphabet: &[char], max_len: usize) -> String {
    let len = rng.random_range(0..=max_len as u64) as usize;
    (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect()
}

/// ASCII printable + newline (the parser's natural input alphabet).
fn ascii_alphabet() -> Vec<char> {
    let mut v: Vec<char> = (b' '..=b'~').map(|b| b as char).collect();
    v.push('\n');
    v
}

/// Printable chars including some multi-byte UTF-8 (lexer totality).
fn unicode_alphabet() -> Vec<char> {
    let mut v = ascii_alphabet();
    v.extend(['é', 'Ω', '—', '≤', '𝄞', 'µ', '中']);
    v
}

/// print → parse is the identity on expression ASTs.
#[test]
fn expr_print_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xE19A);
    for _ in 0..256 {
        let e = expr(&mut rng, 4);
        let printed = print_expr(&e);
        let reparsed =
            parse_expr(&printed).unwrap_or_else(|err| panic!("`{printed}` failed to parse: {err}"));
        assert_eq!(reparsed, e, "printed: {printed}");
    }
}

/// The lexer never panics on arbitrary input (totality).
#[test]
fn lexer_is_total() {
    let mut rng = StdRng::seed_from_u64(0x7E7A);
    let alphabet = unicode_alphabet();
    for _ in 0..256 {
        let s = random_text(&mut rng, &alphabet, 200);
        let _ = uvllm_verilog::lexer::tokenize(&s);
    }
}

/// The parser never panics on arbitrary ASCII-ish input.
#[test]
fn parser_is_total() {
    let mut rng = StdRng::seed_from_u64(0xAA5C);
    let alphabet = ascii_alphabet();
    for _ in 0..256 {
        let s = random_text(&mut rng, &alphabet, 300);
        let _ = parse(&s);
    }
}

/// Simple generated modules round-trip through print_source.
#[test]
fn module_roundtrip() {
    fn rename(e: &Expr, to: &str) -> Expr {
        match e {
            Expr::Ident(_) => Expr::Ident(to.to_string()),
            Expr::Number(n) => Expr::Number(n.clone()),
            Expr::Unary(op, a) => Expr::Unary(*op, Box::new(rename(a, to))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(rename(a, to)), Box::new(rename(b, to)))
            }
            Expr::Ternary(c, t, e2) => Expr::Ternary(
                Box::new(rename(c, to)),
                Box::new(rename(t, to)),
                Box::new(rename(e2, to)),
            ),
            Expr::Concat(items) => Expr::Concat(items.iter().map(|i| rename(i, to)).collect()),
            other => other.clone(),
        }
    }
    let mut rng = StdRng::seed_from_u64(0x30D0);
    for _ in 0..128 {
        let name = ident(&mut rng);
        if name == "din" || name == "dout" {
            continue;
        }
        let in_w = rng.random_range(1..16u32);
        let out_w = rng.random_range(1..16u32);
        // Restrict the RHS to declared identifiers by renaming all
        // identifiers to the input port.
        let rhs = rename(&expr(&mut rng, 4), "din");
        let src = format!(
            "module {name}(input [{0}:0] din, output [{1}:0] dout);\nassign dout = {2};\nendmodule\n",
            in_w - 1,
            out_w - 1,
            print_expr(&rhs),
        );
        let ast1 = parse(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let printed = print_source(&ast1);
        let ast2 = parse(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
        assert_eq!(print_source(&ast2), printed, "print not idempotent");
    }
}

/// Spans reported by the lexer always slice validly into the input.
#[test]
fn token_spans_are_valid() {
    let mut rng = StdRng::seed_from_u64(0x59A7);
    let alphabet = unicode_alphabet();
    for _ in 0..256 {
        let s = random_text(&mut rng, &alphabet, 200);
        if let Ok(tokens) = uvllm_verilog::lexer::tokenize(&s) {
            for t in tokens {
                assert!(t.span.end <= s.len());
                assert!(t.span.start <= t.span.end);
                // Spans must lie on char boundaries.
                assert!(s.is_char_boundary(t.span.start));
                assert!(s.is_char_boundary(t.span.end));
            }
        }
    }
}
