//! Property tests: printer/parser round-trips and lexer totality over
//! generated inputs.

use proptest::prelude::*;
use uvllm_verilog::ast::*;
use uvllm_verilog::{parse, parse_expr, print_expr, print_source};

/// Strategy for identifier names.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        uvllm_verilog::token::Keyword::from_str(s).is_none()
    })
}

/// Strategy for numbers (sized and unsized).
fn number() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (1u32..=32, any::<u64>()).prop_map(|(w, v)| {
            Expr::Number(Number::sized(w, uvllm_verilog::token::NumberBase::Hex, (v as u128) & ((1u128 << w) - 1)))
        }),
        (0u64..100000).prop_map(|v| Expr::number(v as u128)),
    ]
}

/// Recursive expression strategy.
fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![number(), ident().prop_map(Expr::Ident)];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary(
                BinaryOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary(
                BinaryOp::BitXor,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary(
                BinaryOp::Lt,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| {
                Expr::Ternary(Box::new(c), Box::new(t), Box::new(e))
            }),
            inner.clone().prop_map(|e| Expr::Unary(UnaryOp::BitNot, Box::new(e))),
            inner.clone().prop_map(|e| Expr::Unary(UnaryOp::LogNot, Box::new(e))),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::Concat),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse is the identity on expression ASTs.
    #[test]
    fn expr_print_parse_roundtrip(e in expr()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to parse: {err}"));
        prop_assert_eq!(&reparsed, &e, "printed: {}", printed);
    }

    /// The lexer never panics on arbitrary input (totality).
    #[test]
    fn lexer_is_total(s in "\\PC{0,200}") {
        let _ = uvllm_verilog::lexer::tokenize(&s);
    }

    /// The parser never panics on arbitrary ASCII-ish input.
    #[test]
    fn parser_is_total(s in "[ -~\\n]{0,300}") {
        let _ = parse(&s);
    }

    /// Simple generated modules round-trip through print_source.
    #[test]
    fn module_roundtrip(
        name in ident(),
        in_w in 1u32..16,
        out_w in 1u32..16,
        rhs in expr(),
    ) {
        // Restrict the RHS to declared identifiers by renaming all
        // identifiers to the input port.
        fn rename(e: &Expr, to: &str) -> Expr {
            match e {
                Expr::Ident(_) => Expr::Ident(to.to_string()),
                Expr::Number(n) => Expr::Number(n.clone()),
                Expr::Unary(op, a) => Expr::Unary(*op, Box::new(rename(a, to))),
                Expr::Binary(op, a, b) => {
                    Expr::Binary(*op, Box::new(rename(a, to)), Box::new(rename(b, to)))
                }
                Expr::Ternary(c, t, e2) => Expr::Ternary(
                    Box::new(rename(c, to)),
                    Box::new(rename(t, to)),
                    Box::new(rename(e2, to)),
                ),
                Expr::Concat(items) => {
                    Expr::Concat(items.iter().map(|i| rename(i, to)).collect())
                }
                other => other.clone(),
            }
        }
        prop_assume!(name != "din" && name != "dout");
        let rhs = rename(&rhs, "din");
        let src = format!(
            "module {name}(input [{0}:0] din, output [{1}:0] dout);\nassign dout = {2};\nendmodule\n",
            in_w - 1, out_w - 1, print_expr(&rhs),
        );
        let ast1 = parse(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let printed = print_source(&ast1);
        let ast2 = parse(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
        prop_assert_eq!(print_source(&ast2), printed, "print not idempotent");
    }

    /// Spans reported by the lexer always slice validly into the input.
    #[test]
    fn token_spans_are_valid(s in "[ -~\\n]{0,200}") {
        if let Ok(tokens) = uvllm_verilog::lexer::tokenize(&s) {
            for t in tokens {
                prop_assert!(t.span.end <= s.len());
                prop_assert!(t.span.start <= t.span.end);
                // Spans must lie on char boundaries.
                prop_assert!(s.is_char_boundary(t.span.start));
                prop_assert!(s.is_char_boundary(t.span.end));
            }
        }
    }
}
