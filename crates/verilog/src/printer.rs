//! Pretty-printer: renders an AST back to canonical Verilog text.
//!
//! Round-tripping `parse(print(ast))` yields an equal AST (modulo spans);
//! this property is exercised in the crate's proptest suite. The printer
//! is used by the "complete code" repair ablation and by the error
//! generator when a mutation cannot be expressed as a local text edit.

use crate::ast::*;
use crate::token::NumberBase;
use std::fmt::Write;

/// Renders a full source file.
pub fn print_source(file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, m) in file.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_module(&mut out, m);
    }
    out
}

/// Renders a single module.
pub fn print_module_str(module: &Module) -> String {
    let mut out = String::new();
    print_module(&mut out, module);
    out
}

/// Renders an expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    expr_into(&mut out, expr, 0);
    out
}

/// Renders a statement at indent level 0.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    stmt_into(&mut out, stmt, 0);
    out
}

/// Renders an assignment target.
pub fn print_lvalue(lv: &LValue) -> String {
    let mut out = String::new();
    lvalue_into(&mut out, lv);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_module(out: &mut String, m: &Module) {
    let _ = write!(out, "module {}", m.name);
    if m.ports.is_empty() {
        out.push_str(";\n");
    } else {
        out.push_str(" (\n");
        for (i, p) in m.ports.iter().enumerate() {
            indent(out, 1);
            let _ = write!(out, "{}", p.dir);
            if p.net == NetKind::Reg {
                out.push_str(" reg");
            }
            if p.signed {
                out.push_str(" signed");
            }
            if let Some(r) = &p.range {
                out.push(' ');
                range_into(out, r);
            }
            let _ = write!(out, " {}", p.name);
            if i + 1 < m.ports.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str(");\n");
    }
    for item in &m.items {
        item_into(out, item, 1);
    }
    out.push_str("endmodule\n");
}

fn range_into(out: &mut String, r: &Range) {
    out.push('[');
    expr_into(out, &r.msb, 0);
    out.push(':');
    expr_into(out, &r.lsb, 0);
    out.push(']');
}

fn item_into(out: &mut String, item: &Item, level: usize) {
    match item {
        Item::Net(d) => {
            // Skip storage declarations synthesised from `output reg`
            // body ports? No: printing them is harmless and keeps the
            // printer total; the parser tolerates re-declaration.
            indent(out, level);
            let _ = write!(out, "{}", d.kind);
            if d.signed {
                out.push_str(" signed");
            }
            if let Some(r) = &d.range {
                out.push(' ');
                range_into(out, r);
            }
            for (i, decl) in d.decls.iter().enumerate() {
                out.push(if i == 0 { ' ' } else { ',' });
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&decl.name);
                if let Some(a) = &decl.array {
                    out.push(' ');
                    range_into(out, a);
                }
                if let Some(init) = &decl.init {
                    out.push_str(" = ");
                    expr_into(out, init, 0);
                }
            }
            out.push_str(";\n");
        }
        Item::Param(p) => {
            indent(out, level);
            out.push_str(if p.local { "localparam" } else { "parameter" });
            if let Some(r) = &p.range {
                out.push(' ');
                range_into(out, r);
            }
            for (i, (name, value)) in p.params.iter().enumerate() {
                out.push(if i == 0 { ' ' } else { ',' });
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{name} = ");
                expr_into(out, value, 0);
            }
            out.push_str(";\n");
        }
        Item::Integer(d) => {
            indent(out, level);
            let _ = writeln!(out, "integer {};", d.names.join(", "));
        }
        Item::Assign(a) => {
            indent(out, level);
            out.push_str("assign ");
            lvalue_into(out, &a.lhs);
            out.push_str(" = ");
            expr_into(out, &a.rhs, 0);
            out.push_str(";\n");
        }
        Item::Always(a) => {
            indent(out, level);
            out.push_str("always @(");
            match &a.sensitivity {
                Sensitivity::Star => out.push('*'),
                Sensitivity::List(items) => {
                    for (i, s) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(" or ");
                        }
                        if let Some(e) = s.edge {
                            let _ = write!(out, "{e} ");
                        }
                        out.push_str(&s.signal);
                    }
                }
            }
            out.push_str(") ");
            stmt_tail(out, &a.body, level);
        }
        Item::Initial(i) => {
            indent(out, level);
            out.push_str("initial ");
            stmt_tail(out, &i.body, level);
        }
        Item::Instance(inst) => {
            indent(out, level);
            out.push_str(&inst.module);
            if !inst.params.is_empty() {
                out.push_str(" #(");
                conns_into(out, &inst.params);
                out.push(')');
            }
            let _ = write!(out, " {} (", inst.name);
            conns_into(out, &inst.conns);
            out.push_str(");\n");
        }
    }
}

fn conns_into(out: &mut String, conns: &[Connection]) {
    for (i, c) in conns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match (&c.port, &c.expr) {
            (Some(p), Some(e)) => {
                let _ = write!(out, ".{p}(");
                expr_into(out, e, 0);
                out.push(')');
            }
            (Some(p), None) => {
                let _ = write!(out, ".{p}()");
            }
            (None, Some(e)) => expr_into(out, e, 0),
            (None, None) => {}
        }
    }
}

/// Prints a statement that follows a header (`always @(…) `), writing the
/// body inline for blocks and on the same line otherwise.
fn stmt_tail(out: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::Block(_) => {
            stmt_into_inline(out, stmt, level);
        }
        _ => {
            out.push('\n');
            stmt_into(out, stmt, level + 1);
        }
    }
}

fn stmt_into(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    stmt_into_inline(out, stmt, level);
}

fn stmt_into_inline(out: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::Block(b) => {
            out.push_str("begin");
            if let Some(l) = &b.label {
                let _ = write!(out, " : {l}");
            }
            out.push('\n');
            for s in &b.stmts {
                stmt_into(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::Blocking(a) => {
            lvalue_into(out, &a.lhs);
            out.push_str(" = ");
            expr_into(out, &a.rhs, 0);
            out.push_str(";\n");
        }
        Stmt::NonBlocking(a) => {
            lvalue_into(out, &a.lhs);
            out.push_str(" <= ");
            expr_into(out, &a.rhs, 0);
            out.push_str(";\n");
        }
        Stmt::If(i) => {
            out.push_str("if (");
            expr_into(out, &i.cond, 0);
            out.push_str(") ");
            branch_into(out, &i.then_branch, level);
            if let Some(e) = &i.else_branch {
                indent(out, level);
                out.push_str("else ");
                branch_into(out, e, level);
            }
        }
        Stmt::Case(c) => {
            let _ = write!(out, "{} (", c.kind);
            expr_into(out, &c.expr, 0);
            out.push_str(")\n");
            for arm in &c.arms {
                indent(out, level + 1);
                for (i, l) in arm.labels.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr_into(out, l, 0);
                }
                out.push_str(": ");
                branch_into(out, &arm.body, level + 1);
            }
            if let Some(d) = &c.default {
                indent(out, level + 1);
                out.push_str("default: ");
                branch_into(out, d, level + 1);
            }
            indent(out, level);
            out.push_str("endcase\n");
        }
        Stmt::For(f) => {
            out.push_str("for (");
            lvalue_into(out, &f.init.0);
            out.push_str(" = ");
            expr_into(out, &f.init.1, 0);
            out.push_str("; ");
            expr_into(out, &f.cond, 0);
            out.push_str("; ");
            lvalue_into(out, &f.step.0);
            out.push_str(" = ");
            expr_into(out, &f.step.1, 0);
            out.push_str(") ");
            branch_into(out, &f.body, level);
        }
        Stmt::SysCall(s) => {
            out.push_str(&s.name);
            if !s.args.is_empty() {
                out.push('(');
                for (i, a) in s.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr_into(out, a, 0);
                }
                out.push(')');
            }
            out.push_str(";\n");
        }
        Stmt::Null(_) => out.push_str(";\n"),
    }
}

/// Prints a branch body: blocks inline, single statements on a new line.
fn branch_into(out: &mut String, stmt: &Stmt, level: usize) {
    match stmt {
        Stmt::Block(_) => stmt_into_inline(out, stmt, level),
        _ => {
            out.push('\n');
            stmt_into(out, stmt, level + 1);
        }
    }
}

fn lvalue_into(out: &mut String, lv: &LValue) {
    match lv {
        LValue::Ident(n, _) => out.push_str(n),
        LValue::Index(n, i, _) => {
            out.push_str(n);
            out.push('[');
            expr_into(out, i, 0);
            out.push(']');
        }
        LValue::Part(n, m, l, _) => {
            out.push_str(n);
            out.push('[');
            expr_into(out, m, 0);
            out.push(':');
            expr_into(out, l, 0);
            out.push(']');
        }
        LValue::Concat(parts, _) => {
            out.push('{');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                lvalue_into(out, p);
            }
            out.push('}');
        }
    }
}

fn number_into(out: &mut String, n: &Number) {
    match (n.width, n.base) {
        (None, NumberBase::Dec) if n.xz == 0 => {
            let _ = write!(out, "{}", n.value);
        }
        _ => {
            if let Some(w) = n.width {
                let _ = write!(out, "{w}");
            }
            out.push('\'');
            if n.signed {
                out.push('s');
            }
            out.push(n.base.letter());
            digits_into(out, n);
        }
    }
}

fn digits_into(out: &mut String, n: &Number) {
    let width = n.effective_width();
    let bits = n.base.bits_per_digit();
    if n.base == NumberBase::Dec {
        if n.xz == 0 {
            let _ = write!(out, "{}", n.value);
        } else if n.value & n.xz != 0 {
            out.push('z');
        } else {
            out.push('x');
        }
        return;
    }
    let ndigits = width.div_ceil(bits);
    let mut digits = Vec::with_capacity(ndigits as usize);
    for i in 0..ndigits {
        let shift = i * bits;
        let v = ((n.value >> shift) as u32) & ((1 << bits) - 1);
        let z = ((n.xz >> shift) as u32) & ((1 << bits) - 1);
        let ch = if z != 0 {
            // Mixed X/Z within one digit cannot occur from our parser;
            // render by the dominant flavour.
            if v & z == z {
                'z'
            } else {
                'x'
            }
        } else {
            char::from_digit(v, 16).unwrap_or('0')
        };
        digits.push(ch);
    }
    digits.reverse();
    // Strip redundant leading zeros but keep at least one digit.
    let text: String = digits.into_iter().collect();
    let trimmed = text.trim_start_matches('0');
    out.push_str(if trimmed.is_empty() { "0" } else { trimmed });
}

fn expr_into(out: &mut String, expr: &Expr, parent_prec: u8) {
    match expr {
        Expr::Number(n) => number_into(out, n),
        Expr::Ident(n) => out.push_str(n),
        Expr::Unary(op, e) => {
            out.push_str(op.as_str());
            // Parenthesise compound operands for readability/correctness.
            match **e {
                Expr::Number(_) | Expr::Ident(_) | Expr::Index(_, _) | Expr::Part(_, _, _) => {
                    expr_into(out, e, u8::MAX)
                }
                _ => {
                    out.push('(');
                    expr_into(out, e, 0);
                    out.push(')');
                }
            }
        }
        Expr::Binary(op, a, b) => {
            let prec = op.precedence();
            let need_paren = prec < parent_prec;
            if need_paren {
                out.push('(');
            }
            expr_into(out, a, prec);
            let _ = write!(out, " {} ", op.as_str());
            expr_into(out, b, prec + 1);
            if need_paren {
                out.push(')');
            }
        }
        Expr::Ternary(c, t, e) => {
            let need_paren = parent_prec > 0;
            if need_paren {
                out.push('(');
            }
            expr_into(out, c, 1);
            out.push_str(" ? ");
            expr_into(out, t, 0);
            out.push_str(" : ");
            expr_into(out, e, 0);
            if need_paren {
                out.push(')');
            }
        }
        Expr::Index(b, i) => {
            expr_into(out, b, u8::MAX);
            out.push('[');
            expr_into(out, i, 0);
            out.push(']');
        }
        Expr::Part(b, m, l) => {
            expr_into(out, b, u8::MAX);
            out.push('[');
            expr_into(out, m, 0);
            out.push(':');
            expr_into(out, l, 0);
            out.push(']');
        }
        Expr::Concat(items) => {
            out.push('{');
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(out, e, 0);
            }
            out.push('}');
        }
        Expr::Repeat(count, items) => {
            out.push('{');
            expr_into(out, count, u8::MAX);
            out.push('{');
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(out, e, 0);
            }
            out.push_str("}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn strip_spans_eq(src: &str) {
        let ast1 = parse(src).unwrap();
        let printed = print_source(&ast1);
        let ast2 = parse(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        // Compare structure via a second print (spans differ between the
        // two parses, so direct AST equality does not hold).
        assert_eq!(printed, print_source(&ast2), "print not idempotent for:\n{src}");
    }

    #[test]
    fn round_trips_simple_module() {
        strip_spans_eq(
            "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
             assign y = a + b;\nendmodule\n",
        );
    }

    #[test]
    fn round_trips_sequential_module() {
        strip_spans_eq(
            "module c(input clk, input rst_n, output reg [3:0] q);\n\
             always @(posedge clk or negedge rst_n) begin\n\
             if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\nend\nendmodule\n",
        );
    }

    #[test]
    fn round_trips_case_for_instance() {
        strip_spans_eq(
            "module top(input [1:0] s, input [7:0] d, output reg [7:0] q);\n\
             integer i;\nwire [7:0] w;\nsub u0(.a(d), .y(w));\n\
             always @(*) begin\ncase (s)\n2'b00: q = w;\n2'b01: q = d;\n\
             default: begin\nfor (i = 0; i < 8; i = i + 1) q[i] = d[7 - i];\nend\n\
             endcase\nend\nendmodule\n\
             module sub(input [7:0] a, output [7:0] y);\nassign y = ~a;\nendmodule\n",
        );
    }

    #[test]
    fn expr_precedence_preserved() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "a ? b : c",
            "(a ? b : c) + 1",
            "~(a & b) | c",
            "{a, b[3:0], 2'b01}",
            "{4{x}}",
            "a[i]",
            "a - (b - c)",
            "a - b - c",
            "(a == b) & c",
        ] {
            let e1 = parse_expr(src).unwrap();
            let printed = print_expr(&e1);
            let e2 = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("re-parse of `{printed}` failed: {err}"));
            assert_eq!(e1, e2, "round-trip changed `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn numbers_render_canonically() {
        assert_eq!(print_expr(&parse_expr("8'hff").unwrap()), "8'hff");
        assert_eq!(print_expr(&parse_expr("42").unwrap()), "42");
        assert_eq!(print_expr(&parse_expr("4'b1010").unwrap()), "4'b1010");
        assert_eq!(print_expr(&parse_expr("1'b0").unwrap()), "1'b0");
        assert_eq!(print_expr(&parse_expr("4'bxxxx").unwrap()), "4'bxxxx");
    }
}
