//! Byte-offset source spans and line/column resolution.

use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
///
/// Spans are attached to tokens, statements and module items so that
/// downstream tools (the linter, the localization engine, the error
/// generator) can point at, extract, or surgically rewrite the exact
/// source text of a construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos`, used for "insert here" diagnostics.
    pub fn point(pos: usize) -> Self {
        Span { start: pos, end: pos }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Extracts the spanned text from `src`.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Maps byte offsets to 1-based line and column numbers.
///
/// Construct once per source file; lookups are `O(log lines)`.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<usize>,
    len: usize,
}

impl LineMap {
    /// Builds a line map for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts, len: src.len() }
    }

    /// Returns the 1-based line number containing byte `offset`.
    pub fn line(&self, offset: usize) -> u32 {
        let offset = offset.min(self.len);
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx as u32 + 1,
            Err(idx) => idx as u32,
        }
    }

    /// Returns 1-based `(line, column)` for byte `offset`.
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = self.line(offset);
        let line_start = self.line_starts[(line - 1) as usize];
        (line, (offset.saturating_sub(line_start)) as u32 + 1)
    }

    /// Number of lines in the mapped source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Byte offset at which 1-based `line` starts, if it exists.
    pub fn line_start(&self, line: u32) -> Option<usize> {
        self.line_starts.get((line as usize).checked_sub(1)?).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_text() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(Span::new(0, 5).text("module m;"), "modul");
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::point(3).is_empty());
    }

    #[test]
    fn line_map_basic() {
        let src = "abc\ndef\nghi";
        let map = LineMap::new(src);
        assert_eq!(map.line_count(), 3);
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_col(3), (1, 4));
        assert_eq!(map.line_col(4), (2, 1));
        assert_eq!(map.line_col(9), (3, 2));
        assert_eq!(map.line_start(2), Some(4));
        assert_eq!(map.line_start(9), None);
    }

    #[test]
    fn line_map_offset_past_end_clamps() {
        let map = LineMap::new("x\ny");
        assert_eq!(map.line(100), 2);
    }

    #[test]
    fn line_map_empty_source() {
        let map = LineMap::new("");
        assert_eq!(map.line_count(), 1);
        assert_eq!(map.line_col(0), (1, 1));
    }
}
