//! Hand-written lexer for the supported Verilog subset.

use crate::error::{SyntaxError, SyntaxErrorKind};
use crate::span::Span;
use crate::token::{Keyword, NumberBase, NumberToken, Token, TokenKind};

/// Converts Verilog source text into a token stream.
///
/// The lexer is lossless with respect to spans: every token records the
/// byte range it came from, so later stages can rewrite source text
/// surgically.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0 }
    }

    /// Lexes the entire input, returning tokens (including a final
    /// [`TokenKind::Eof`]) or the first lexical error.
    ///
    /// # Errors
    ///
    /// Returns a [`SyntaxError`] for unterminated comments/strings,
    /// malformed based literals and unexpected characters.
    pub fn tokenize(mut self) -> Result<Vec<Token>, SyntaxError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_trivia(&mut self) -> Result<(), SyntaxError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos + 1 >= self.bytes.len() {
                            return Err(SyntaxError::new(
                                SyntaxErrorKind::UnterminatedComment,
                                Span::new(start, self.bytes.len()),
                                "unterminated block comment",
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                // Compiler directives such as `timescale are skipped to
                // end of line; they do not affect behavioural semantics
                // in this subset.
                b'`' => {
                    while self.pos < self.bytes.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, SyntaxError> {
        self.skip_trivia()?;
        let start = self.pos;
        if self.pos >= self.bytes.len() {
            return Ok(Token::new(TokenKind::Eof, Span::point(start)));
        }
        let c = self.peek();
        let kind = match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => return Ok(self.lex_ident(start)),
            b'0'..=b'9' => return self.lex_number(start),
            b'\'' => return self.lex_based_literal(start, None),
            b'$' => return Ok(self.lex_sys_ident(start)),
            b'"' => return self.lex_string(start),
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b'#' => {
                self.bump();
                TokenKind::Hash
            }
            b'@' => {
                self.bump();
                TokenKind::At
            }
            b'?' => {
                self.bump();
                TokenKind::Question
            }
            b'+' => {
                self.bump();
                if self.peek() == b':' {
                    self.bump();
                    TokenKind::PlusColon
                } else {
                    TokenKind::Plus
                }
            }
            b'-' => {
                self.bump();
                if self.peek() == b':' {
                    self.bump();
                    TokenKind::MinusColon
                } else {
                    TokenKind::Minus
                }
            }
            b'*' => {
                self.bump();
                if self.peek() == b'*' {
                    self.bump();
                    TokenKind::Power
                } else {
                    TokenKind::Star
                }
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'!' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::CaseNe
                    } else {
                        TokenKind::NotEq
                    }
                } else {
                    TokenKind::Not
                }
            }
            b'~' => {
                self.bump();
                match self.peek() {
                    b'&' => {
                        self.bump();
                        TokenKind::TildeAmp
                    }
                    b'|' => {
                        self.bump();
                        TokenKind::TildePipe
                    }
                    b'^' => {
                        self.bump();
                        TokenKind::TildeCaret
                    }
                    _ => TokenKind::Tilde,
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == b'&' {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == b'|' {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    TokenKind::Pipe
                }
            }
            b'^' => {
                self.bump();
                if self.peek() == b'~' {
                    self.bump();
                    TokenKind::TildeCaret
                } else {
                    TokenKind::Caret
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    if self.peek() == b'=' {
                        self.bump();
                        TokenKind::CaseEq
                    } else {
                        TokenKind::EqEq
                    }
                } else {
                    TokenKind::Assign
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    b'=' => {
                        self.bump();
                        TokenKind::LeAssign
                    }
                    b'<' => {
                        self.bump();
                        if self.peek() == b'<' {
                            self.bump();
                            TokenKind::AShl
                        } else {
                            TokenKind::Shl
                        }
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                match self.peek() {
                    b'=' => {
                        self.bump();
                        TokenKind::Ge
                    }
                    b'>' => {
                        self.bump();
                        if self.peek() == b'>' {
                            self.bump();
                            TokenKind::AShr
                        } else {
                            TokenKind::Shr
                        }
                    }
                    _ => TokenKind::Gt,
                }
            }
            other => {
                return Err(SyntaxError::new(
                    SyntaxErrorKind::UnexpectedChar(other as char),
                    Span::new(start, start + 1),
                    format!("unexpected character '{}'", other as char),
                ));
            }
        };
        Ok(Token::new(kind, Span::new(start, self.pos)))
    }

    fn lex_ident(&mut self, start: usize) -> Token {
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'$') {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        let kind = match Keyword::lookup(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_string()),
        };
        Token::new(kind, Span::new(start, self.pos))
    }

    fn lex_sys_ident(&mut self, start: usize) -> Token {
        self.pos += 1; // `$`
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        Token::new(
            TokenKind::SysIdent(self.src[start..self.pos].to_string()),
            Span::new(start, self.pos),
        )
    }

    fn lex_string(&mut self, start: usize) -> Result<Token, SyntaxError> {
        self.pos += 1; // opening quote
        let content_start = self.pos;
        while self.pos < self.bytes.len() && self.peek() != b'"' {
            if self.peek() == b'\\' {
                self.pos += 1;
            }
            self.pos += 1;
        }
        if self.pos >= self.bytes.len() {
            return Err(SyntaxError::new(
                SyntaxErrorKind::UnterminatedString,
                Span::new(start, self.bytes.len()),
                "unterminated string literal",
            ));
        }
        let content = self.src[content_start..self.pos].to_string();
        self.pos += 1; // closing quote
        Ok(Token::new(TokenKind::Str(content), Span::new(start, self.pos)))
    }

    fn lex_number(&mut self, start: usize) -> Result<Token, SyntaxError> {
        while matches!(self.peek(), b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        if self.peek() == b'\'' {
            let width_text: String =
                self.src[start..self.pos].chars().filter(|c| *c != '_').collect();
            let width = width_text.parse::<u32>().ok();
            return self.lex_based_literal(start, width);
        }
        let digits: String = self.src[start..self.pos].chars().filter(|c| *c != '_').collect();
        Ok(Token::new(
            TokenKind::Number(NumberToken {
                width: None,
                base: NumberBase::Dec,
                digits,
                signed: false,
            }),
            Span::new(start, self.pos),
        ))
    }

    /// Lexes the `'b0101` part of a based literal; `width` was already
    /// consumed by the caller if present.
    fn lex_based_literal(
        &mut self,
        start: usize,
        width: Option<u32>,
    ) -> Result<Token, SyntaxError> {
        debug_assert_eq!(self.peek(), b'\'');
        self.pos += 1;
        let mut signed = false;
        if matches!(self.peek(), b's' | b'S')
            && matches!(self.peek2(), b'b' | b'B' | b'o' | b'O' | b'd' | b'D' | b'h' | b'H')
        {
            signed = true;
            self.pos += 1;
        }
        let base = match self.peek() {
            b'b' | b'B' => NumberBase::Bin,
            b'o' | b'O' => NumberBase::Oct,
            b'd' | b'D' => NumberBase::Dec,
            b'h' | b'H' => NumberBase::Hex,
            other => {
                return Err(SyntaxError::new(
                    SyntaxErrorKind::MalformedNumber,
                    Span::new(start, self.pos + 1),
                    format!("invalid base specifier '{}' in literal", other as char),
                ));
            }
        };
        self.pos += 1;
        // Digits may include x/z/? plus underscores; validate per base.
        let digits_start = self.pos;
        while matches!(
            self.peek(),
            b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'x' | b'X' | b'z' | b'Z' | b'?' | b'_'
        ) {
            self.pos += 1;
        }
        let raw = &self.src[digits_start..self.pos];
        let digits: String =
            raw.chars().filter(|c| *c != '_').map(|c| c.to_ascii_lowercase()).collect();
        if digits.is_empty() {
            return Err(SyntaxError::new(
                SyntaxErrorKind::MalformedNumber,
                Span::new(start, self.pos),
                "based literal has no digits",
            ));
        }
        for ch in digits.chars() {
            let ok = match ch {
                'x' | 'z' | '?' => base != NumberBase::Dec || digits.len() == 1,
                _ => ch.to_digit(16).map(|d| d < base.radix()).unwrap_or(false),
            };
            if !ok {
                return Err(SyntaxError::new(
                    SyntaxErrorKind::MalformedNumber,
                    Span::new(start, self.pos),
                    format!("digit '{ch}' is invalid for base {}", base.radix()),
                ));
            }
        }
        Ok(Token::new(
            TokenKind::Number(NumberToken { width, base, digits, signed }),
            Span::new(start, self.pos),
        ))
    }
}

/// Convenience wrapper: lexes `src` in one call.
///
/// # Errors
///
/// Propagates the first [`SyntaxError`] found by the lexer.
pub fn tokenize(src: &str) -> Result<Vec<Token>, SyntaxError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_module_header() {
        let ks = kinds("module m(input a);");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword(Keyword::Module),
                TokenKind::Ident("m".into()),
                TokenKind::LParen,
                TokenKind::Keyword(Keyword::Input),
                TokenKind::Ident("a".into()),
                TokenKind::RParen,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_based_literals() {
        let ks = kinds("8'hFF 4'b10x1 'd15 12'o777 3'sb101");
        match &ks[0] {
            TokenKind::Number(n) => {
                assert_eq!(n.width, Some(8));
                assert_eq!(n.base, NumberBase::Hex);
                assert_eq!(n.digits, "ff");
            }
            other => panic!("expected number, got {other:?}"),
        }
        match &ks[1] {
            TokenKind::Number(n) => assert_eq!(n.digits, "10x1"),
            other => panic!("expected number, got {other:?}"),
        }
        match &ks[2] {
            TokenKind::Number(n) => {
                assert_eq!(n.width, None);
                assert_eq!(n.base, NumberBase::Dec);
            }
            other => panic!("expected number, got {other:?}"),
        }
        match &ks[4] {
            TokenKind::Number(n) => assert!(n.signed),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn lexes_operators() {
        let ks = kinds("=== !== == != <= >= << >> >>> ~& ~| ~^ ^~ && || ** +: -:");
        assert_eq!(
            ks[..18],
            [
                TokenKind::CaseEq,
                TokenKind::CaseNe,
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::LeAssign,
                TokenKind::Ge,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AShr,
                TokenKind::TildeAmp,
                TokenKind::TildePipe,
                TokenKind::TildeCaret,
                TokenKind::TildeCaret,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Power,
                TokenKind::PlusColon,
                TokenKind::MinusColon,
            ]
        );
    }

    #[test]
    fn skips_comments_and_directives() {
        let ks = kinds("// line\n/* block\nmulti */ `timescale 1ns/1ps\nwire");
        assert_eq!(ks, vec![TokenKind::Keyword(Keyword::Wire), TokenKind::Eof]);
    }

    #[test]
    fn spans_are_exact() {
        let src = "assign y = a;";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].span.text(src), "assign");
        assert_eq!(toks[1].span.text(src), "y");
        assert_eq!(toks[3].span.text(src), "a");
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = tokenize("/* oops").unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::UnterminatedComment));
    }

    #[test]
    fn malformed_literal_errors() {
        assert!(tokenize("8'q12").is_err());
        assert!(tokenize("4'b").is_err());
        assert!(tokenize("8'b2").is_err());
    }

    #[test]
    fn underscores_in_numbers() {
        let ks = kinds("32'hDEAD_BEEF 1_000");
        match &ks[0] {
            TokenKind::Number(n) => assert_eq!(n.digits, "deadbeef"),
            other => panic!("expected number, got {other:?}"),
        }
        match &ks[1] {
            TokenKind::Number(n) => assert_eq!(n.digits, "1000"),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn unexpected_char_errors() {
        let err = tokenize("wire \\bad").unwrap_err();
        assert!(matches!(err.kind, SyntaxErrorKind::UnexpectedChar('\\')));
    }
}
