//! AST walkers: a read-only [`Visitor`] and helpers for collecting
//! assignments and references, used by the linter and the DFG builder.

use crate::ast::*;

/// A read-only visitor over a module's behavioural constructs.
///
/// Default method bodies recurse, so implementors override only the hooks
/// they care about and call the free `walk_*` functions to continue.
pub trait Visitor {
    fn visit_item(&mut self, item: &Item) {
        walk_item(self, item);
    }
    fn visit_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(self, stmt);
    }
    fn visit_expr(&mut self, expr: &Expr) {
        walk_expr(self, expr);
    }
    fn visit_lvalue(&mut self, lv: &LValue) {
        walk_lvalue(self, lv);
    }
}

/// Recurses into an item's children.
pub fn walk_item<V: Visitor + ?Sized>(v: &mut V, item: &Item) {
    match item {
        Item::Net(d) => {
            for decl in &d.decls {
                if let Some(init) = &decl.init {
                    v.visit_expr(init);
                }
            }
        }
        Item::Param(p) => {
            for (_, value) in &p.params {
                v.visit_expr(value);
            }
        }
        Item::Integer(_) => {}
        Item::Assign(a) => {
            v.visit_lvalue(&a.lhs);
            v.visit_expr(&a.rhs);
        }
        Item::Always(a) => v.visit_stmt(&a.body),
        Item::Initial(i) => v.visit_stmt(&i.body),
        Item::Instance(inst) => {
            for c in inst.params.iter().chain(&inst.conns) {
                if let Some(e) = &c.expr {
                    v.visit_expr(e);
                }
            }
        }
    }
}

/// Recurses into a statement's children.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, stmt: &Stmt) {
    match stmt {
        Stmt::Block(b) => {
            for s in &b.stmts {
                v.visit_stmt(s);
            }
        }
        Stmt::Blocking(a) | Stmt::NonBlocking(a) => {
            v.visit_lvalue(&a.lhs);
            v.visit_expr(&a.rhs);
        }
        Stmt::If(i) => {
            v.visit_expr(&i.cond);
            v.visit_stmt(&i.then_branch);
            if let Some(e) = &i.else_branch {
                v.visit_stmt(e);
            }
        }
        Stmt::Case(c) => {
            v.visit_expr(&c.expr);
            for arm in &c.arms {
                for l in &arm.labels {
                    v.visit_expr(l);
                }
                v.visit_stmt(&arm.body);
            }
            if let Some(d) = &c.default {
                v.visit_stmt(d);
            }
        }
        Stmt::For(f) => {
            v.visit_lvalue(&f.init.0);
            v.visit_expr(&f.init.1);
            v.visit_expr(&f.cond);
            v.visit_lvalue(&f.step.0);
            v.visit_expr(&f.step.1);
            v.visit_stmt(&f.body);
        }
        Stmt::SysCall(s) => {
            for a in &s.args {
                v.visit_expr(a);
            }
        }
        Stmt::Null(_) => {}
    }
}

/// Recurses into an expression's children.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    match expr {
        Expr::Number(_) | Expr::Ident(_) => {}
        Expr::Unary(_, e) => v.visit_expr(e),
        Expr::Binary(_, a, b) => {
            v.visit_expr(a);
            v.visit_expr(b);
        }
        Expr::Ternary(c, t, e) => {
            v.visit_expr(c);
            v.visit_expr(t);
            v.visit_expr(e);
        }
        Expr::Index(b, i) => {
            v.visit_expr(b);
            v.visit_expr(i);
        }
        Expr::Part(b, m, l) => {
            v.visit_expr(b);
            v.visit_expr(m);
            v.visit_expr(l);
        }
        Expr::Concat(es) => {
            for e in es {
                v.visit_expr(e);
            }
        }
        Expr::Repeat(c, es) => {
            v.visit_expr(c);
            for e in es {
                v.visit_expr(e);
            }
        }
    }
}

/// Recurses into index expressions inside an lvalue.
pub fn walk_lvalue<V: Visitor + ?Sized>(v: &mut V, lv: &LValue) {
    match lv {
        LValue::Ident(_, _) => {}
        LValue::Index(_, i, _) => v.visit_expr(i),
        LValue::Part(_, m, l, _) => {
            v.visit_expr(m);
            v.visit_expr(l);
        }
        LValue::Concat(parts, _) => {
            for p in parts {
                v.visit_lvalue(p);
            }
        }
    }
}

/// Collects every signal name assigned anywhere in a module, paired with
/// whether the write happens in an edge-triggered block.
pub fn assigned_signals(module: &Module) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    for item in &module.items {
        match item {
            Item::Assign(a) => {
                for n in a.lhs.base_names() {
                    out.push((n.to_string(), false));
                }
            }
            Item::Always(a) => {
                let seq = a.sensitivity.is_edge_triggered();
                collect_stmt_writes(&a.body, seq, &mut out);
            }
            Item::Initial(i) => collect_stmt_writes(&i.body, false, &mut out),
            _ => {}
        }
    }
    out
}

fn collect_stmt_writes(stmt: &Stmt, seq: bool, out: &mut Vec<(String, bool)>) {
    struct W<'a> {
        seq: bool,
        out: &'a mut Vec<(String, bool)>,
    }
    impl Visitor for W<'_> {
        fn visit_stmt(&mut self, stmt: &Stmt) {
            if let Stmt::Blocking(a) | Stmt::NonBlocking(a) = stmt {
                for n in a.lhs.base_names() {
                    self.out.push((n.to_string(), self.seq));
                }
            }
            walk_stmt(self, stmt);
        }
    }
    let mut w = W { seq, out };
    w.visit_stmt(stmt);
}

/// Collects every identifier read anywhere in a module (not written).
pub fn referenced_signals(module: &Module) -> Vec<String> {
    struct R {
        out: Vec<String>,
    }
    impl Visitor for R {
        fn visit_expr(&mut self, expr: &Expr) {
            if let Expr::Ident(n) = expr {
                self.out.push(n.clone());
            }
            walk_expr(self, expr);
        }
    }
    let mut r = R { out: Vec::new() };
    for item in &module.items {
        r.visit_item(item);
    }
    r.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn collects_writes_with_kind() {
        let src = "module m(input clk, input a, output reg q, output w);\n\
                   assign w = a;\nalways @(posedge clk) q <= a;\nendmodule\n";
        let file = parse(src).unwrap();
        let writes = assigned_signals(file.top().unwrap());
        assert!(writes.contains(&("w".to_string(), false)));
        assert!(writes.contains(&("q".to_string(), true)));
    }

    #[test]
    fn collects_reads() {
        let src = "module m(input a, input b, output y);\nassign y = a ? b : 1'b0;\nendmodule\n";
        let file = parse(src).unwrap();
        let reads = referenced_signals(file.top().unwrap());
        assert!(reads.contains(&"a".to_string()));
        assert!(reads.contains(&"b".to_string()));
    }
}
