//! # uvllm-verilog
//!
//! Verilog HDL frontend for the UVLLM framework: lexer, recursive-descent
//! parser, abstract syntax tree, visitors and a canonical pretty-printer.
//!
//! The supported subset covers the synthesizable behavioural Verilog used
//! by the UVLLM benchmark designs: modules with ANSI or non-ANSI ports,
//! parameters, `wire`/`reg`/`integer` declarations (including memories),
//! continuous assignments, `always`/`initial` blocks with full
//! statement forms (`begin/end`, `if`, `case/casez/casex`, bounded `for`),
//! module instantiation, and the IEEE 1364 expression operators with
//! four-state sized literals.
//!
//! Every token, statement and item records its source [`span::Span`], so
//! downstream tools can render compiler-style diagnostics and perform
//! text-surgical rewrites — both are load-bearing for the UVLLM pipeline:
//! repairs are exchanged as `(original, patched)` text snippets.
//!
//! ## Example
//!
//! ```rust
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use uvllm_verilog::{parse, print_source};
//!
//! let src = "module inv(input a, output y);\nassign y = ~a;\nendmodule\n";
//! let file = parse(src)?;
//! assert_eq!(file.top().unwrap().name, "inv");
//! let canonical = print_source(&file);
//! assert!(canonical.contains("assign y = ~a;"));
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod visit;

pub use ast::{Expr, Item, LValue, Module, SourceFile, Stmt};
pub use error::{SyntaxError, SyntaxErrorKind};
pub use parser::{parse, parse_expr};
pub use printer::{print_expr, print_module_str, print_source, print_stmt};
pub use span::{LineMap, Span};
