//! Syntax error types shared by the lexer and parser.

use crate::span::{LineMap, Span};
use std::fmt;

/// Classification of a syntax error, used by the pre-processing stage to
/// route errors to the right repair strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyntaxErrorKind {
    /// A character that can never start a token.
    UnexpectedChar(char),
    /// `/*` without a matching `*/`.
    UnterminatedComment,
    /// `"` without a matching closing quote.
    UnterminatedString,
    /// A based literal with a bad base or digits.
    MalformedNumber,
    /// The parser found a token it cannot use here.
    UnexpectedToken {
        /// What the parser found, rendered as source text.
        found: String,
        /// What the parser was looking for.
        expected: String,
    },
    /// Input ended while a construct was still open (e.g. missing
    /// `end`/`endmodule`).
    UnexpectedEof {
        /// What the parser was looking for.
        expected: String,
    },
}

/// A fatal syntax error with location information.
///
/// Rendered messages follow the `file.v:LINE:COL: message` convention so
/// that prompt builders and the heuristic repair backend can parse them
/// the same way they would parse a real compiler log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntaxError {
    /// Error classification.
    pub kind: SyntaxErrorKind,
    /// Where in the source the error was detected.
    pub span: Span,
    /// Human-readable message.
    pub message: String,
}

impl SyntaxError {
    /// Creates an error of `kind` at `span` with `message`.
    pub fn new(kind: SyntaxErrorKind, span: Span, message: impl Into<String>) -> Self {
        SyntaxError { kind, span, message: message.into() }
    }

    /// Renders the error in compiler-log style against `src`.
    pub fn render(&self, src: &str) -> String {
        let map = LineMap::new(src);
        let (line, col) = map.line_col(self.span.start);
        format!("%Error: dut.v:{line}:{col}: {}", self.message)
    }

    /// The 1-based line of the error within `src`.
    pub fn line(&self, src: &str) -> u32 {
        LineMap::new(src).line(self.span.start)
    }
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for SyntaxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_line_and_column() {
        let src = "module m;\nwire @;\nendmodule\n";
        let at = src.find('@').unwrap();
        let err = SyntaxError::new(
            SyntaxErrorKind::UnexpectedChar('@'),
            Span::new(at, at + 1),
            "unexpected character '@'",
        );
        let rendered = err.render(src);
        assert!(rendered.contains("dut.v:2:6"), "got: {rendered}");
        assert_eq!(err.line(src), 2);
    }

    #[test]
    fn display_is_nonempty() {
        let err = SyntaxError::new(
            SyntaxErrorKind::UnexpectedEof { expected: "endmodule".into() },
            Span::point(3),
            "unexpected end of input",
        );
        assert!(!err.to_string().is_empty());
    }
}
