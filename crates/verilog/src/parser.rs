//! Recursive-descent parser producing the [`crate::ast`] types.

use crate::ast::*;
use crate::error::{SyntaxError, SyntaxErrorKind};
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Keyword, NumberBase, NumberToken, Token, TokenKind};

/// Parses a complete Verilog source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered. Error
/// messages are phrased in compiler-log style (see
/// [`SyntaxError::render`]) so the pre-processing stage can feed them to
/// repair back-ends unchanged.
pub fn parse(src: &str) -> Result<SourceFile, SyntaxError> {
    let tokens = tokenize(src)?;
    Parser::new(tokens).parse_source_file()
}

/// Parses a single expression (used by tests and patch validation).
///
/// # Errors
///
/// Returns an error when `src` is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, SyntaxError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn at_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&self, expected: &str) -> SyntaxError {
        let tok = self.peek();
        if tok.kind == TokenKind::Eof {
            SyntaxError::new(
                SyntaxErrorKind::UnexpectedEof { expected: expected.to_string() },
                tok.span,
                format!("unexpected end of input, expected {expected}"),
            )
        } else {
            SyntaxError::new(
                SyntaxErrorKind::UnexpectedToken {
                    found: tok.kind.to_string(),
                    expected: expected.to_string(),
                },
                tok.span,
                format!("syntax error, unexpected '{}', expected {expected}", tok.kind),
            )
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, SyntaxError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.error(what))
        }
    }

    fn expect_kw(&mut self, kw: Keyword, what: &str) -> Result<Token, SyntaxError> {
        if self.at_kw(kw) {
            Ok(self.bump())
        } else {
            Err(self.error(what))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), SyntaxError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let tok = self.bump();
                Ok((name, tok.span))
            }
            _ => Err(self.error(what)),
        }
    }

    fn expect_eof(&mut self) -> Result<(), SyntaxError> {
        if self.at(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error("end of input"))
        }
    }

    // ------------------------------------------------------------------
    // Source file and module structure
    // ------------------------------------------------------------------

    fn parse_source_file(&mut self) -> Result<SourceFile, SyntaxError> {
        let mut modules = Vec::new();
        while !self.at(&TokenKind::Eof) {
            modules.push(self.module()?);
        }
        if modules.is_empty() {
            return Err(self.error("a module definition"));
        }
        Ok(SourceFile { modules })
    }

    fn module(&mut self) -> Result<Module, SyntaxError> {
        let start = self.expect_kw(Keyword::Module, "'module'")?.span;
        let (name, _) = self.expect_ident("module name")?;
        let mut ports: Vec<Port> = Vec::new();
        let mut items: Vec<Item> = Vec::new();

        // Optional parameter header `#(parameter W = 8, …)`.
        if self.eat(&TokenKind::Hash) {
            self.expect(&TokenKind::LParen, "'(' after '#'")?;
            loop {
                let pstart = self.peek().span;
                self.eat_kw(Keyword::Parameter);
                let range = self.optional_range()?;
                let (pname, _) = self.expect_ident("parameter name")?;
                self.expect(&TokenKind::Assign, "'=' in parameter")?;
                let value = self.expr()?;
                let pspan = pstart.merge(self.prev_span());
                items.push(Item::Param(ParamDecl {
                    local: false,
                    range,
                    params: vec![(pname, value)],
                    span: pspan,
                }));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "')' closing parameter list")?;
        }

        // Port header: ANSI declarations or bare names.
        if self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                let mut last: Option<(PortDir, NetKind, bool, Option<Range>)> = None;
                loop {
                    let pstart = self.peek().span;
                    let dir = match self.peek_kind() {
                        TokenKind::Keyword(Keyword::Input) => {
                            self.bump();
                            Some(PortDir::Input)
                        }
                        TokenKind::Keyword(Keyword::Output) => {
                            self.bump();
                            Some(PortDir::Output)
                        }
                        TokenKind::Keyword(Keyword::Inout) => {
                            self.bump();
                            Some(PortDir::Inout)
                        }
                        _ => None,
                    };
                    if let Some(dir) = dir {
                        // ANSI-style declared port.
                        let net = if self.eat_kw(Keyword::Reg) {
                            NetKind::Reg
                        } else {
                            self.eat_kw(Keyword::Wire);
                            NetKind::Wire
                        };
                        let signed = self.eat_kw(Keyword::Signed);
                        let range = self.optional_range()?;
                        let (pname, pspan) = self.expect_ident("port name")?;
                        ports.push(Port {
                            name: pname,
                            dir,
                            net,
                            range: range.clone(),
                            signed,
                            span: pstart.merge(pspan),
                        });
                        last = Some((dir, net, signed, range));
                    } else {
                        // Bare name: continuation of previous ANSI decl,
                        // or a non-ANSI port completed in the body.
                        let (pname, pspan) = self.expect_ident("port name")?;
                        match &last {
                            Some((dir, net, signed, range)) => ports.push(Port {
                                name: pname,
                                dir: *dir,
                                net: *net,
                                range: range.clone(),
                                signed: *signed,
                                span: pspan,
                            }),
                            None => ports.push(Port {
                                name: pname,
                                dir: PortDir::Input,
                                net: NetKind::Wire,
                                range: None,
                                signed: false,
                                span: pspan,
                            }),
                        }
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "')' closing port list")?;
        }
        self.expect(&TokenKind::Semi, "';' after module header")?;

        while !self.at_kw(Keyword::Endmodule) {
            if self.at(&TokenKind::Eof) {
                return Err(self.error("'endmodule'"));
            }
            self.item(&mut ports, &mut items)?;
        }
        let end = self.expect_kw(Keyword::Endmodule, "'endmodule'")?.span;
        Ok(Module { name, ports, items, span: start.merge(end) })
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn optional_range(&mut self) -> Result<Option<Range>, SyntaxError> {
        if !self.at(&TokenKind::LBracket) {
            return Ok(None);
        }
        let start = self.bump().span;
        let msb = self.expr()?;
        self.expect(&TokenKind::Colon, "':' in range")?;
        let lsb = self.expr()?;
        let end = self.expect(&TokenKind::RBracket, "']' closing range")?.span;
        Ok(Some(Range { msb, lsb, span: start.merge(end) }))
    }

    // ------------------------------------------------------------------
    // Module items
    // ------------------------------------------------------------------

    fn item(&mut self, ports: &mut Vec<Port>, items: &mut Vec<Item>) -> Result<(), SyntaxError> {
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::Input) => self.body_port_decl(PortDir::Input, ports, items),
            TokenKind::Keyword(Keyword::Output) => {
                self.body_port_decl(PortDir::Output, ports, items)
            }
            TokenKind::Keyword(Keyword::Inout) => self.body_port_decl(PortDir::Inout, ports, items),
            TokenKind::Keyword(Keyword::Wire) => {
                let d = self.net_decl(NetKind::Wire)?;
                items.push(Item::Net(d));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Reg) => {
                let d = self.net_decl(NetKind::Reg)?;
                // `reg` re-declaration of an output port upgrades it.
                for decl in &d.decls {
                    if let Some(p) = ports.iter_mut().find(|p| p.name == decl.name) {
                        p.net = NetKind::Reg;
                        if p.range.is_none() {
                            p.range = d.range.clone();
                        }
                    }
                }
                items.push(Item::Net(d));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Integer) => {
                let start = self.bump().span;
                let mut names = Vec::new();
                loop {
                    let (n, _) = self.expect_ident("integer name")?;
                    names.push(n);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                let end = self.expect(&TokenKind::Semi, "';' after integer declaration")?.span;
                items.push(Item::Integer(IntegerDecl { names, span: start.merge(end) }));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Parameter) => {
                let d = self.param_decl(false)?;
                items.push(Item::Param(d));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Localparam) => {
                let d = self.param_decl(true)?;
                items.push(Item::Param(d));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Assign) => {
                let start = self.bump().span;
                let lhs = self.lvalue()?;
                self.expect(&TokenKind::Assign, "'=' in continuous assignment")?;
                let rhs = self.expr()?;
                let end = self.expect(&TokenKind::Semi, "';' after assignment")?.span;
                items.push(Item::Assign(ContAssign { lhs, rhs, span: start.merge(end) }));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Always) => {
                let a = self.always_block()?;
                items.push(Item::Always(a));
                Ok(())
            }
            TokenKind::Keyword(Keyword::Initial) => {
                let start = self.bump().span;
                let body = self.stmt()?;
                let span = start.merge(body.span());
                items.push(Item::Initial(InitialBlock { body, span }));
                Ok(())
            }
            TokenKind::Ident(_) => {
                let inst = self.instance()?;
                items.push(Item::Instance(inst));
                Ok(())
            }
            _ => Err(self.error("a module item")),
        }
    }

    fn body_port_decl(
        &mut self,
        dir: PortDir,
        ports: &mut Vec<Port>,
        items: &mut Vec<Item>,
    ) -> Result<(), SyntaxError> {
        let start = self.bump().span;
        let net = if self.eat_kw(Keyword::Reg) {
            NetKind::Reg
        } else {
            self.eat_kw(Keyword::Wire);
            NetKind::Wire
        };
        let signed = self.eat_kw(Keyword::Signed);
        let range = self.optional_range()?;
        let mut decls = Vec::new();
        loop {
            let (name, nspan) = self.expect_ident("port name")?;
            decls.push(Declarator { name: name.clone(), array: None, init: None, span: nspan });
            match ports.iter_mut().find(|p| p.name == name) {
                Some(p) => {
                    p.dir = dir;
                    if net == NetKind::Reg {
                        p.net = NetKind::Reg;
                    }
                    p.signed |= signed;
                    if p.range.is_none() {
                        p.range = range.clone();
                    }
                }
                None => {
                    ports.push(Port { name, dir, net, range: range.clone(), signed, span: nspan })
                }
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(&TokenKind::Semi, "';' after port declaration")?.span;
        // Body port declarations for `output reg` also declare storage.
        if net == NetKind::Reg {
            items.push(Item::Net(NetDecl {
                kind: NetKind::Reg,
                signed,
                range,
                decls,
                span: start.merge(end),
            }));
        }
        Ok(())
    }

    fn net_decl(&mut self, kind: NetKind) -> Result<NetDecl, SyntaxError> {
        let start = self.bump().span;
        let signed = self.eat_kw(Keyword::Signed);
        let range = self.optional_range()?;
        let mut decls = Vec::new();
        loop {
            let (name, nspan) = self.expect_ident("net name")?;
            let array = self.optional_range()?;
            let init = if self.eat(&TokenKind::Assign) { Some(self.expr()?) } else { None };
            let span = nspan.merge(self.prev_span());
            decls.push(Declarator { name, array, init, span });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(&TokenKind::Semi, "';' after declaration")?.span;
        Ok(NetDecl { kind, signed, range, decls, span: start.merge(end) })
    }

    fn param_decl(&mut self, local: bool) -> Result<ParamDecl, SyntaxError> {
        let start = self.bump().span;
        let range = self.optional_range()?;
        let mut params = Vec::new();
        loop {
            let (name, _) = self.expect_ident("parameter name")?;
            self.expect(&TokenKind::Assign, "'=' in parameter")?;
            let value = self.expr()?;
            params.push((name, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(&TokenKind::Semi, "';' after parameter")?.span;
        Ok(ParamDecl { local, range, params, span: start.merge(end) })
    }

    fn always_block(&mut self) -> Result<AlwaysBlock, SyntaxError> {
        let start = self.bump().span;
        self.expect(&TokenKind::At, "'@' after 'always'")?;
        let sensitivity = if self.eat(&TokenKind::Star) {
            Sensitivity::Star
        } else {
            self.expect(&TokenKind::LParen, "'(' after '@'")?;
            if self.eat(&TokenKind::Star) {
                self.expect(&TokenKind::RParen, "')' after '*'")?;
                Sensitivity::Star
            } else {
                let mut list = Vec::new();
                loop {
                    let istart = self.peek().span;
                    let edge = if self.eat_kw(Keyword::Posedge) {
                        Some(Edge::Pos)
                    } else if self.eat_kw(Keyword::Negedge) {
                        Some(Edge::Neg)
                    } else {
                        None
                    };
                    let (signal, sspan) = self.expect_ident("signal in sensitivity list")?;
                    list.push(SensItem { edge, signal, span: istart.merge(sspan) });
                    if !(self.eat_kw(Keyword::Or) || self.eat(&TokenKind::Comma)) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen, "')' closing sensitivity list")?;
                Sensitivity::List(list)
            }
        };
        let body = self.stmt()?;
        let span = start.merge(body.span());
        Ok(AlwaysBlock { sensitivity, body, span })
    }

    fn instance(&mut self) -> Result<Instance, SyntaxError> {
        let (module, start) = self.expect_ident("module name")?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::Hash) {
            self.expect(&TokenKind::LParen, "'(' after '#'")?;
            params = self.connection_list()?;
            self.expect(&TokenKind::RParen, "')' closing parameter overrides")?;
        }
        let (name, _) = self.expect_ident("instance name")?;
        self.expect(&TokenKind::LParen, "'(' opening port connections")?;
        let conns = if self.at(&TokenKind::RParen) { Vec::new() } else { self.connection_list()? };
        self.expect(&TokenKind::RParen, "')' closing port connections")?;
        let end = self.expect(&TokenKind::Semi, "';' after instantiation")?.span;
        Ok(Instance { module, name, params, conns, span: start.merge(end) })
    }

    fn connection_list(&mut self) -> Result<Vec<Connection>, SyntaxError> {
        let mut out = Vec::new();
        loop {
            let start = self.peek().span;
            if self.eat(&TokenKind::Dot) {
                let (port, _) = self.expect_ident("port name after '.'")?;
                self.expect(&TokenKind::LParen, "'(' after port name")?;
                let expr = if self.at(&TokenKind::RParen) { None } else { Some(self.expr()?) };
                let end = self.expect(&TokenKind::RParen, "')' closing connection")?.span;
                out.push(Connection { port: Some(port), expr, span: start.merge(end) });
            } else {
                let expr = self.expr()?;
                out.push(Connection {
                    port: None,
                    expr: Some(expr),
                    span: start.merge(self.prev_span()),
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, SyntaxError> {
        // Tolerate (and discard) simple delay controls `#N`.
        if self.at(&TokenKind::Hash) {
            self.bump();
            if matches!(self.peek_kind(), TokenKind::Number(_)) {
                self.bump();
            }
        }
        match self.peek_kind().clone() {
            TokenKind::Keyword(Keyword::Begin) => {
                let start = self.bump().span;
                let label = if self.eat(&TokenKind::Colon) {
                    Some(self.expect_ident("block label")?.0)
                } else {
                    None
                };
                let mut stmts = Vec::new();
                while !self.at_kw(Keyword::End) {
                    if self.at(&TokenKind::Eof) {
                        return Err(self.error("'end'"));
                    }
                    stmts.push(self.stmt()?);
                }
                let end = self.bump().span; // `end`
                Ok(Stmt::Block(Block { label, stmts, span: start.merge(end) }))
            }
            TokenKind::Keyword(Keyword::If) => {
                let start = self.bump().span;
                self.expect(&TokenKind::LParen, "'(' after 'if'")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "')' closing condition")?;
                let then_branch = Box::new(self.stmt()?);
                let (else_branch, end) = if self.at_kw(Keyword::Else) {
                    self.bump();
                    let e = self.stmt()?;
                    let sp = e.span();
                    (Some(Box::new(e)), sp)
                } else {
                    (None, then_branch.span())
                };
                Ok(Stmt::If(IfStmt { cond, then_branch, else_branch, span: start.merge(end) }))
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casez | Keyword::Casex)) => {
                let kind = match kw {
                    Keyword::Case => CaseKind::Case,
                    Keyword::Casez => CaseKind::Casez,
                    _ => CaseKind::Casex,
                };
                let start = self.bump().span;
                self.expect(&TokenKind::LParen, "'(' after 'case'")?;
                let expr = self.expr()?;
                self.expect(&TokenKind::RParen, "')' closing case expression")?;
                let mut arms = Vec::new();
                let mut default = None;
                while !self.at_kw(Keyword::Endcase) {
                    if self.at(&TokenKind::Eof) {
                        return Err(self.error("'endcase'"));
                    }
                    if self.eat_kw(Keyword::Default) {
                        self.eat(&TokenKind::Colon);
                        default = Some(Box::new(self.stmt()?));
                    } else {
                        let astart = self.peek().span;
                        let mut labels = vec![self.expr()?];
                        while self.eat(&TokenKind::Comma) {
                            labels.push(self.expr()?);
                        }
                        self.expect(&TokenKind::Colon, "':' after case label")?;
                        let body = self.stmt()?;
                        let span = astart.merge(body.span());
                        arms.push(CaseArm { labels, body, span });
                    }
                }
                let end = self.bump().span; // `endcase`
                Ok(Stmt::Case(CaseStmt { kind, expr, arms, default, span: start.merge(end) }))
            }
            TokenKind::Keyword(Keyword::For) => {
                let start = self.bump().span;
                self.expect(&TokenKind::LParen, "'(' after 'for'")?;
                let init_lhs = self.lvalue()?;
                self.expect(&TokenKind::Assign, "'=' in for initialiser")?;
                let init_rhs = self.expr()?;
                self.expect(&TokenKind::Semi, "';' after for initialiser")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::Semi, "';' after for condition")?;
                let step_lhs = self.lvalue()?;
                self.expect(&TokenKind::Assign, "'=' in for step")?;
                let step_rhs = self.expr()?;
                self.expect(&TokenKind::RParen, "')' closing for header")?;
                let body = Box::new(self.stmt()?);
                let span = start.merge(body.span());
                Ok(Stmt::For(ForStmt {
                    init: (init_lhs, init_rhs),
                    cond,
                    step: (step_lhs, step_rhs),
                    body,
                    span,
                }))
            }
            TokenKind::SysIdent(name) => {
                let start = self.bump().span;
                let mut args = Vec::new();
                if self.eat(&TokenKind::LParen) {
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            // String arguments to $display etc. are kept
                            // as zero literals; they have no behavioural
                            // meaning in this subset.
                            if let TokenKind::Str(_) = self.peek_kind() {
                                self.bump();
                                args.push(Expr::number(0));
                            } else {
                                args.push(self.expr()?);
                            }
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "')' closing call")?;
                }
                let end = self.expect(&TokenKind::Semi, "';' after system task")?.span;
                Ok(Stmt::SysCall(SysCall { name, args, span: start.merge(end) }))
            }
            TokenKind::Semi => {
                let t = self.bump();
                Ok(Stmt::Null(t.span))
            }
            _ => {
                // Assignment statement.
                let lhs = self.lvalue()?;
                let start = lhs.span();
                if self.eat(&TokenKind::Assign) {
                    let rhs = self.expr()?;
                    let end = self.expect(&TokenKind::Semi, "';' after assignment")?.span;
                    Ok(Stmt::Blocking(Assign { lhs, rhs, span: start.merge(end) }))
                } else if self.eat(&TokenKind::LeAssign) {
                    let rhs = self.expr()?;
                    let end = self.expect(&TokenKind::Semi, "';' after assignment")?.span;
                    Ok(Stmt::NonBlocking(Assign { lhs, rhs, span: start.merge(end) }))
                } else {
                    Err(self.error("'=' or '<='"))
                }
            }
        }
    }

    fn lvalue(&mut self) -> Result<LValue, SyntaxError> {
        if self.at(&TokenKind::LBrace) {
            let start = self.bump().span;
            let mut parts = vec![self.lvalue()?];
            while self.eat(&TokenKind::Comma) {
                parts.push(self.lvalue()?);
            }
            let end = self.expect(&TokenKind::RBrace, "'}' closing concatenation")?.span;
            return Ok(LValue::Concat(parts, start.merge(end)));
        }
        let (name, start) = self.expect_ident("assignment target")?;
        if self.at(&TokenKind::LBracket) {
            self.bump();
            let first = self.expr()?;
            if self.eat(&TokenKind::Colon) {
                let lsb = self.expr()?;
                let end = self.expect(&TokenKind::RBracket, "']' closing part-select")?.span;
                Ok(LValue::Part(name, Box::new(first), Box::new(lsb), start.merge(end)))
            } else {
                let end = self.expect(&TokenKind::RBracket, "']' closing index")?.span;
                Ok(LValue::Index(name, Box::new(first), start.merge(end)))
            }
        } else {
            Ok(LValue::Ident(name, start))
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, SyntaxError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, SyntaxError> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(&TokenKind::Colon, "':' in conditional expression")?;
            let els = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(then), Box::new(els)))
        } else {
            Ok(cond)
        }
    }

    fn binop_of(&self) -> Option<BinaryOp> {
        Some(match self.peek_kind() {
            TokenKind::Plus => BinaryOp::Add,
            TokenKind::Minus => BinaryOp::Sub,
            TokenKind::Star => BinaryOp::Mul,
            TokenKind::Slash => BinaryOp::Div,
            TokenKind::Percent => BinaryOp::Mod,
            TokenKind::Power => BinaryOp::Pow,
            TokenKind::Shl | TokenKind::AShl => BinaryOp::Shl,
            TokenKind::Shr => BinaryOp::Shr,
            TokenKind::AShr => BinaryOp::AShr,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LeAssign => BinaryOp::Le,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::Ge => BinaryOp::Ge,
            TokenKind::EqEq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::Ne,
            TokenKind::CaseEq => BinaryOp::CaseEq,
            TokenKind::CaseNe => BinaryOp::CaseNe,
            TokenKind::AndAnd => BinaryOp::LogAnd,
            TokenKind::OrOr => BinaryOp::LogOr,
            TokenKind::Amp => BinaryOp::BitAnd,
            TokenKind::Pipe => BinaryOp::BitOr,
            TokenKind::Caret => BinaryOp::BitXor,
            TokenKind::TildeCaret => BinaryOp::BitXnor,
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, SyntaxError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.binop_of() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SyntaxError> {
        let op = match self.peek_kind() {
            TokenKind::Not => Some(UnaryOp::LogNot),
            TokenKind::Tilde => Some(UnaryOp::BitNot),
            TokenKind::Minus => Some(UnaryOp::Neg),
            TokenKind::Plus => Some(UnaryOp::Plus),
            TokenKind::Amp => Some(UnaryOp::RedAnd),
            TokenKind::Pipe => Some(UnaryOp::RedOr),
            TokenKind::Caret => Some(UnaryOp::RedXor),
            TokenKind::TildeAmp => Some(UnaryOp::RedNand),
            TokenKind::TildePipe => Some(UnaryOp::RedNor),
            TokenKind::TildeCaret => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, SyntaxError> {
        let mut e = self.primary()?;
        while self.at(&TokenKind::LBracket) {
            self.bump();
            let first = self.expr()?;
            if self.eat(&TokenKind::Colon) {
                let lsb = self.expr()?;
                self.expect(&TokenKind::RBracket, "']' closing part-select")?;
                e = Expr::Part(Box::new(e), Box::new(first), Box::new(lsb));
            } else {
                self.expect(&TokenKind::RBracket, "']' closing index")?;
                e = Expr::Index(Box::new(e), Box::new(first));
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, SyntaxError> {
        match self.peek_kind().clone() {
            TokenKind::Number(n) => {
                let span = self.bump().span;
                Ok(Expr::Number(self.number_from_token(&n, span)?))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Ident(name))
            }
            TokenKind::SysIdent(name) => {
                // `$signed(x)` / `$unsigned(x)` are treated as transparent.
                self.bump();
                self.expect(&TokenKind::LParen, "'(' after system function")?;
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen, "')' closing system function")?;
                let _ = name;
                Ok(inner)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "')' closing parenthesis")?;
                Ok(e)
            }
            TokenKind::LBrace => {
                let start = self.bump().span;
                let first = self.expr()?;
                // `{count{items}}` replication.
                if self.at(&TokenKind::LBrace) {
                    self.bump();
                    let mut items = vec![self.expr()?];
                    while self.eat(&TokenKind::Comma) {
                        items.push(self.expr()?);
                    }
                    self.expect(&TokenKind::RBrace, "'}' closing replication body")?;
                    self.expect(&TokenKind::RBrace, "'}' closing replication")?;
                    return Ok(Expr::Repeat(Box::new(first), items));
                }
                let mut items = vec![first];
                while self.eat(&TokenKind::Comma) {
                    items.push(self.expr()?);
                }
                self.expect(&TokenKind::RBrace, "'}' closing concatenation")?;
                let _ = start;
                Ok(Expr::Concat(items))
            }
            _ => Err(self.error("an expression")),
        }
    }

    fn number_from_token(&self, n: &NumberToken, span: Span) -> Result<Number, SyntaxError> {
        let mut value: u128 = 0;
        let mut xz: u128 = 0;
        if n.base == NumberBase::Dec && !n.digits.contains(['x', 'z', '?']) {
            for ch in n.digits.chars() {
                let d = ch.to_digit(10).unwrap_or(0) as u128;
                value = value.wrapping_mul(10).wrapping_add(d);
            }
        } else if n.base == NumberBase::Dec {
            // `'dx` style: all bits X or Z.
            let all = n.width.map(mask).unwrap_or(u128::MAX);
            xz = all;
            if n.digits.starts_with('z') {
                value = all;
            }
        } else {
            let bits = n.base.bits_per_digit();
            for ch in n.digits.chars() {
                value <<= bits;
                xz <<= bits;
                match ch {
                    'x' | '?' => xz |= mask(bits),
                    'z' => {
                        xz |= mask(bits);
                        value |= mask(bits);
                    }
                    _ => {
                        let d = ch.to_digit(16).ok_or_else(|| {
                            SyntaxError::new(
                                SyntaxErrorKind::MalformedNumber,
                                span,
                                format!("invalid digit '{ch}'"),
                            )
                        })? as u128;
                        value |= d;
                    }
                }
            }
        }
        if let Some(w) = n.width {
            if w == 0 || w > 128 {
                return Err(SyntaxError::new(
                    SyntaxErrorKind::MalformedNumber,
                    span,
                    format!("unsupported literal width {w} (1..=128)"),
                ));
            }
            value &= mask(w);
            xz &= mask(w);
        }
        Ok(Number { width: n.width, base: n.base, value, xz, signed: n.signed })
    }
}

fn mask(bits: u32) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ansi_module() {
        let src = "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
                   assign y = a + b;\nendmodule\n";
        let file = parse(src).unwrap();
        let m = file.top().unwrap();
        assert_eq!(m.name, "add");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[2].dir, PortDir::Output);
        assert_eq!(m.items.len(), 1);
    }

    #[test]
    fn parses_non_ansi_module() {
        let src = "module m(a, b, y);\ninput a, b;\noutput reg [3:0] y;\n\
                   always @(*) y = a & b;\nendmodule\n";
        let file = parse(src).unwrap();
        let m = file.top().unwrap();
        assert_eq!(m.ports.len(), 3);
        let y = m.port("y").unwrap();
        assert_eq!(y.dir, PortDir::Output);
        assert_eq!(y.net, NetKind::Reg);
        assert!(y.range.is_some());
    }

    #[test]
    fn parses_always_ff_with_reset() {
        let src = "module c(input clk, input rst_n, output reg [3:0] q);\n\
                   always @(posedge clk or negedge rst_n) begin\n\
                   if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\nend\nendmodule\n";
        let file = parse(src).unwrap();
        let m = file.top().unwrap();
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                Item::Always(a) => Some(a),
                _ => None,
            })
            .unwrap();
        assert!(always.sensitivity.is_edge_triggered());
    }

    #[test]
    fn parses_case_with_default() {
        let src = "module mx(input [1:0] s, output reg o);\nalways @(*) begin\n\
                   case (s)\n2'b00: o = 1'b0;\n2'b01, 2'b10: o = 1'b1;\n\
                   default: o = 1'b0;\nendcase\nend\nendmodule\n";
        let file = parse(src).unwrap();
        let m = file.top().unwrap();
        let always = m
            .items
            .iter()
            .find_map(|i| match i {
                Item::Always(a) => Some(a),
                _ => None,
            })
            .unwrap();
        match &always.body {
            Stmt::Block(b) => match &b.stmts[0] {
                Stmt::Case(c) => {
                    assert_eq!(c.arms.len(), 2);
                    assert_eq!(c.arms[1].labels.len(), 2);
                    assert!(c.default.is_some());
                }
                other => panic!("expected case, got {other:?}"),
            },
            other => panic!("expected block, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop() {
        let src = "module f(input [7:0] d, output reg [7:0] q);\ninteger i;\n\
                   always @(*) begin\nfor (i = 0; i < 8; i = i + 1) q[i] = d[7 - i];\n\
                   end\nendmodule\n";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_instance_with_named_ports() {
        let src = "module top(input a, output y);\nwire w;\n\
                   inv u1(.in(a), .out(w));\ninv u2(.in(w), .out(y));\nendmodule\n\
                   module inv(input in, output out);\nassign out = ~in;\nendmodule\n";
        let file = parse(src).unwrap();
        assert_eq!(file.modules.len(), 2);
        let top = file.module("top").unwrap();
        let insts: Vec<_> = top
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Instance(inst) => Some(inst),
                _ => None,
            })
            .collect();
        assert_eq!(insts.len(), 2);
        assert_eq!(insts[0].conns[0].port.as_deref(), Some("in"));
    }

    #[test]
    fn parses_parameter_header() {
        let src = "module p #(parameter W = 8)(input [W-1:0] d, output [W-1:0] q);\n\
                   assign q = d;\nendmodule\n";
        let file = parse(src).unwrap();
        let m = file.top().unwrap();
        assert!(m.items.iter().any(|i| matches!(i, Item::Param(_))));
    }

    #[test]
    fn missing_semicolon_is_error() {
        let src = "module m(input a, output y);\nassign y = a\nendmodule\n";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("';'"), "got: {}", err.message);
    }

    #[test]
    fn missing_end_is_error() {
        let src = "module m(input a, output reg y);\nalways @(*) begin\ny = a;\nendmodule\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn concat_and_repeat_expressions() {
        let e = parse_expr("{2{a, 1'b0}}").unwrap();
        assert!(matches!(e, Expr::Repeat(_, _)));
        let e = parse_expr("{c, s[3:0]}").unwrap();
        assert!(matches!(e, Expr::Concat(_)));
    }

    #[test]
    fn precedence_in_expressions() {
        let e = parse_expr("a + b * c").unwrap();
        match e {
            Expr::Binary(BinaryOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinaryOp::Mul, _, _)));
            }
            other => panic!("expected add at top, got {other:?}"),
        }
        let e = parse_expr("a == b & c").unwrap();
        // `&` binds tighter than `==` in IEEE 1364? No: equality (7) binds
        // tighter than bitand (6), so the top node is `&`.
        assert!(matches!(e, Expr::Binary(BinaryOp::BitAnd, _, _)));
    }

    #[test]
    fn ternary_nesting() {
        let e = parse_expr("s ? a : t ? b : c").unwrap();
        match e {
            Expr::Ternary(_, _, els) => assert!(matches!(*els, Expr::Ternary(_, _, _))),
            other => panic!("expected ternary, got {other:?}"),
        }
    }

    #[test]
    fn xz_literals_resolve() {
        let e = parse_expr("4'b1x0z").unwrap();
        match e {
            Expr::Number(n) => {
                assert_eq!(n.value & !n.xz, 0b1000);
                assert_eq!(n.xz, 0b0101);
            }
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn lvalue_forms() {
        let src = "module m(input [7:0] a, output reg [7:0] y);\nreg [7:0] mem [0:3];\n\
                   always @(*) begin\ny = 8'd0;\ny[0] = a[0];\ny[3:1] = a[3:1];\n\
                   {y[7], y[6]} = a[1:0];\nmem[0] = a;\nend\nendmodule\n";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn undeclared_keyword_typo_is_error() {
        // `alway` lexes as identifier; parser then expects instantiation
        // syntax and fails at '@'.
        let src = "module m(input a, output reg y);\nalway @(*) y = a;\nendmodule\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn wrong_operator_sequence_is_error() {
        let src = "module m(input a, b, output y);\nassign y = a + * b;\nendmodule\n";
        assert!(parse(src).is_err());
    }
}
