//! Abstract syntax tree for the supported Verilog subset.
//!
//! Statements and module items carry [`Span`]s so that the linter, the
//! localization engine and the error generator can map constructs back to
//! source lines and perform text-surgical edits.

use crate::span::Span;
use crate::token::NumberBase;
use std::fmt;

/// A parsed source file: one or more module definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Modules in source order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// The first (usually only) module — conventionally the DUT.
    pub fn top(&self) -> Option<&Module> {
        self.modules.first()
    }
}

/// A `module … endmodule` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module identifier.
    pub name: String,
    /// Ports in header order (ANSI or non-ANSI style, normalised).
    pub ports: Vec<Port>,
    /// Body items in source order.
    pub items: Vec<Item>,
    /// Span of the entire definition.
    pub span: Span,
}

impl Module {
    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Iterates over input ports.
    pub fn inputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Input)
    }

    /// Iterates over output ports.
    pub fn outputs(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Output)
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    Input,
    Output,
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// Net kind of a declaration or port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    Wire,
    Reg,
}

impl fmt::Display for NetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetKind::Wire => "wire",
            NetKind::Reg => "reg",
        })
    }
}

/// A module port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    pub name: String,
    pub dir: PortDir,
    /// `reg` for ports declared `output reg`, otherwise `wire`.
    pub net: NetKind,
    /// Packed range `[msb:lsb]`, if the port is a vector.
    pub range: Option<Range>,
    pub signed: bool,
    /// Span of the port declaration in the header.
    pub span: Span,
}

/// A packed range `[msb:lsb]`; bounds are constant expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    pub msb: Expr,
    pub lsb: Expr,
    pub span: Span,
}

/// An item in a module body.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `wire`/`reg` declaration (possibly multiple names, arrays, inits).
    Net(NetDecl),
    /// `parameter`/`localparam` declaration.
    Param(ParamDecl),
    /// `integer i, j;`
    Integer(IntegerDecl),
    /// `assign lhs = rhs;`
    Assign(ContAssign),
    /// `always @(…) stmt`
    Always(AlwaysBlock),
    /// `initial stmt`
    Initial(InitialBlock),
    /// Module instantiation.
    Instance(Instance),
}

impl Item {
    /// Span of the item.
    pub fn span(&self) -> Span {
        match self {
            Item::Net(d) => d.span,
            Item::Param(d) => d.span,
            Item::Integer(d) => d.span,
            Item::Assign(a) => a.span,
            Item::Always(a) => a.span,
            Item::Initial(i) => i.span,
            Item::Instance(i) => i.span,
        }
    }
}

/// One declarator inside a net declaration: a name with optional
/// unpacked array dimension and optional initialiser.
#[derive(Debug, Clone, PartialEq)]
pub struct Declarator {
    pub name: String,
    /// Unpacked dimension `[lo:hi]` for memories.
    pub array: Option<Range>,
    /// `wire x = expr;` style initialiser.
    pub init: Option<Expr>,
    pub span: Span,
}

/// A `wire`/`reg` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDecl {
    pub kind: NetKind,
    pub signed: bool,
    pub range: Option<Range>,
    pub decls: Vec<Declarator>,
    pub span: Span,
}

/// A `parameter` or `localparam` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// True for `localparam`.
    pub local: bool,
    pub range: Option<Range>,
    /// `(name, value)` pairs.
    pub params: Vec<(String, Expr)>,
    pub span: Span,
}

/// An `integer` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegerDecl {
    pub names: Vec<String>,
    pub span: Span,
}

/// A continuous assignment `assign lhs = rhs;`.
#[derive(Debug, Clone, PartialEq)]
pub struct ContAssign {
    pub lhs: LValue,
    pub rhs: Expr,
    pub span: Span,
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq)]
pub struct AlwaysBlock {
    pub sensitivity: Sensitivity,
    pub body: Stmt,
    pub span: Span,
}

/// An `initial` block.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialBlock {
    pub body: Stmt,
    pub span: Span,
}

/// Sensitivity list of an `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@(*)` or `@*`.
    Star,
    /// `@(a or posedge clk, …)`.
    List(Vec<SensItem>),
}

impl Sensitivity {
    /// True when every item has an edge qualifier (a sequential block).
    pub fn is_edge_triggered(&self) -> bool {
        match self {
            Sensitivity::Star => false,
            Sensitivity::List(items) => !items.is_empty() && items.iter().all(|i| i.edge.is_some()),
        }
    }
}

/// One entry in a sensitivity list.
#[derive(Debug, Clone, PartialEq)]
pub struct SensItem {
    pub edge: Option<Edge>,
    pub signal: String,
    pub span: Span,
}

/// Edge qualifier in a sensitivity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    Pos,
    Neg,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Edge::Pos => "posedge",
            Edge::Neg => "negedge",
        })
    }
}

/// A module instantiation `mod name (.a(x), …);`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Name of the instantiated module.
    pub module: String,
    /// Instance identifier.
    pub name: String,
    /// Parameter overrides `#(.P(1))`, empty when absent.
    pub params: Vec<Connection>,
    /// Port connections (named or positional).
    pub conns: Vec<Connection>,
    pub span: Span,
}

/// A single `.port(expr)` (named) or `expr` (positional) connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Port name for named connections.
    pub port: Option<String>,
    /// Connected expression; `None` for explicitly empty `.port()`.
    pub expr: Option<Expr>,
    pub span: Span,
}

/// A behavioural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin … end`
    Block(Block),
    /// Blocking assignment `lhs = rhs;`
    Blocking(Assign),
    /// Non-blocking assignment `lhs <= rhs;`
    NonBlocking(Assign),
    /// `if (…) … else …`
    If(IfStmt),
    /// `case`/`casez`/`casex`
    Case(CaseStmt),
    /// `for (i = …; cond; i = …) body`
    For(ForStmt),
    /// A system task call such as `$display(…);` (executed as no-op).
    SysCall(SysCall),
    /// Lone `;`
    Null(Span),
}

impl Stmt {
    /// Span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Block(b) => b.span,
            Stmt::Blocking(a) | Stmt::NonBlocking(a) => a.span,
            Stmt::If(i) => i.span,
            Stmt::Case(c) => c.span,
            Stmt::For(f) => f.span,
            Stmt::SysCall(s) => s.span,
            Stmt::Null(s) => *s,
        }
    }
}

/// A `begin … end` block, optionally named.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub label: Option<String>,
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

/// A procedural assignment (blocking or non-blocking decided by the
/// enclosing [`Stmt`] variant).
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    pub lhs: LValue,
    pub rhs: Expr,
    pub span: Span,
}

/// An `if` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct IfStmt {
    pub cond: Expr,
    pub then_branch: Box<Stmt>,
    pub else_branch: Option<Box<Stmt>>,
    pub span: Span,
}

/// Flavour of a case statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseKind {
    Case,
    Casez,
    Casex,
}

impl fmt::Display for CaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CaseKind::Case => "case",
            CaseKind::Casez => "casez",
            CaseKind::Casex => "casex",
        })
    }
}

/// A `case` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStmt {
    pub kind: CaseKind,
    pub expr: Expr,
    pub arms: Vec<CaseArm>,
    /// `default:` arm, if present.
    pub default: Option<Box<Stmt>>,
    pub span: Span,
}

/// One labelled arm of a case statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Comma-separated label expressions.
    pub labels: Vec<Expr>,
    pub body: Stmt,
    pub span: Span,
}

/// A bounded `for` loop (unrolled at elaboration).
#[derive(Debug, Clone, PartialEq)]
pub struct ForStmt {
    /// `i = init`
    pub init: (LValue, Expr),
    pub cond: Expr,
    /// `i = step`
    pub step: (LValue, Expr),
    pub body: Box<Stmt>,
    pub span: Span,
}

/// A system task invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SysCall {
    /// Task name including `$`.
    pub name: String,
    pub args: Vec<Expr>,
    pub span: Span,
}

/// The target of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// `name`
    Ident(String, Span),
    /// `name[expr]` — bit-select of a vector or word-select of a memory.
    Index(String, Box<Expr>, Span),
    /// `name[msb:lsb]` — constant part-select.
    Part(String, Box<Expr>, Box<Expr>, Span),
    /// `{a, b, …}` concatenated targets.
    Concat(Vec<LValue>, Span),
}

impl LValue {
    /// Span of the target.
    pub fn span(&self) -> Span {
        match self {
            LValue::Ident(_, s)
            | LValue::Index(_, _, s)
            | LValue::Part(_, _, _, s)
            | LValue::Concat(_, s) => *s,
        }
    }

    /// The base signal names written by this target.
    pub fn base_names(&self) -> Vec<&str> {
        match self {
            LValue::Ident(n, _) | LValue::Index(n, _, _) | LValue::Part(n, _, _, _) => {
                vec![n.as_str()]
            }
            LValue::Concat(parts, _) => parts.iter().flat_map(|p| p.base_names()).collect(),
        }
    }
}

/// A numeric literal with resolved value bits.
///
/// `value`/`xz` encode four-state constants: bit *i* is X when
/// `xz[i] == 1 && value[i] == 0`, Z when `xz[i] == 1 && value[i] == 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Number {
    /// Explicit width, if the literal was sized.
    pub width: Option<u32>,
    pub base: NumberBase,
    pub value: u128,
    pub xz: u128,
    pub signed: bool,
}

impl Number {
    /// An unsized decimal constant.
    pub fn dec(value: u128) -> Self {
        Number { width: None, base: NumberBase::Dec, value, xz: 0, signed: false }
    }

    /// A sized constant with the given base.
    pub fn sized(width: u32, base: NumberBase, value: u128) -> Self {
        Number { width: Some(width), base, value, xz: 0, signed: false }
    }

    /// Effective width: the explicit width, or 32 for unsized constants.
    pub fn effective_width(&self) -> u32 {
        self.width.unwrap_or(32)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `!`
    LogNot,
    /// `~`
    BitNot,
    /// `-`
    Neg,
    /// `+`
    Plus,
    /// `&`
    RedAnd,
    /// `|`
    RedOr,
    /// `^`
    RedXor,
    /// `~&`
    RedNand,
    /// `~|`
    RedNor,
    /// `~^`
    RedXnor,
}

impl UnaryOp {
    /// Source spelling.
    pub fn as_str(&self) -> &'static str {
        use UnaryOp::*;
        match self {
            LogNot => "!",
            BitNot => "~",
            Neg => "-",
            Plus => "+",
            RedAnd => "&",
            RedOr => "|",
            RedXor => "^",
            RedNand => "~&",
            RedNor => "~|",
            RedXnor => "~^",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Shl,
    Shr,
    AShr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    LogAnd,
    LogOr,
    BitAnd,
    BitOr,
    BitXor,
    BitXnor,
}

impl BinaryOp {
    /// Source spelling.
    pub fn as_str(&self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Pow => "**",
            Shl => "<<",
            Shr => ">>",
            AShr => ">>>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            CaseEq => "===",
            CaseNe => "!==",
            LogAnd => "&&",
            LogOr => "||",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            BitXnor => "~^",
        }
    }

    /// Binding power for the pretty-printer and parser; higher binds
    /// tighter. Mirrors IEEE 1364 precedence.
    pub fn precedence(&self) -> u8 {
        use BinaryOp::*;
        match self {
            Pow => 12,
            Mul | Div | Mod => 11,
            Add | Sub => 10,
            Shl | Shr | AShr => 9,
            Lt | Le | Gt | Ge => 8,
            Eq | Ne | CaseEq | CaseNe => 7,
            BitAnd => 6,
            BitXor | BitXnor => 5,
            BitOr => 4,
            LogAnd => 3,
            LogOr => 2,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(Number),
    /// Signal / parameter reference.
    Ident(String),
    /// `op expr`
    Unary(UnaryOp, Box<Expr>),
    /// `lhs op rhs`
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `cond ? then : else`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `base[msb:lsb]`
    Part(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `{a, b, …}`
    Concat(Vec<Expr>),
    /// `{count{expr, …}}`
    Repeat(Box<Expr>, Vec<Expr>),
}

impl Expr {
    /// Shorthand for an unsized decimal constant expression.
    pub fn number(value: u128) -> Expr {
        Expr::Number(Number::dec(value))
    }

    /// Shorthand for an identifier expression.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Collects every identifier referenced in the expression.
    pub fn idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Number(_) => {}
            Expr::Ident(name) => out.push(name),
            Expr::Unary(_, e) => e.collect_idents(out),
            Expr::Binary(_, a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Ternary(c, t, e) => {
                c.collect_idents(out);
                t.collect_idents(out);
                e.collect_idents(out);
            }
            Expr::Index(b, i) => {
                b.collect_idents(out);
                i.collect_idents(out);
            }
            Expr::Part(b, m, l) => {
                b.collect_idents(out);
                m.collect_idents(out);
                l.collect_idents(out);
            }
            Expr::Concat(es) => {
                for e in es {
                    e.collect_idents(out);
                }
            }
            Expr::Repeat(c, es) => {
                c.collect_idents(out);
                for e in es {
                    e.collect_idents(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_edge_detection() {
        let seq = Sensitivity::List(vec![SensItem {
            edge: Some(Edge::Pos),
            signal: "clk".into(),
            span: Span::default(),
        }]);
        assert!(seq.is_edge_triggered());
        let comb = Sensitivity::List(vec![SensItem {
            edge: None,
            signal: "a".into(),
            span: Span::default(),
        }]);
        assert!(!comb.is_edge_triggered());
        assert!(!Sensitivity::Star.is_edge_triggered());
    }

    #[test]
    fn expr_ident_collection() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::ident("a")),
            Box::new(Expr::Ternary(
                Box::new(Expr::ident("sel")),
                Box::new(Expr::ident("b")),
                Box::new(Expr::number(0)),
            )),
        );
        assert_eq!(e.idents(), vec!["a", "sel", "b"]);
    }

    #[test]
    fn lvalue_base_names() {
        let lv = LValue::Concat(
            vec![
                LValue::Ident("carry".into(), Span::default()),
                LValue::Index("sum".into(), Box::new(Expr::number(0)), Span::default()),
            ],
            Span::default(),
        );
        assert_eq!(lv.base_names(), vec!["carry", "sum"]);
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::BitAnd.precedence() > BinaryOp::BitOr.precedence());
        assert!(BinaryOp::LogAnd.precedence() > BinaryOp::LogOr.precedence());
    }
}
