//! Token definitions for the Verilog lexer.

use crate::span::Span;
use std::fmt;

/// A lexed token: kind plus the source span it was read from.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

impl Token {
    /// Creates a token of `kind` covering `span`.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// Verilog keywords recognised by the lexer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Parameter,
    Localparam,
    Assign,
    Always,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    For,
    While,
    Posedge,
    Negedge,
    Or,
    Signed,
    Function,
    Endfunction,
    Genvar,
    Generate,
    Endgenerate,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    pub fn lookup(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "module" => Module,
            "endmodule" => Endmodule,
            "input" => Input,
            "output" => Output,
            "inout" => Inout,
            "wire" => Wire,
            "reg" => Reg,
            "integer" => Integer,
            "parameter" => Parameter,
            "localparam" => Localparam,
            "assign" => Assign,
            "always" => Always,
            "initial" => Initial,
            "begin" => Begin,
            "end" => End,
            "if" => If,
            "else" => Else,
            "case" => Case,
            "casez" => Casez,
            "casex" => Casex,
            "endcase" => Endcase,
            "default" => Default,
            "for" => For,
            "while" => While,
            "posedge" => Posedge,
            "negedge" => Negedge,
            "or" => Or,
            "signed" => Signed,
            "function" => Function,
            "endfunction" => Endfunction,
            "genvar" => Genvar,
            "generate" => Generate,
            "endgenerate" => Endgenerate,
            _ => return None,
        })
    }

    /// The canonical source spelling of the keyword.
    pub fn as_str(&self) -> &'static str {
        use Keyword::*;
        match self {
            Module => "module",
            Endmodule => "endmodule",
            Input => "input",
            Output => "output",
            Inout => "inout",
            Wire => "wire",
            Reg => "reg",
            Integer => "integer",
            Parameter => "parameter",
            Localparam => "localparam",
            Assign => "assign",
            Always => "always",
            Initial => "initial",
            Begin => "begin",
            End => "end",
            If => "if",
            Else => "else",
            Case => "case",
            Casez => "casez",
            Casex => "casex",
            Endcase => "endcase",
            Default => "default",
            For => "for",
            While => "while",
            Posedge => "posedge",
            Negedge => "negedge",
            Or => "or",
            Signed => "signed",
            Function => "function",
            Endfunction => "endfunction",
            Genvar => "genvar",
            Generate => "generate",
            Endgenerate => "endgenerate",
        }
    }
}

/// A numeric literal as written in the source.
///
/// `32'hDEAD_beef` lexes to `width: Some(32)`, `base: Hex`,
/// `digits: "DEADbeef"`. Plain decimal numbers have `width: None` and
/// `base: Dec`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumberToken {
    /// Explicit bit width before the base marker, if any.
    pub width: Option<u32>,
    /// Radix of the digits.
    pub base: NumberBase,
    /// Digit characters with underscores stripped (may contain `x`/`z`/`?`).
    pub digits: String,
    /// Whether the literal used a signed base marker such as `'sd`.
    pub signed: bool,
}

/// Radix of a based literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumberBase {
    Bin,
    Oct,
    Dec,
    Hex,
}

impl NumberBase {
    /// The numeric radix.
    pub fn radix(&self) -> u32 {
        match self {
            NumberBase::Bin => 2,
            NumberBase::Oct => 8,
            NumberBase::Dec => 10,
            NumberBase::Hex => 16,
        }
    }

    /// Bits encoded by one digit in this base (decimal reports 4).
    pub fn bits_per_digit(&self) -> u32 {
        match self {
            NumberBase::Bin => 1,
            NumberBase::Oct => 3,
            NumberBase::Dec => 4,
            NumberBase::Hex => 4,
        }
    }

    /// The base letter used in source (`b`, `o`, `d`, `h`).
    pub fn letter(&self) -> char {
        match self {
            NumberBase::Bin => 'b',
            NumberBase::Oct => 'o',
            NumberBase::Dec => 'd',
            NumberBase::Hex => 'h',
        }
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (not a keyword).
    Ident(String),
    /// Reserved word.
    Keyword(Keyword),
    /// Numeric literal.
    Number(NumberToken),
    /// String literal contents (without quotes).
    Str(String),
    /// System task/function name including the `$`, e.g. `$display`.
    SysIdent(String),

    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Dot,
    Hash,
    At,
    Question,
    Assign,     // =
    PlusColon,  // +:
    MinusColon, // -:

    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Power, // **

    Not,        // !
    Tilde,      // ~
    Amp,        // &
    Pipe,       // |
    Caret,      // ^
    TildeAmp,   // ~&
    TildePipe,  // ~|
    TildeCaret, // ~^ or ^~

    AndAnd, // &&
    OrOr,   // ||

    EqEq,   // ==
    NotEq,  // !=
    CaseEq, // ===
    CaseNe, // !==

    Lt,
    Le,
    Gt,
    Ge,

    Shl,  // <<
    Shr,  // >>
    AShr, // >>>
    AShl, // <<<

    LeAssign, // <= (non-blocking assign / less-equal, disambiguated by parser)

    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) => write!(f, "{s}"),
            Keyword(k) => write!(f, "{}", k.as_str()),
            Number(n) => {
                if let Some(w) = n.width {
                    write!(f, "{w}'{}{}", n.base.letter(), n.digits)
                } else if n.base == NumberBase::Dec {
                    write!(f, "{}", n.digits)
                } else {
                    write!(f, "'{}{}", n.base.letter(), n.digits)
                }
            }
            Str(s) => write!(f, "\"{s}\""),
            SysIdent(s) => write!(f, "{s}"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            Semi => write!(f, ";"),
            Comma => write!(f, ","),
            Colon => write!(f, ":"),
            Dot => write!(f, "."),
            Hash => write!(f, "#"),
            At => write!(f, "@"),
            Question => write!(f, "?"),
            Assign => write!(f, "="),
            PlusColon => write!(f, "+:"),
            MinusColon => write!(f, "-:"),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Power => write!(f, "**"),
            Not => write!(f, "!"),
            Tilde => write!(f, "~"),
            Amp => write!(f, "&"),
            Pipe => write!(f, "|"),
            Caret => write!(f, "^"),
            TildeAmp => write!(f, "~&"),
            TildePipe => write!(f, "~|"),
            TildeCaret => write!(f, "~^"),
            AndAnd => write!(f, "&&"),
            OrOr => write!(f, "||"),
            EqEq => write!(f, "=="),
            NotEq => write!(f, "!="),
            CaseEq => write!(f, "==="),
            CaseNe => write!(f, "!=="),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            Shl => write!(f, "<<"),
            Shr => write!(f, ">>"),
            AShr => write!(f, ">>>"),
            AShl => write!(f, "<<<"),
            LeAssign => write!(f, "<="),
            Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Module,
            Keyword::Endmodule,
            Keyword::Always,
            Keyword::Posedge,
            Keyword::Casez,
            Keyword::Localparam,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("alway"), None);
    }

    #[test]
    fn number_token_display() {
        let tok = TokenKind::Number(NumberToken {
            width: Some(8),
            base: NumberBase::Hex,
            digits: "ff".into(),
            signed: false,
        });
        assert_eq!(tok.to_string(), "8'hff");
        let dec = TokenKind::Number(NumberToken {
            width: None,
            base: NumberBase::Dec,
            digits: "42".into(),
            signed: false,
        });
        assert_eq!(dec.to_string(), "42");
    }

    #[test]
    fn base_properties() {
        assert_eq!(NumberBase::Bin.radix(), 2);
        assert_eq!(NumberBase::Hex.bits_per_digit(), 4);
        assert_eq!(NumberBase::Oct.letter(), 'o');
    }
}
