//! Miscellaneous designs: ALU, multiplexer, decoder, encoder, parity,
//! edge detector, shift register, barrel shifter, PWM.

use crate::{tx, Category, Design};
use uvllm_uvm::{DutInterface, FnModel, InSlot, IoFrame, IoSpec, OutSlot, PortSig, RefModel};

/// The miscellaneous group (9 designs).
pub static DESIGNS: [Design; 9] = [
    Design {
        name: "alu_8bit",
        category: Category::Miscellaneous,
        module_type: "logic",
        spec: "A combinational 8-bit ALU. `op` selects: 0 add, 1 subtract, \
               2 AND, 3 OR, 4 XOR, 5 logical shift left by b[2:0], 6 \
               logical shift right by b[2:0], 7 set-less-than (y = 1 when \
               a < b unsigned). `zero` is high when `y` is zero.",
        source: "module alu_8bit(\n  input [7:0] a,\n  input [7:0] b,\n  input [2:0] op,\n  output reg [7:0] y,\n  output zero\n);\nassign zero = (y == 8'd0);\nalways @(*) begin\n  case (op)\n    3'd0: y = a + b;\n    3'd1: y = a - b;\n    3'd2: y = a & b;\n    3'd3: y = a | b;\n    3'd4: y = a ^ b;\n    3'd5: y = a << b[2:0];\n    3'd6: y = a >> b[2:0];\n    default: y = (a < b) ? 8'd1 : 8'd0;\n  endcase\nend\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("a", 8), PortSig::new("b", 8), PortSig::new("op", 3)],
                vec![PortSig::new("y", 8), PortSig::new("zero", 1)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (a, b, op) = (s.input("a"), s.input("b"), s.input("op"));
                let (y, zero) = (s.output("y"), s.output("zero"));
                move |io: &mut IoFrame<'_>| {
                    let av = io.get(a);
                    let bv = io.get(b);
                    let yv = match io.get(op) {
                        0 => (av + bv) & 0xff,
                        1 => av.wrapping_sub(bv) & 0xff,
                        2 => av & bv,
                        3 => av | bv,
                        4 => av ^ bv,
                        5 => (av << (bv & 7)) & 0xff,
                        6 => av >> (bv & 7),
                        _ => (av < bv) as u128,
                    };
                    io.set(y, yv);
                    io.set(zero, (yv == 0) as u128);
                }
            }))
        },
        directed_vectors: || {
            // Weak: add/and/or with benign operands; shifts, slt and
            // subtraction-underflow untested.
            vec![
                tx(&[("a", 8, 5), ("b", 8, 3), ("op", 3, 0)]),
                tx(&[("a", 8, 9), ("b", 8, 4), ("op", 3, 1)]),
                tx(&[("a", 8, 0xF0), ("b", 8, 0x0F), ("op", 3, 2)]),
                tx(&[("a", 8, 0xF0), ("b", 8, 0x0F), ("op", 3, 3)]),
            ]
        },
    },
    Design {
        name: "mux4",
        category: Category::Miscellaneous,
        module_type: "selector",
        spec: "A combinational 4-to-1 multiplexer over 8-bit inputs: `sel` \
               routes d0..d3 to `y`.",
        source: "module mux4(\n  input [1:0] sel,\n  input [7:0] d0,\n  input [7:0] d1,\n  input [7:0] d2,\n  input [7:0] d3,\n  output reg [7:0] y\n);\nalways @(*) begin\n  case (sel)\n    2'd0: y = d0;\n    2'd1: y = d1;\n    2'd2: y = d2;\n    default: y = d3;\n  endcase\nend\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![
                    PortSig::new("sel", 2),
                    PortSig::new("d0", 8),
                    PortSig::new("d1", 8),
                    PortSig::new("d2", 8),
                    PortSig::new("d3", 8),
                ],
                vec![PortSig::new("y", 8)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let sel = s.input("sel");
                let d = [s.input("d0"), s.input("d1"), s.input("d2"), s.input("d3")];
                let y = s.output("y");
                move |io: &mut IoFrame<'_>| {
                    let v = io.get(d[(io.get(sel) & 3) as usize]);
                    io.set(y, v);
                }
            }))
        },
        directed_vectors: || {
            // Weak: d3 never selected.
            vec![
                tx(&[("sel", 2, 0), ("d0", 8, 1), ("d1", 8, 2), ("d2", 8, 3), ("d3", 8, 4)]),
                tx(&[("sel", 2, 1), ("d0", 8, 1), ("d1", 8, 2), ("d2", 8, 3), ("d3", 8, 4)]),
                tx(&[("sel", 2, 2), ("d0", 8, 1), ("d1", 8, 2), ("d2", 8, 3), ("d3", 8, 4)]),
            ]
        },
    },
    Design {
        name: "decoder_3to8",
        category: Category::Miscellaneous,
        module_type: "selector",
        spec: "A combinational 3-to-8 one-hot decoder with enable: when \
               `en` is high exactly bit `sel` of `y` is set; otherwise `y` \
               is zero.",
        source: "module decoder_3to8(\n  input en,\n  input [2:0] sel,\n  output [7:0] y\n);\nassign y = en ? (8'd1 << sel) : 8'd0;\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("en", 1), PortSig::new("sel", 3)],
                vec![PortSig::new("y", 8)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (en, sel, y) = (s.input("en"), s.input("sel"), s.output("y"));
                move |io: &mut IoFrame<'_>| {
                    let v = if io.get(en) == 1 { 1u128 << io.get(sel) } else { 0 };
                    io.set(y, v);
                }
            }))
        },
        directed_vectors: || {
            vec![
                tx(&[("en", 1, 1), ("sel", 3, 0)]),
                tx(&[("en", 1, 1), ("sel", 3, 1)]),
                tx(&[("en", 1, 1), ("sel", 3, 2)]),
                tx(&[("en", 1, 0), ("sel", 3, 5)]),
            ]
        },
    },
    Design {
        name: "priority_encoder_8",
        category: Category::Miscellaneous,
        module_type: "selector",
        spec: "A combinational 8-input priority encoder: `y` is the index \
               of the highest set bit of `din` and `valid` indicates that \
               at least one bit is set (y is 0 when invalid).",
        source: "module priority_encoder_8(\n  input [7:0] din,\n  output reg [2:0] y,\n  output valid\n);\nassign valid = (din != 8'd0);\nalways @(*) begin\n  if (din[7]) y = 3'd7;\n  else if (din[6]) y = 3'd6;\n  else if (din[5]) y = 3'd5;\n  else if (din[4]) y = 3'd4;\n  else if (din[3]) y = 3'd3;\n  else if (din[2]) y = 3'd2;\n  else if (din[1]) y = 3'd1;\n  else y = 3'd0;\nend\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("din", 8)],
                vec![PortSig::new("y", 3), PortSig::new("valid", 1)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (din, y, valid) = (s.input("din"), s.output("y"), s.output("valid"));
                move |io: &mut IoFrame<'_>| {
                    let d = io.get(din);
                    let yv = if d == 0 { 0 } else { 127 - d.leading_zeros() as u128 };
                    io.set(y, yv);
                    io.set(valid, (d != 0) as u128);
                }
            }))
        },
        directed_vectors: || {
            // Weak: single-bit inputs in the low half.
            vec![
                tx(&[("din", 8, 0b0000_0001)]),
                tx(&[("din", 8, 0b0000_0100)]),
                tx(&[("din", 8, 0b0000_1000)]),
                tx(&[("din", 8, 0)]),
            ]
        },
    },
    Design {
        name: "parity_gen_8",
        category: Category::Miscellaneous,
        module_type: "logic",
        spec: "A combinational parity generator over an 8-bit input: `p` is \
               the even parity (XOR reduction) when `odd` is low and the \
               odd parity (its complement) when `odd` is high.",
        source: "module parity_gen_8(\n  input [7:0] din,\n  input odd,\n  output p\n);\nassign p = odd ? ~^din : ^din;\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("din", 8), PortSig::new("odd", 1)],
                vec![PortSig::new("p", 1)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (din, odd, p) = (s.input("din"), s.input("odd"), s.output("p"));
                move |io: &mut IoFrame<'_>| {
                    let even = (io.get(din).count_ones() % 2) as u128;
                    let v = if io.get(odd) == 1 { 1 - even } else { even };
                    io.set(p, v);
                }
            }))
        },
        directed_vectors: || {
            vec![
                tx(&[("din", 8, 0b0000_0011), ("odd", 1, 0)]),
                tx(&[("din", 8, 0b0000_0111), ("odd", 1, 0)]),
                tx(&[("din", 8, 0b0000_0001), ("odd", 1, 1)]),
            ]
        },
    },
    Design {
        name: "edge_detector",
        category: Category::Miscellaneous,
        module_type: "logic",
        spec: "A rising-edge detector: `pulse` is high for one cycle after \
               the sampled input `sig` transitions from 0 to 1. Both the \
               history flop and the pulse are registered; asynchronous \
               active-low reset clears them.",
        source: "module edge_detector(\n  input clk,\n  input rst_n,\n  input sig,\n  output reg pulse\n);\nreg prev;\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n) begin\n    prev <= 1'b0;\n    pulse <= 1'b0;\n  end else begin\n    pulse <= sig & ~prev;\n    prev <= sig;\n  end\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(vec![PortSig::new("sig", 1)], vec![PortSig::new("pulse", 1)])
        },
        model: || Box::<EdgeDetector>::default(),
        directed_vectors: || {
            vec![
                tx(&[("sig", 1, 0)]),
                tx(&[("sig", 1, 1)]),
                tx(&[("sig", 1, 1)]),
                tx(&[("sig", 1, 0)]),
                tx(&[("sig", 1, 1)]),
            ]
        },
    },
    Design {
        name: "shift_reg_8",
        category: Category::Miscellaneous,
        module_type: "shifter",
        spec: "An 8-bit serial-in parallel-out shift register: on each \
               enabled rising clock edge the register shifts left by one \
               and `sin` enters at bit 0. Asynchronous active-low reset \
               clears it.",
        source: "module shift_reg_8(\n  input clk,\n  input rst_n,\n  input en,\n  input sin,\n  output reg [7:0] q\n);\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    q <= 8'd0;\n  else if (en)\n    q <= {q[6:0], sin};\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("en", 1), PortSig::new("sin", 1)],
                vec![PortSig::new("q", 8)],
            )
        },
        model: || Box::<ShiftReg>::default(),
        directed_vectors: || {
            vec![
                tx(&[("en", 1, 1), ("sin", 1, 1)]),
                tx(&[("en", 1, 1), ("sin", 1, 0)]),
                tx(&[("en", 1, 1), ("sin", 1, 1)]),
                tx(&[("en", 1, 0), ("sin", 1, 1)]),
            ]
        },
    },
    Design {
        name: "barrel_shifter_8",
        category: Category::Miscellaneous,
        module_type: "shifter",
        spec: "A combinational 8-bit barrel rotator: `dout` is `din` \
               rotated left by `amt` positions when `dir` is 0 and rotated \
               right when `dir` is 1.",
        source: "module barrel_shifter_8(\n  input [7:0] din,\n  input [2:0] amt,\n  input dir,\n  output [7:0] dout\n);\nwire [3:0] left;\nwire [3:0] right;\nassign left = 4'd8 - {1'b0, amt};\nassign dout = dir ? ((din >> amt) | (din << left)) : ((din << amt) | (din >> left));\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("din", 8), PortSig::new("amt", 3), PortSig::new("dir", 1)],
                vec![PortSig::new("dout", 8)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (din, amt, dir) = (s.input("din"), s.input("amt"), s.input("dir"));
                let dout = s.output("dout");
                move |io: &mut IoFrame<'_>| {
                    let d = io.get(din) as u8;
                    let a = io.get(amt) as u32;
                    let v = if io.get(dir) == 1 { d.rotate_right(a) } else { d.rotate_left(a) };
                    io.set(dout, v as u128);
                }
            }))
        },
        directed_vectors: || {
            // Weak: left rotations only, small amounts.
            vec![
                tx(&[("din", 8, 0b0000_0001), ("amt", 3, 1), ("dir", 1, 0)]),
                tx(&[("din", 8, 0b0000_0011), ("amt", 3, 2), ("dir", 1, 0)]),
                tx(&[("din", 8, 0b1000_0000), ("amt", 3, 0), ("dir", 1, 0)]),
            ]
        },
    },
    Design {
        name: "pwm_8",
        category: Category::Miscellaneous,
        module_type: "logic",
        spec: "An 8-bit PWM generator: a free-running counter increments \
               every clock; the output `pwm` is high while the counter is \
               strictly below `duty`, giving a duty/256 high fraction. \
               Asynchronous active-low reset clears the counter.",
        source: "module pwm_8(\n  input clk,\n  input rst_n,\n  input [7:0] duty,\n  output pwm\n);\nreg [7:0] cnt;\nassign pwm = (cnt < duty);\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    cnt <= 8'd0;\n  else\n    cnt <= cnt + 8'd1;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(vec![PortSig::new("duty", 8)], vec![PortSig::new("pwm", 1)])
        },
        model: || Box::<Pwm>::default(),
        directed_vectors: || {
            vec![
                tx(&[("duty", 8, 4)]),
                tx(&[("duty", 8, 4)]),
                tx(&[("duty", 8, 4)]),
                tx(&[("duty", 8, 0)]),
                tx(&[("duty", 8, 255)]),
            ]
        },
    },
];

#[derive(Default)]
struct EdgeDetector {
    prev: u128,
    pulse: u128,
    sig: InSlot,
    pulse_out: OutSlot,
}

impl RefModel for EdgeDetector {
    fn bind(&mut self, spec: &IoSpec) {
        self.sig = spec.input("sig");
        self.pulse_out = spec.output("pulse");
    }
    fn reset(&mut self) {
        self.prev = 0;
        self.pulse = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        let sig = io.get(self.sig);
        self.pulse = sig & (1 - self.prev);
        self.prev = sig;
        io.set(self.pulse_out, self.pulse);
    }
}

#[derive(Default)]
struct ShiftReg {
    q: u128,
    en: InSlot,
    sin: InSlot,
    q_out: OutSlot,
}

impl RefModel for ShiftReg {
    fn bind(&mut self, spec: &IoSpec) {
        self.en = spec.input("en");
        self.sin = spec.input("sin");
        self.q_out = spec.output("q");
    }
    fn reset(&mut self) {
        self.q = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        if io.get(self.en) == 1 {
            self.q = ((self.q << 1) | io.get(self.sin)) & 0xff;
        }
        io.set(self.q_out, self.q);
    }
}

#[derive(Default)]
struct Pwm {
    cnt: u128,
    duty: InSlot,
    pwm: OutSlot,
}

impl RefModel for Pwm {
    fn bind(&mut self, spec: &IoSpec) {
        self.duty = spec.input("duty");
        self.pwm = spec.output("pwm");
    }
    fn reset(&mut self) {
        self.cnt = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        self.cnt = (self.cnt + 1) & 0xff;
        io.set(self.pwm, (self.cnt < io.get(self.duty)) as u128);
    }
}
