//! Control designs: counters and finite-state machines.

use crate::{tx, Category, Design};
use uvllm_uvm::{DutInterface, InSlot, IoFrame, IoSpec, OutSlot, PortSig, RefModel};

/// The control group (6 designs).
pub static DESIGNS: [Design; 6] = [
    Design {
        name: "counter_12",
        category: Category::Control,
        module_type: "counter",
        spec: "A modulo-12 counter. When `en` is high the counter advances \
               on each rising clock edge, wrapping from 11 back to 0; `tc` \
               (terminal count) is high whenever the counter value is 11. \
               Asynchronous active-low reset clears the counter.",
        source: "module counter_12(\n  input clk,\n  input rst_n,\n  input en,\n  output reg [3:0] q,\n  output tc\n);\nassign tc = (q == 4'd11);\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    q <= 4'd0;\n  else if (en) begin\n    if (q == 4'd11)\n      q <= 4'd0;\n    else\n      q <= q + 4'd1;\n  end\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("en", 1)],
                vec![PortSig::new("q", 4), PortSig::new("tc", 1)],
            )
        },
        model: || Box::<Counter12>::default(),
        directed_vectors: || {
            // Weak: only 6 enabled cycles — the wrap at 11 is never hit.
            vec![
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 0)]),
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 1)]),
            ]
        },
    },
    Design {
        name: "updown_counter_8",
        category: Category::Control,
        module_type: "counter",
        spec: "An 8-bit up/down counter with synchronous load. When `load` \
               is high the counter takes `d`; otherwise when `en` is high it \
               counts up (`up`=1) or down (`up`=0), wrapping modulo 256. \
               Asynchronous active-low reset clears it.",
        source: "module updown_counter_8(\n  input clk,\n  input rst_n,\n  input en,\n  input up,\n  input load,\n  input [7:0] d,\n  output reg [7:0] q\n);\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    q <= 8'd0;\n  else if (load)\n    q <= d;\n  else if (en) begin\n    if (up)\n      q <= q + 8'd1;\n    else\n      q <= q - 8'd1;\n  end\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![
                    PortSig::new("en", 1),
                    PortSig::new("up", 1),
                    PortSig::new("load", 1),
                    PortSig::new("d", 8),
                ],
                vec![PortSig::new("q", 8)],
            )
        },
        model: || Box::<UpDown>::default(),
        directed_vectors: || {
            // Weak: counts up from a loaded mid value; down-wrap at zero
            // untested.
            vec![
                tx(&[("load", 1, 1), ("d", 8, 16), ("en", 1, 0), ("up", 1, 1)]),
                tx(&[("load", 1, 0), ("d", 8, 0), ("en", 1, 1), ("up", 1, 1)]),
                tx(&[("load", 1, 0), ("d", 8, 0), ("en", 1, 1), ("up", 1, 1)]),
                tx(&[("load", 1, 0), ("d", 8, 0), ("en", 1, 1), ("up", 1, 0)]),
                tx(&[("load", 1, 0), ("d", 8, 0), ("en", 1, 0), ("up", 1, 0)]),
            ]
        },
    },
    Design {
        name: "gray_counter_4",
        category: Category::Control,
        module_type: "counter",
        spec: "A 4-bit Gray-code counter: an internal binary counter \
               increments when `en` is high, and the output is its Gray \
               encoding `gray = bin ^ (bin >> 1)`. Asynchronous active-low \
               reset clears the counter.",
        source: "module gray_counter_4(\n  input clk,\n  input rst_n,\n  input en,\n  output [3:0] gray\n);\nreg [3:0] bin;\nassign gray = bin ^ (bin >> 1);\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    bin <= 4'd0;\n  else if (en)\n    bin <= bin + 4'd1;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(vec![PortSig::new("en", 1)], vec![PortSig::new("gray", 4)])
        },
        model: || Box::<GrayCounter>::default(),
        directed_vectors: || {
            vec![
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 0)]),
                tx(&[("en", 1, 1)]),
            ]
        },
    },
    Design {
        name: "johnson_counter_4",
        category: Category::Control,
        module_type: "counter",
        spec: "A 4-bit Johnson (twisted-ring) counter: on each enabled \
               rising clock edge the register shifts left by one and the \
               complement of the old MSB enters at bit 0, giving the \
               8-state Johnson sequence. Asynchronous active-low reset \
               clears it.",
        source: "module johnson_counter_4(\n  input clk,\n  input rst_n,\n  input en,\n  output reg [3:0] q\n);\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    q <= 4'd0;\n  else if (en)\n    q <= {q[2:0], ~q[3]};\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(vec![PortSig::new("en", 1)], vec![PortSig::new("q", 4)])
        },
        model: || Box::<Johnson>::default(),
        directed_vectors: || {
            // Weak: four steps — the descending half of the ring is
            // never reached.
            vec![
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 1)]),
                tx(&[("en", 1, 1)]),
            ]
        },
    },
    Design {
        name: "seq_detector_101",
        category: Category::Control,
        module_type: "fsm",
        spec: "A Moore FSM detecting the overlapping bit pattern 101 on the \
               serial input `din`. One cycle after the final 1 of a 101 \
               pattern is sampled, `det` is high for exactly one cycle. \
               Overlaps count: in 10101 the pattern is detected twice. \
               Asynchronous active-low reset returns the FSM to idle.",
        source: "module seq_detector_101(\n  input clk,\n  input rst_n,\n  input din,\n  output det\n);\nlocalparam IDLE = 2'd0;\nlocalparam GOT1 = 2'd1;\nlocalparam GOT10 = 2'd2;\nlocalparam FOUND = 2'd3;\nreg [1:0] state;\nassign det = (state == FOUND);\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    state <= IDLE;\n  else begin\n    case (state)\n      IDLE: state <= din ? GOT1 : IDLE;\n      GOT1: state <= din ? GOT1 : GOT10;\n      GOT10: state <= din ? FOUND : IDLE;\n      FOUND: state <= din ? GOT1 : GOT10;\n      default: state <= IDLE;\n    endcase\n  end\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(vec![PortSig::new("din", 1)], vec![PortSig::new("det", 1)])
        },
        model: || Box::<SeqDetector>::default(),
        directed_vectors: || {
            // Weak: a single non-overlapping occurrence.
            vec![
                tx(&[("din", 1, 1)]),
                tx(&[("din", 1, 0)]),
                tx(&[("din", 1, 1)]),
                tx(&[("din", 1, 0)]),
                tx(&[("din", 1, 0)]),
            ]
        },
    },
    Design {
        name: "traffic_light",
        category: Category::Control,
        module_type: "fsm",
        spec: "A Moore traffic-light controller cycling red (4 cycles) → \
               green (5 cycles) → yellow (2 cycles) → red …. The output \
               `light` encodes 0=red, 1=green, 2=yellow. Asynchronous \
               active-low reset returns to red with a fresh timer.",
        source: "module traffic_light(\n  input clk,\n  input rst_n,\n  output reg [1:0] light\n);\nlocalparam RED = 2'd0;\nlocalparam GREEN = 2'd1;\nlocalparam YELLOW = 2'd2;\nreg [2:0] timer;\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n) begin\n    light <= RED;\n    timer <= 3'd0;\n  end else begin\n    case (light)\n      RED: begin\n        if (timer == 3'd3) begin\n          light <= GREEN;\n          timer <= 3'd0;\n        end else\n          timer <= timer + 3'd1;\n      end\n      GREEN: begin\n        if (timer == 3'd4) begin\n          light <= YELLOW;\n          timer <= 3'd0;\n        end else\n          timer <= timer + 3'd1;\n      end\n      YELLOW: begin\n        if (timer == 3'd1) begin\n          light <= RED;\n          timer <= 3'd0;\n        end else\n          timer <= timer + 3'd1;\n      end\n      default: begin\n        light <= RED;\n        timer <= 3'd0;\n      end\n    endcase\n  end\nend\nendmodule\n",
        iface: || DutInterface::clocked(vec![], vec![PortSig::new("light", 2)]),
        model: || Box::<TrafficLight>::default(),
        directed_vectors: || {
            // Weak: five cycles — still in the first red phase or just
            // entering green; yellow never observed.
            vec![tx(&[]), tx(&[]), tx(&[]), tx(&[]), tx(&[])]
        },
    },
];

#[derive(Default)]
struct Counter12 {
    q: u128,
    en: InSlot,
    q_out: OutSlot,
    tc: OutSlot,
}

impl RefModel for Counter12 {
    fn bind(&mut self, spec: &IoSpec) {
        self.en = spec.input("en");
        self.q_out = spec.output("q");
        self.tc = spec.output("tc");
    }
    fn reset(&mut self) {
        self.q = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        if io.get(self.en) == 1 {
            self.q = if self.q == 11 { 0 } else { self.q + 1 };
        }
        io.set(self.q_out, self.q);
        io.set(self.tc, (self.q == 11) as u128);
    }
}

#[derive(Default)]
struct UpDown {
    q: u128,
    en: InSlot,
    up: InSlot,
    load: InSlot,
    d: InSlot,
    q_out: OutSlot,
}

impl RefModel for UpDown {
    fn bind(&mut self, spec: &IoSpec) {
        self.en = spec.input("en");
        self.up = spec.input("up");
        self.load = spec.input("load");
        self.d = spec.input("d");
        self.q_out = spec.output("q");
    }
    fn reset(&mut self) {
        self.q = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        if io.get(self.load) == 1 {
            self.q = io.get(self.d);
        } else if io.get(self.en) == 1 {
            self.q = if io.get(self.up) == 1 {
                (self.q + 1) & 0xff
            } else {
                self.q.wrapping_sub(1) & 0xff
            };
        }
        io.set(self.q_out, self.q);
    }
}

#[derive(Default)]
struct GrayCounter {
    bin: u128,
    en: InSlot,
    gray: OutSlot,
}

impl RefModel for GrayCounter {
    fn bind(&mut self, spec: &IoSpec) {
        self.en = spec.input("en");
        self.gray = spec.output("gray");
    }
    fn reset(&mut self) {
        self.bin = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        if io.get(self.en) == 1 {
            self.bin = (self.bin + 1) & 0xf;
        }
        io.set(self.gray, self.bin ^ (self.bin >> 1));
    }
}

#[derive(Default)]
struct Johnson {
    q: u128,
    en: InSlot,
    q_out: OutSlot,
}

impl RefModel for Johnson {
    fn bind(&mut self, spec: &IoSpec) {
        self.en = spec.input("en");
        self.q_out = spec.output("q");
    }
    fn reset(&mut self) {
        self.q = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        if io.get(self.en) == 1 {
            let msb = (self.q >> 3) & 1;
            self.q = ((self.q << 1) | (1 - msb)) & 0xf;
        }
        io.set(self.q_out, self.q);
    }
}

#[derive(Default)]
struct SeqDetector {
    state: u128,
    din: InSlot,
    det: OutSlot,
}

impl RefModel for SeqDetector {
    fn bind(&mut self, spec: &IoSpec) {
        self.din = spec.input("din");
        self.det = spec.output("det");
    }
    fn reset(&mut self) {
        self.state = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        let din = io.get(self.din);
        self.state = match (self.state, din) {
            (0, 1) => 1,
            (0, 0) => 0,
            (1, 1) => 1,
            (1, 0) => 2,
            (2, 1) => 3,
            (2, 0) => 0,
            (3, 1) => 1,
            (3, 0) => 2,
            _ => 0,
        };
        io.set(self.det, (self.state == 3) as u128);
    }
}

#[derive(Default)]
struct TrafficLight {
    light: u128,
    timer: u128,
    light_out: OutSlot,
}

impl RefModel for TrafficLight {
    fn bind(&mut self, spec: &IoSpec) {
        self.light_out = spec.output("light");
    }
    fn reset(&mut self) {
        self.light = 0;
        self.timer = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        let limit = match self.light {
            0 => 3, // red: 4 cycles (timer 0..=3)
            1 => 4, // green: 5 cycles
            _ => 1, // yellow: 2 cycles
        };
        if self.timer == limit {
            self.light = match self.light {
                0 => 1,
                1 => 2,
                _ => 0,
            };
            self.timer = 0;
        } else {
            self.timer += 1;
        }
        io.set(self.light_out, self.light);
    }
}
