//! Arithmetic designs: accumulator, adders, subtractor, multipliers,
//! divider.

use crate::{tx, Category, Design};
use uvllm_uvm::{
    DutInterface, FnModel, InSlot, IoFrame, IoSpec, OutSlot, PortSig, RefModel, Transaction,
};

/// The arithmetic group (7 designs).
pub static DESIGNS: [Design; 7] = [
    Design {
        name: "accu",
        category: Category::Arithmetic,
        module_type: "accumulator",
        spec: "An 8-bit accumulator. On each rising clock edge, when `en` is \
               high the input `d` is added to the running sum `q` (modulo \
               256); when `clr` is high the sum resets to zero (clr has \
               priority over en). Asynchronous active-low reset `rst_n` \
               clears the sum.",
        source: "module accu(\n  input clk,\n  input rst_n,\n  input en,\n  input clr,\n  input [7:0] d,\n  output reg [7:0] q\n);\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    q <= 8'd0;\n  else if (clr)\n    q <= 8'd0;\n  else if (en)\n    q <= q + d;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("en", 1), PortSig::new("clr", 1), PortSig::new("d", 8)],
                vec![PortSig::new("q", 8)],
            )
        },
        model: || Box::<Accu>::default(),
        directed_vectors: || {
            // Weak: small increments, never wraps past 255, never clears
            // while accumulating.
            vec![
                tx(&[("en", 1, 1), ("clr", 1, 0), ("d", 8, 1)]),
                tx(&[("en", 1, 1), ("clr", 1, 0), ("d", 8, 2)]),
                tx(&[("en", 1, 0), ("clr", 1, 0), ("d", 8, 9)]),
                tx(&[("en", 1, 1), ("clr", 1, 0), ("d", 8, 3)]),
                tx(&[("en", 1, 0), ("clr", 1, 1), ("d", 8, 0)]),
            ]
        },
    },
    Design {
        name: "adder_8bit",
        category: Category::Arithmetic,
        module_type: "adder",
        spec: "A combinational 8-bit full adder: `{cout, sum} = a + b + cin`. \
               `sum` is the low 8 bits and `cout` the carry out.",
        source: "module adder_8bit(\n  input [7:0] a,\n  input [7:0] b,\n  input cin,\n  output [7:0] sum,\n  output cout\n);\nassign {cout, sum} = a + b + {7'd0, cin};\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("a", 8), PortSig::new("b", 8), PortSig::new("cin", 1)],
                vec![PortSig::new("sum", 8), PortSig::new("cout", 1)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (a, b, cin) = (s.input("a"), s.input("b"), s.input("cin"));
                let (sum, cout) = (s.output("sum"), s.output("cout"));
                move |io: &mut IoFrame<'_>| {
                    let v = io.get(a) + io.get(b) + io.get(cin);
                    io.set(sum, v);
                    io.set(cout, v >> 8);
                }
            }))
        },
        directed_vectors: || {
            // Weak: no vector produces a carry out.
            vec![
                tx(&[("a", 8, 1), ("b", 8, 2), ("cin", 1, 0)]),
                tx(&[("a", 8, 10), ("b", 8, 20), ("cin", 1, 0)]),
                tx(&[("a", 8, 7), ("b", 8, 8), ("cin", 1, 1)]),
                tx(&[("a", 8, 100), ("b", 8, 27), ("cin", 1, 0)]),
            ]
        },
    },
    Design {
        name: "adder_16bit",
        category: Category::Arithmetic,
        module_type: "adder",
        spec: "A combinational 16-bit adder built from two cascaded 8-bit \
               adders: `{cout, sum} = a + b + cin` over 16-bit operands.",
        source: "module adder_16bit(\n  input [15:0] a,\n  input [15:0] b,\n  input cin,\n  output [15:0] sum,\n  output cout\n);\nwire mid;\nadd8 lo(.x(a[7:0]), .y(b[7:0]), .ci(cin), .s(sum[7:0]), .co(mid));\nadd8 hi(.x(a[15:8]), .y(b[15:8]), .ci(mid), .s(sum[15:8]), .co(cout));\nendmodule\n\nmodule add8(\n  input [7:0] x,\n  input [7:0] y,\n  input ci,\n  output [7:0] s,\n  output co\n);\nassign {co, s} = x + y + {7'd0, ci};\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("a", 16), PortSig::new("b", 16), PortSig::new("cin", 1)],
                vec![PortSig::new("sum", 16), PortSig::new("cout", 1)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (a, b, cin) = (s.input("a"), s.input("b"), s.input("cin"));
                let (sum, cout) = (s.output("sum"), s.output("cout"));
                move |io: &mut IoFrame<'_>| {
                    let v = io.get(a) + io.get(b) + io.get(cin);
                    io.set(sum, v);
                    io.set(cout, v >> 16);
                }
            }))
        },
        directed_vectors: || {
            // Weak: stays in the low byte, cross-byte carry untested.
            vec![
                tx(&[("a", 16, 3), ("b", 16, 4), ("cin", 1, 0)]),
                tx(&[("a", 16, 50), ("b", 16, 60), ("cin", 1, 0)]),
                tx(&[("a", 16, 9), ("b", 16, 9), ("cin", 1, 1)]),
            ]
        },
    },
    Design {
        name: "sub_8bit",
        category: Category::Arithmetic,
        module_type: "adder",
        spec: "A combinational 8-bit subtractor with borrow: computes \
               `diff = a - b - bin` modulo 256 and raises `bout` when a \
               borrow occurs (a < b + bin).",
        source: "module sub_8bit(\n  input [7:0] a,\n  input [7:0] b,\n  input bin,\n  output [7:0] diff,\n  output bout\n);\nassign {bout, diff} = {1'b0, a} - {1'b0, b} - {8'd0, bin};\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("a", 8), PortSig::new("b", 8), PortSig::new("bin", 1)],
                vec![PortSig::new("diff", 8), PortSig::new("bout", 1)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (a, b, bin) = (s.input("a"), s.input("b"), s.input("bin"));
                let (diff, bout) = (s.output("diff"), s.output("bout"));
                move |io: &mut IoFrame<'_>| {
                    let raw = io.get(a) as i64 - io.get(b) as i64 - io.get(bin) as i64;
                    io.set(diff, (raw & 0xff) as u128);
                    io.set(bout, (raw < 0) as u128);
                }
            }))
        },
        directed_vectors: || {
            // Weak: a always exceeds b, borrow path untested.
            vec![
                tx(&[("a", 8, 10), ("b", 8, 3), ("bin", 1, 0)]),
                tx(&[("a", 8, 200), ("b", 8, 100), ("bin", 1, 0)]),
                tx(&[("a", 8, 50), ("b", 8, 49), ("bin", 1, 1)]),
            ]
        },
    },
    Design {
        name: "mul_8bit",
        category: Category::Arithmetic,
        module_type: "multiplier",
        spec: "A combinational 8×8 unsigned multiplier producing the full \
               16-bit product `p = a * b`.",
        source: "module mul_8bit(\n  input [7:0] a,\n  input [7:0] b,\n  output [15:0] p\n);\nassign p = a * b;\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("a", 8), PortSig::new("b", 8)],
                vec![PortSig::new("p", 16)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (a, b, p) = (s.input("a"), s.input("b"), s.output("p"));
                move |io: &mut IoFrame<'_>| {
                    let v = io.get(a) * io.get(b);
                    io.set(p, v);
                }
            }))
        },
        directed_vectors: || {
            // Weak: products stay below 256 (high byte never exercised).
            vec![
                tx(&[("a", 8, 3), ("b", 8, 5)]),
                tx(&[("a", 8, 12), ("b", 8, 10)]),
                tx(&[("a", 8, 1), ("b", 8, 255)]),
                tx(&[("a", 8, 0), ("b", 8, 77)]),
            ]
        },
    },
    Design {
        name: "mul_pipe_8bit",
        category: Category::Arithmetic,
        module_type: "multiplier",
        spec: "A two-stage pipelined 8×8 unsigned multiplier: the product \
               of the operands sampled at cycle N appears on `p` after \
               cycle N+2. Asynchronous active-low reset clears the \
               pipeline to zero.",
        source: "module mul_pipe_8bit(\n  input clk,\n  input rst_n,\n  input [7:0] a,\n  input [7:0] b,\n  output [15:0] p\n);\nreg [15:0] s1;\nreg [15:0] s2;\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n) begin\n    s1 <= 16'd0;\n    s2 <= 16'd0;\n  end else begin\n    s1 <= a * b;\n    s2 <= s1;\n  end\nend\nassign p = s2;\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("a", 8), PortSig::new("b", 8)],
                vec![PortSig::new("p", 16)],
            )
        },
        model: || Box::<MulPipe>::default(),
        directed_vectors: || {
            vec![
                tx(&[("a", 8, 2), ("b", 8, 3)]),
                tx(&[("a", 8, 4), ("b", 8, 5)]),
                tx(&[("a", 8, 10), ("b", 8, 10)]),
                tx(&[("a", 8, 0), ("b", 8, 9)]),
                tx(&[("a", 8, 7), ("b", 8, 6)]),
            ]
        },
    },
    Design {
        name: "div_8bit",
        category: Category::Arithmetic,
        module_type: "divider",
        spec: "A combinational 8-bit restoring divider: `q = a / b` and \
               `r = a % b` for unsigned operands. When `b` is zero, `q` is \
               8'hFF and `r` equals `a`.",
        source: "module div_8bit(\n  input [7:0] a,\n  input [7:0] b,\n  output reg [7:0] q,\n  output reg [7:0] r\n);\ninteger i;\nalways @(*) begin\n  q = 8'd0;\n  r = 8'd0;\n  if (b == 8'd0) begin\n    q = 8'hff;\n    r = a;\n  end else begin\n    for (i = 7; i >= 0; i = i - 1) begin\n      r = {r[6:0], a[i]};\n      if (r >= b) begin\n        r = r - b;\n        q[i] = 1'b1;\n      end\n    end\n  end\nend\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("a", 8), PortSig::new("b", 8)],
                vec![PortSig::new("q", 8), PortSig::new("r", 8)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (a, b) = (s.input("a"), s.input("b"));
                let (q, r) = (s.output("q"), s.output("r"));
                move |io: &mut IoFrame<'_>| {
                    let av = io.get(a);
                    let bv = io.get(b);
                    let (qv, rv) = match (av.checked_div(bv), av.checked_rem(bv)) {
                        (Some(qv), Some(rv)) => (qv, rv),
                        _ => (0xff, av),
                    };
                    io.set(q, qv);
                    io.set(r, rv);
                }
            }))
        },
        directed_vectors: || {
            // Weak: divisor never zero, quotient small.
            vec![
                tx(&[("a", 8, 10), ("b", 8, 3)]),
                tx(&[("a", 8, 100), ("b", 8, 10)]),
                tx(&[("a", 8, 7), ("b", 8, 7)]),
                tx(&[("a", 8, 1), ("b", 8, 2)]),
            ]
        },
    },
];

/// Golden model of `accu`.
#[derive(Default)]
struct Accu {
    q: u128,
    en: InSlot,
    clr: InSlot,
    d: InSlot,
    q_out: OutSlot,
}

impl RefModel for Accu {
    fn bind(&mut self, spec: &IoSpec) {
        self.en = spec.input("en");
        self.clr = spec.input("clr");
        self.d = spec.input("d");
        self.q_out = spec.output("q");
    }
    fn reset(&mut self) {
        self.q = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        if io.get(self.clr) == 1 {
            self.q = 0;
        } else if io.get(self.en) == 1 {
            self.q = (self.q + io.get(self.d)) & 0xff;
        }
        io.set(self.q_out, self.q);
    }
}

/// Golden model of `mul_pipe_8bit`.
#[derive(Default)]
struct MulPipe {
    s1: u128,
    s2: u128,
    a: InSlot,
    b: InSlot,
    p: OutSlot,
}

impl RefModel for MulPipe {
    fn bind(&mut self, spec: &IoSpec) {
        self.a = spec.input("a");
        self.b = spec.input("b");
        self.p = spec.output("p");
    }
    fn reset(&mut self) {
        self.s1 = 0;
        self.s2 = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        self.s2 = self.s1;
        self.s1 = (io.get(self.a) * io.get(self.b)) & 0xffff;
        io.set(self.p, self.s2);
    }
}

/// `Transaction` re-export used by sibling modules' vector builders.
pub(crate) type _Tx = Transaction;
