//! Memory designs: RAM, FIFO, LIFO stack, register file, ROM.

use crate::{tx, Category, Design};
use uvllm_uvm::{DutInterface, FnModel, InSlot, IoFrame, IoSpec, OutSlot, PortSig, RefModel};

/// The memory group (5 designs).
pub static DESIGNS: [Design; 5] = [
    Design {
        name: "ram_sync",
        category: Category::Memory,
        module_type: "memory",
        spec: "A 16×8 single-port RAM with synchronous write and \
               asynchronous (combinational) read: when `we` is high the \
               word at `addr` takes `din` on the rising clock edge; `dout` \
               continuously reflects the word at `addr`. Unwritten words \
               read as unknown (X).",
        source: "module ram_sync(\n  input clk,\n  input rst_n,\n  input we,\n  input [3:0] addr,\n  input [7:0] din,\n  output [7:0] dout\n);\nreg [7:0] mem [0:15];\nassign dout = mem[addr];\nalways @(posedge clk) begin\n  if (we)\n    mem[addr] <= din;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("we", 1), PortSig::new("addr", 4), PortSig::new("din", 8)],
                vec![PortSig::new("dout", 8)],
            )
        },
        model: || Box::<Ram>::default(),
        directed_vectors: || {
            // Weak: two addresses only, written before read.
            vec![
                tx(&[("we", 1, 1), ("addr", 4, 0), ("din", 8, 0x11)]),
                tx(&[("we", 1, 1), ("addr", 4, 1), ("din", 8, 0x22)]),
                tx(&[("we", 1, 0), ("addr", 4, 0), ("din", 8, 0)]),
                tx(&[("we", 1, 0), ("addr", 4, 1), ("din", 8, 0)]),
            ]
        },
    },
    Design {
        name: "fifo_sync",
        category: Category::Memory,
        module_type: "memory",
        spec: "A synchronous 8-deep, 8-bit FIFO. `push` enqueues `din` when \
               not full; `pop` dequeues when not empty; simultaneous \
               push+pop keeps the occupancy constant. `count` reports the \
               occupancy, `full`/`empty` flag the extremes, and `dout` \
               shows the word at the read pointer. Asynchronous active-low \
               reset empties the FIFO (pointer contents persist).",
        source: "module fifo_sync(\n  input clk,\n  input rst_n,\n  input push,\n  input pop,\n  input [7:0] din,\n  output [7:0] dout,\n  output full,\n  output empty,\n  output reg [3:0] count\n);\nreg [7:0] mem [0:7];\nreg [2:0] rptr;\nreg [2:0] wptr;\nassign full = (count == 4'd8);\nassign empty = (count == 4'd0);\nassign dout = mem[rptr];\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n) begin\n    rptr <= 3'd0;\n    wptr <= 3'd0;\n    count <= 4'd0;\n  end else begin\n    if (push && !full) begin\n      mem[wptr] <= din;\n      wptr <= wptr + 3'd1;\n    end\n    if (pop && !empty)\n      rptr <= rptr + 3'd1;\n    if ((push && !full) && !(pop && !empty))\n      count <= count + 4'd1;\n    else if (!(push && !full) && (pop && !empty))\n      count <= count - 4'd1;\n  end\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("push", 1), PortSig::new("pop", 1), PortSig::new("din", 8)],
                vec![
                    PortSig::new("dout", 8),
                    PortSig::new("full", 1),
                    PortSig::new("empty", 1),
                    PortSig::new("count", 4),
                ],
            )
        },
        model: || Box::<Fifo>::default(),
        directed_vectors: || {
            // Weak: shallow traffic — full never reached, pop-on-empty
            // never attempted after the first cycle.
            vec![
                tx(&[("push", 1, 1), ("pop", 1, 0), ("din", 8, 0xA1)]),
                tx(&[("push", 1, 1), ("pop", 1, 0), ("din", 8, 0xA2)]),
                tx(&[("push", 1, 0), ("pop", 1, 1), ("din", 8, 0)]),
                tx(&[("push", 1, 1), ("pop", 1, 1), ("din", 8, 0xA3)]),
                tx(&[("push", 1, 0), ("pop", 1, 1), ("din", 8, 0)]),
            ]
        },
    },
    Design {
        name: "lifo_stack",
        category: Category::Memory,
        module_type: "memory",
        spec: "A synchronous 8-deep, 8-bit LIFO stack. `push` stores `din` \
               at the stack pointer when not full; `pop` removes the top \
               when not empty (push wins if both are asserted). `dout` \
               shows the current top (0 when empty). Asynchronous \
               active-low reset empties the stack.",
        source: "module lifo_stack(\n  input clk,\n  input rst_n,\n  input push,\n  input pop,\n  input [7:0] din,\n  output [7:0] dout,\n  output full,\n  output empty\n);\nreg [7:0] mem [0:7];\nreg [3:0] sp;\nassign empty = (sp == 4'd0);\nassign full = (sp == 4'd8);\nassign dout = empty ? 8'd0 : mem[sp - 4'd1];\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    sp <= 4'd0;\n  else if (push && !full) begin\n    mem[sp] <= din;\n    sp <= sp + 4'd1;\n  end else if (pop && !empty)\n    sp <= sp - 4'd1;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("push", 1), PortSig::new("pop", 1), PortSig::new("din", 8)],
                vec![
                    PortSig::new("dout", 8),
                    PortSig::new("full", 1),
                    PortSig::new("empty", 1),
                ],
            )
        },
        model: || Box::<Lifo>::default(),
        directed_vectors: || {
            // Weak: two pushes, one pop; overflow/underflow untested.
            vec![
                tx(&[("push", 1, 1), ("pop", 1, 0), ("din", 8, 5)]),
                tx(&[("push", 1, 1), ("pop", 1, 0), ("din", 8, 6)]),
                tx(&[("push", 1, 0), ("pop", 1, 1), ("din", 8, 0)]),
                tx(&[("push", 1, 0), ("pop", 1, 0), ("din", 8, 0)]),
            ]
        },
    },
    Design {
        name: "regfile",
        category: Category::Memory,
        module_type: "memory",
        spec: "A 4-entry, 8-bit register file with one synchronous write \
               port (`we`, `waddr`, `wdata`) and one combinational read \
               port (`raddr` → `rdata`). Asynchronous active-low reset \
               clears all four registers to zero.",
        source: "module regfile(\n  input clk,\n  input rst_n,\n  input we,\n  input [1:0] waddr,\n  input [7:0] wdata,\n  input [1:0] raddr,\n  output [7:0] rdata\n);\nreg [7:0] regs [0:3];\ninteger i;\nassign rdata = regs[raddr];\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n) begin\n    for (i = 0; i < 4; i = i + 1)\n      regs[i] <= 8'd0;\n  end else if (we)\n    regs[waddr] <= wdata;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![
                    PortSig::new("we", 1),
                    PortSig::new("waddr", 2),
                    PortSig::new("wdata", 8),
                    PortSig::new("raddr", 2),
                ],
                vec![PortSig::new("rdata", 8)],
            )
        },
        model: || Box::<RegFile>::default(),
        directed_vectors: || {
            // Weak: registers 0 and 1 only.
            vec![
                tx(&[("we", 1, 1), ("waddr", 2, 0), ("wdata", 8, 0x42), ("raddr", 2, 0)]),
                tx(&[("we", 1, 1), ("waddr", 2, 1), ("wdata", 8, 0x43), ("raddr", 2, 0)]),
                tx(&[("we", 1, 0), ("waddr", 2, 0), ("wdata", 8, 0), ("raddr", 2, 1)]),
                tx(&[("we", 1, 0), ("waddr", 2, 0), ("wdata", 8, 0), ("raddr", 2, 0)]),
            ]
        },
    },
    Design {
        name: "rom_16x8",
        category: Category::Memory,
        module_type: "memory",
        spec: "A 16×8 combinational ROM holding the squares of the address \
               (mod 256): `data = (addr * addr) & 8'hFF`, implemented as a \
               full case table.",
        source: "module rom_16x8(\n  input [3:0] addr,\n  output reg [7:0] data\n);\nalways @(*) begin\n  case (addr)\n    4'd0: data = 8'd0;\n    4'd1: data = 8'd1;\n    4'd2: data = 8'd4;\n    4'd3: data = 8'd9;\n    4'd4: data = 8'd16;\n    4'd5: data = 8'd25;\n    4'd6: data = 8'd36;\n    4'd7: data = 8'd49;\n    4'd8: data = 8'd64;\n    4'd9: data = 8'd81;\n    4'd10: data = 8'd100;\n    4'd11: data = 8'd121;\n    4'd12: data = 8'd144;\n    4'd13: data = 8'd169;\n    4'd14: data = 8'd196;\n    default: data = 8'd225;\n  endcase\nend\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("addr", 4)],
                vec![PortSig::new("data", 8)],
            )
        },
        model: || {
            Box::new(FnModel::new(|s: &IoSpec| {
                let (addr, data) = (s.input("addr"), s.output("data"));
                move |io: &mut IoFrame<'_>| {
                    let a = io.get(addr);
                    io.set(data, (a * a) & 0xff);
                }
            }))
        },
        directed_vectors: || {
            // Weak: low addresses only.
            vec![
                tx(&[("addr", 4, 0)]),
                tx(&[("addr", 4, 1)]),
                tx(&[("addr", 4, 2)]),
                tx(&[("addr", 4, 3)]),
            ]
        },
    },
];

#[derive(Default)]
struct Ram {
    mem: [Option<u128>; 16],
    we: InSlot,
    addr: InSlot,
    din: InSlot,
    dout: OutSlot,
}

impl RefModel for Ram {
    fn bind(&mut self, spec: &IoSpec) {
        self.we = spec.input("we");
        self.addr = spec.input("addr");
        self.din = spec.input("din");
        self.dout = spec.output("dout");
    }
    fn reset(&mut self) {
        self.mem = [None; 16];
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        let addr = io.get(self.addr) as usize;
        if io.get(self.we) == 1 {
            self.mem[addr] = Some(io.get(self.din));
        }
        match self.mem[addr] {
            Some(v) => io.set(self.dout, v),
            None => io.set_x(self.dout),
        }
    }
}

#[derive(Default)]
struct Fifo {
    mem: [Option<u128>; 8],
    rptr: usize,
    wptr: usize,
    count: usize,
    push: InSlot,
    pop: InSlot,
    din: InSlot,
    dout: OutSlot,
    full: OutSlot,
    empty: OutSlot,
    count_out: OutSlot,
}

impl RefModel for Fifo {
    fn bind(&mut self, spec: &IoSpec) {
        self.push = spec.input("push");
        self.pop = spec.input("pop");
        self.din = spec.input("din");
        self.dout = spec.output("dout");
        self.full = spec.output("full");
        self.empty = spec.output("empty");
        self.count_out = spec.output("count");
    }
    fn reset(&mut self) {
        // Pointers clear; memory contents persist, as in the RTL.
        self.rptr = 0;
        self.wptr = 0;
        self.count = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        let do_push = io.get(self.push) == 1 && self.count < 8;
        let do_pop = io.get(self.pop) == 1 && self.count > 0;
        if do_push {
            self.mem[self.wptr] = Some(io.get(self.din));
            self.wptr = (self.wptr + 1) % 8;
        }
        if do_pop {
            self.rptr = (self.rptr + 1) % 8;
        }
        match (do_push, do_pop) {
            (true, false) => self.count += 1,
            (false, true) => self.count -= 1,
            _ => {}
        }
        match self.mem[self.rptr] {
            Some(v) => io.set(self.dout, v),
            None => io.set_x(self.dout),
        }
        io.set(self.full, (self.count == 8) as u128);
        io.set(self.empty, (self.count == 0) as u128);
        io.set(self.count_out, self.count as u128);
    }
}

#[derive(Default)]
struct Lifo {
    mem: [u128; 8],
    sp: usize,
    push: InSlot,
    pop: InSlot,
    din: InSlot,
    dout: OutSlot,
    full: OutSlot,
    empty: OutSlot,
}

impl RefModel for Lifo {
    fn bind(&mut self, spec: &IoSpec) {
        self.push = spec.input("push");
        self.pop = spec.input("pop");
        self.din = spec.input("din");
        self.dout = spec.output("dout");
        self.full = spec.output("full");
        self.empty = spec.output("empty");
    }
    fn reset(&mut self) {
        self.sp = 0;
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        let full = self.sp == 8;
        let empty = self.sp == 0;
        if io.get(self.push) == 1 && !full {
            self.mem[self.sp] = io.get(self.din);
            self.sp += 1;
        } else if io.get(self.pop) == 1 && !empty {
            self.sp -= 1;
        }
        let dout = if self.sp == 0 { 0 } else { self.mem[self.sp - 1] };
        io.set(self.dout, dout);
        io.set(self.full, (self.sp == 8) as u128);
        io.set(self.empty, (self.sp == 0) as u128);
    }
}

#[derive(Default)]
struct RegFile {
    regs: [u128; 4],
    we: InSlot,
    waddr: InSlot,
    wdata: InSlot,
    raddr: InSlot,
    rdata: OutSlot,
}

impl RefModel for RegFile {
    fn bind(&mut self, spec: &IoSpec) {
        self.we = spec.input("we");
        self.waddr = spec.input("waddr");
        self.wdata = spec.input("wdata");
        self.raddr = spec.input("raddr");
        self.rdata = spec.output("rdata");
    }
    fn reset(&mut self) {
        self.regs = [0; 4];
    }
    fn step(&mut self, io: &mut IoFrame<'_>) {
        if io.get(self.we) == 1 {
            self.regs[io.get(self.waddr) as usize] = io.get(self.wdata);
        }
        io.set(self.rdata, self.regs[io.get(self.raddr) as usize]);
    }
}
