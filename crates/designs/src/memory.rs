//! Memory designs: RAM, FIFO, LIFO stack, register file, ROM.

use crate::{iv, ov, tx, Category, Design};
use std::collections::BTreeMap;
use uvllm_sim::Logic;
use uvllm_uvm::{DutInterface, PortSig, RefModel};

/// The memory group (5 designs).
pub static DESIGNS: [Design; 5] = [
    Design {
        name: "ram_sync",
        category: Category::Memory,
        module_type: "memory",
        spec: "A 16×8 single-port RAM with synchronous write and \
               asynchronous (combinational) read: when `we` is high the \
               word at `addr` takes `din` on the rising clock edge; `dout` \
               continuously reflects the word at `addr`. Unwritten words \
               read as unknown (X).",
        source: "module ram_sync(\n  input clk,\n  input rst_n,\n  input we,\n  input [3:0] addr,\n  input [7:0] din,\n  output [7:0] dout\n);\nreg [7:0] mem [0:15];\nassign dout = mem[addr];\nalways @(posedge clk) begin\n  if (we)\n    mem[addr] <= din;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("we", 1), PortSig::new("addr", 4), PortSig::new("din", 8)],
                vec![PortSig::new("dout", 8)],
            )
        },
        model: || Box::new(Ram { mem: [None; 16] }),
        directed_vectors: || {
            // Weak: two addresses only, written before read.
            vec![
                tx(&[("we", 1, 1), ("addr", 4, 0), ("din", 8, 0x11)]),
                tx(&[("we", 1, 1), ("addr", 4, 1), ("din", 8, 0x22)]),
                tx(&[("we", 1, 0), ("addr", 4, 0), ("din", 8, 0)]),
                tx(&[("we", 1, 0), ("addr", 4, 1), ("din", 8, 0)]),
            ]
        },
    },
    Design {
        name: "fifo_sync",
        category: Category::Memory,
        module_type: "memory",
        spec: "A synchronous 8-deep, 8-bit FIFO. `push` enqueues `din` when \
               not full; `pop` dequeues when not empty; simultaneous \
               push+pop keeps the occupancy constant. `count` reports the \
               occupancy, `full`/`empty` flag the extremes, and `dout` \
               shows the word at the read pointer. Asynchronous active-low \
               reset empties the FIFO (pointer contents persist).",
        source: "module fifo_sync(\n  input clk,\n  input rst_n,\n  input push,\n  input pop,\n  input [7:0] din,\n  output [7:0] dout,\n  output full,\n  output empty,\n  output reg [3:0] count\n);\nreg [7:0] mem [0:7];\nreg [2:0] rptr;\nreg [2:0] wptr;\nassign full = (count == 4'd8);\nassign empty = (count == 4'd0);\nassign dout = mem[rptr];\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n) begin\n    rptr <= 3'd0;\n    wptr <= 3'd0;\n    count <= 4'd0;\n  end else begin\n    if (push && !full) begin\n      mem[wptr] <= din;\n      wptr <= wptr + 3'd1;\n    end\n    if (pop && !empty)\n      rptr <= rptr + 3'd1;\n    if ((push && !full) && !(pop && !empty))\n      count <= count + 4'd1;\n    else if (!(push && !full) && (pop && !empty))\n      count <= count - 4'd1;\n  end\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("push", 1), PortSig::new("pop", 1), PortSig::new("din", 8)],
                vec![
                    PortSig::new("dout", 8),
                    PortSig::new("full", 1),
                    PortSig::new("empty", 1),
                    PortSig::new("count", 4),
                ],
            )
        },
        model: || Box::new(Fifo { mem: [None; 8], rptr: 0, wptr: 0, count: 0 }),
        directed_vectors: || {
            // Weak: shallow traffic — full never reached, pop-on-empty
            // never attempted after the first cycle.
            vec![
                tx(&[("push", 1, 1), ("pop", 1, 0), ("din", 8, 0xA1)]),
                tx(&[("push", 1, 1), ("pop", 1, 0), ("din", 8, 0xA2)]),
                tx(&[("push", 1, 0), ("pop", 1, 1), ("din", 8, 0)]),
                tx(&[("push", 1, 1), ("pop", 1, 1), ("din", 8, 0xA3)]),
                tx(&[("push", 1, 0), ("pop", 1, 1), ("din", 8, 0)]),
            ]
        },
    },
    Design {
        name: "lifo_stack",
        category: Category::Memory,
        module_type: "memory",
        spec: "A synchronous 8-deep, 8-bit LIFO stack. `push` stores `din` \
               at the stack pointer when not full; `pop` removes the top \
               when not empty (push wins if both are asserted). `dout` \
               shows the current top (0 when empty). Asynchronous \
               active-low reset empties the stack.",
        source: "module lifo_stack(\n  input clk,\n  input rst_n,\n  input push,\n  input pop,\n  input [7:0] din,\n  output [7:0] dout,\n  output full,\n  output empty\n);\nreg [7:0] mem [0:7];\nreg [3:0] sp;\nassign empty = (sp == 4'd0);\nassign full = (sp == 4'd8);\nassign dout = empty ? 8'd0 : mem[sp - 4'd1];\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n)\n    sp <= 4'd0;\n  else if (push && !full) begin\n    mem[sp] <= din;\n    sp <= sp + 4'd1;\n  end else if (pop && !empty)\n    sp <= sp - 4'd1;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![PortSig::new("push", 1), PortSig::new("pop", 1), PortSig::new("din", 8)],
                vec![
                    PortSig::new("dout", 8),
                    PortSig::new("full", 1),
                    PortSig::new("empty", 1),
                ],
            )
        },
        model: || Box::new(Lifo { mem: [0; 8], sp: 0 }),
        directed_vectors: || {
            // Weak: two pushes, one pop; overflow/underflow untested.
            vec![
                tx(&[("push", 1, 1), ("pop", 1, 0), ("din", 8, 5)]),
                tx(&[("push", 1, 1), ("pop", 1, 0), ("din", 8, 6)]),
                tx(&[("push", 1, 0), ("pop", 1, 1), ("din", 8, 0)]),
                tx(&[("push", 1, 0), ("pop", 1, 0), ("din", 8, 0)]),
            ]
        },
    },
    Design {
        name: "regfile",
        category: Category::Memory,
        module_type: "memory",
        spec: "A 4-entry, 8-bit register file with one synchronous write \
               port (`we`, `waddr`, `wdata`) and one combinational read \
               port (`raddr` → `rdata`). Asynchronous active-low reset \
               clears all four registers to zero.",
        source: "module regfile(\n  input clk,\n  input rst_n,\n  input we,\n  input [1:0] waddr,\n  input [7:0] wdata,\n  input [1:0] raddr,\n  output [7:0] rdata\n);\nreg [7:0] regs [0:3];\ninteger i;\nassign rdata = regs[raddr];\nalways @(posedge clk or negedge rst_n) begin\n  if (!rst_n) begin\n    for (i = 0; i < 4; i = i + 1)\n      regs[i] <= 8'd0;\n  end else if (we)\n    regs[waddr] <= wdata;\nend\nendmodule\n",
        iface: || {
            DutInterface::clocked(
                vec![
                    PortSig::new("we", 1),
                    PortSig::new("waddr", 2),
                    PortSig::new("wdata", 8),
                    PortSig::new("raddr", 2),
                ],
                vec![PortSig::new("rdata", 8)],
            )
        },
        model: || Box::new(RegFile { regs: [0; 4] }),
        directed_vectors: || {
            // Weak: registers 0 and 1 only.
            vec![
                tx(&[("we", 1, 1), ("waddr", 2, 0), ("wdata", 8, 0x42), ("raddr", 2, 0)]),
                tx(&[("we", 1, 1), ("waddr", 2, 1), ("wdata", 8, 0x43), ("raddr", 2, 0)]),
                tx(&[("we", 1, 0), ("waddr", 2, 0), ("wdata", 8, 0), ("raddr", 2, 1)]),
                tx(&[("we", 1, 0), ("waddr", 2, 0), ("wdata", 8, 0), ("raddr", 2, 0)]),
            ]
        },
    },
    Design {
        name: "rom_16x8",
        category: Category::Memory,
        module_type: "memory",
        spec: "A 16×8 combinational ROM holding the squares of the address \
               (mod 256): `data = (addr * addr) & 8'hFF`, implemented as a \
               full case table.",
        source: "module rom_16x8(\n  input [3:0] addr,\n  output reg [7:0] data\n);\nalways @(*) begin\n  case (addr)\n    4'd0: data = 8'd0;\n    4'd1: data = 8'd1;\n    4'd2: data = 8'd4;\n    4'd3: data = 8'd9;\n    4'd4: data = 8'd16;\n    4'd5: data = 8'd25;\n    4'd6: data = 8'd36;\n    4'd7: data = 8'd49;\n    4'd8: data = 8'd64;\n    4'd9: data = 8'd81;\n    4'd10: data = 8'd100;\n    4'd11: data = 8'd121;\n    4'd12: data = 8'd144;\n    4'd13: data = 8'd169;\n    4'd14: data = 8'd196;\n    default: data = 8'd225;\n  endcase\nend\nendmodule\n",
        iface: || {
            DutInterface::combinational(
                vec![PortSig::new("addr", 4)],
                vec![PortSig::new("data", 8)],
            )
        },
        model: || {
            Box::new(uvllm_uvm::FnModel(|ins: &BTreeMap<String, Logic>| {
                let a = iv(ins, "addr", 4);
                let mut o = BTreeMap::new();
                ov(&mut o, "data", 8, (a * a) & 0xff);
                o
            }))
        },
        directed_vectors: || {
            // Weak: low addresses only.
            vec![
                tx(&[("addr", 4, 0)]),
                tx(&[("addr", 4, 1)]),
                tx(&[("addr", 4, 2)]),
                tx(&[("addr", 4, 3)]),
            ]
        },
    },
];

struct Ram {
    mem: [Option<u128>; 16],
}

impl RefModel for Ram {
    fn reset(&mut self) {
        self.mem = [None; 16];
    }
    fn step(&mut self, ins: &BTreeMap<String, Logic>) -> BTreeMap<String, Logic> {
        let addr = iv(ins, "addr", 4) as usize;
        if iv(ins, "we", 1) == 1 {
            self.mem[addr] = Some(iv(ins, "din", 8));
        }
        let mut o = BTreeMap::new();
        match self.mem[addr] {
            Some(v) => ov(&mut o, "dout", 8, v),
            None => {
                o.insert("dout".to_string(), Logic::xs(8));
            }
        }
        o
    }
}

struct Fifo {
    mem: [Option<u128>; 8],
    rptr: usize,
    wptr: usize,
    count: usize,
}

impl RefModel for Fifo {
    fn reset(&mut self) {
        // Pointers clear; memory contents persist, as in the RTL.
        self.rptr = 0;
        self.wptr = 0;
        self.count = 0;
    }
    fn step(&mut self, ins: &BTreeMap<String, Logic>) -> BTreeMap<String, Logic> {
        let do_push = iv(ins, "push", 1) == 1 && self.count < 8;
        let do_pop = iv(ins, "pop", 1) == 1 && self.count > 0;
        if do_push {
            self.mem[self.wptr] = Some(iv(ins, "din", 8));
            self.wptr = (self.wptr + 1) % 8;
        }
        if do_pop {
            self.rptr = (self.rptr + 1) % 8;
        }
        match (do_push, do_pop) {
            (true, false) => self.count += 1,
            (false, true) => self.count -= 1,
            _ => {}
        }
        let mut o = BTreeMap::new();
        match self.mem[self.rptr] {
            Some(v) => ov(&mut o, "dout", 8, v),
            None => {
                o.insert("dout".to_string(), Logic::xs(8));
            }
        }
        ov(&mut o, "full", 1, (self.count == 8) as u128);
        ov(&mut o, "empty", 1, (self.count == 0) as u128);
        ov(&mut o, "count", 4, self.count as u128);
        o
    }
}

struct Lifo {
    mem: [u128; 8],
    sp: usize,
}

impl RefModel for Lifo {
    fn reset(&mut self) {
        self.sp = 0;
    }
    fn step(&mut self, ins: &BTreeMap<String, Logic>) -> BTreeMap<String, Logic> {
        let full = self.sp == 8;
        let empty = self.sp == 0;
        if iv(ins, "push", 1) == 1 && !full {
            self.mem[self.sp] = iv(ins, "din", 8);
            self.sp += 1;
        } else if iv(ins, "pop", 1) == 1 && !empty {
            self.sp -= 1;
        }
        let mut o = BTreeMap::new();
        let dout = if self.sp == 0 { 0 } else { self.mem[self.sp - 1] };
        ov(&mut o, "dout", 8, dout);
        ov(&mut o, "full", 1, (self.sp == 8) as u128);
        ov(&mut o, "empty", 1, (self.sp == 0) as u128);
        o
    }
}

struct RegFile {
    regs: [u128; 4],
}

impl RefModel for RegFile {
    fn reset(&mut self) {
        self.regs = [0; 4];
    }
    fn step(&mut self, ins: &BTreeMap<String, Logic>) -> BTreeMap<String, Logic> {
        if iv(ins, "we", 1) == 1 {
            self.regs[iv(ins, "waddr", 2) as usize] = iv(ins, "wdata", 8);
        }
        let mut o = BTreeMap::new();
        ov(&mut o, "rdata", 8, self.regs[iv(ins, "raddr", 2) as usize]);
        o
    }
}
