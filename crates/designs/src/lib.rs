//! # uvllm-designs
//!
//! The benchmark design suite: 27 Verilog modules across the four
//! groups of the paper's Table II (Arithmetic, Control, Memory,
//! Miscellaneous) and ten representative module types (adders, counters,
//! FSMs, memories, encoders, shifters, …). Each [`Design`] bundles:
//!
//! * the Verilog source (written in the simulator's supported subset),
//! * a natural-language specification (prompt material),
//! * the pin-level [`DutInterface`],
//! * an executable golden [`RefModel`] (the paper's LLM-generated
//!   C/C++ reference models, substituted per DESIGN.md), and
//! * a deliberately *weak* directed vector set — the "finite test
//!   cases" style of testbench the paper criticises; baselines iterate
//!   against it and the evaluation's Hit Rate is measured on it.
//!
//! Every design is differentially verified against its golden model in
//! this crate's tests, so the benchmark itself is trustworthy.
//!
//! ## Example
//!
//! ```rust
//! use uvllm_designs::{all, by_name, Category};
//!
//! assert_eq!(all().len(), 27);
//! let d = by_name("adder_8bit").expect("catalogued");
//! assert_eq!(d.category, Category::Arithmetic);
//! assert!(d.source.contains("module adder_8bit"));
//! ```

pub mod arithmetic;
pub mod control;
pub mod memory;
pub mod misc;

use std::fmt;
use uvllm_sim::Logic;
use uvllm_uvm::{DutInterface, RefModel, Transaction};

/// Module grouping used throughout the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    Arithmetic,
    Control,
    Memory,
    Miscellaneous,
}

impl Category {
    /// All groups in Table II order.
    pub const ALL: [Category; 4] =
        [Category::Arithmetic, Category::Control, Category::Memory, Category::Miscellaneous];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Arithmetic => "Arithmetic",
            Category::Control => "Control",
            Category::Memory => "Memory",
            Category::Miscellaneous => "Miscellaneous",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One benchmark design.
pub struct Design {
    /// Module (and catalog) name.
    pub name: &'static str,
    pub category: Category,
    /// Representative module type (one of the ten in Result 3).
    pub module_type: &'static str,
    /// Natural-language specification given to repair agents.
    pub spec: &'static str,
    /// Verilog source.
    pub source: &'static str,
    /// Pin-level interface builder.
    pub iface: fn() -> DutInterface,
    /// Golden reference model builder.
    pub model: fn() -> Box<dyn RefModel>,
    /// The weak directed public test vectors (`T_pub`).
    pub directed_vectors: fn() -> Vec<Transaction>,
}

impl fmt::Debug for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Design")
            .field("name", &self.name)
            .field("category", &self.category)
            .field("module_type", &self.module_type)
            .finish()
    }
}

/// The full 27-design catalog, grouped by category.
pub fn all() -> Vec<&'static Design> {
    let mut v: Vec<&'static Design> = Vec::with_capacity(27);
    v.extend(arithmetic::DESIGNS.iter());
    v.extend(control::DESIGNS.iter());
    v.extend(memory::DESIGNS.iter());
    v.extend(misc::DESIGNS.iter());
    v
}

/// Looks a design up by name.
pub fn by_name(name: &str) -> Option<&'static Design> {
    all().into_iter().find(|d| d.name == name)
}

/// Designs in one category.
pub fn by_category(category: Category) -> Vec<&'static Design> {
    all().into_iter().filter(|d| d.category == category).collect()
}

// ----------------------------------------------------------------------
// Shared helpers for golden models and vectors
// ----------------------------------------------------------------------
//
// Per-port value access lives in `uvllm_uvm`'s slot-handle API now
// (`IoSpec::input`/`output` + `IoFrame::get`/`set`): models resolve
// their slots once in `RefModel::bind` and the per-cycle step reads and
// writes index-addressed buffers — the crate-local `iv`/`ov` map
// helpers (and their `in_val`/`out_val` twins in `uvllm_uvm`) are gone
// with the map-based exchange they wrapped.

/// Builds a transaction from `(name, width, value)` triples.
pub fn tx(pairs: &[(&str, u32, u128)]) -> Transaction {
    let mut t = Transaction::new();
    for (n, w, v) in pairs {
        t.values.insert((*n).to_string(), Logic::from_u128(*w, *v));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvllm_uvm::{CornerSequence, DirectedSequence, Environment, RandomSequence, Sequence};

    /// Every design must be behaviourally equivalent to its golden model
    /// under substantial random + corner + directed stimulus. This is
    /// the trust anchor for the whole benchmark.
    #[test]
    fn all_designs_match_their_golden_models() {
        for d in all() {
            let iface = (d.iface)();
            let seqs: Vec<Box<dyn Sequence>> = vec![
                Box::new(DirectedSequence::new("directed", (d.directed_vectors)())),
                Box::new(RandomSequence::new(&iface.inputs, 300, 0xD15E_u64)),
                Box::new(CornerSequence::new(&iface.inputs)),
            ];
            let env = Environment::from_source(d.source, d.name, iface, (d.model)(), seqs)
                .unwrap_or_else(|e| panic!("{}: env construction failed: {e}", d.name));
            let summary = env.run();
            assert!(
                summary.all_passed(),
                "{}: {} mismatches, pass rate {:.3}\nfirst mismatches: {:?}\nlog tail:\n{}",
                d.name,
                summary.mismatches.len(),
                summary.pass_rate,
                &summary.mismatches[..summary.mismatches.len().min(3)],
                summary.log.render().lines().rev().take(5).collect::<Vec<_>>().join("\n"),
            );
        }
    }

    #[test]
    fn catalog_shape_matches_paper() {
        assert_eq!(all().len(), 27, "the paper evaluates 27 modules");
        assert_eq!(by_category(Category::Arithmetic).len(), 7);
        assert_eq!(by_category(Category::Control).len(), 6);
        assert_eq!(by_category(Category::Memory).len(), 5);
        assert_eq!(by_category(Category::Miscellaneous).len(), 9);
        // Ten representative module types.
        let mut types: Vec<_> = all().iter().map(|d| d.module_type).collect();
        types.sort();
        types.dedup();
        assert_eq!(types.len(), 10, "types: {types:?}");
    }

    #[test]
    fn names_are_unique_and_sources_parse() {
        let mut names: Vec<_> = all().iter().map(|d| d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 27);
        for d in all() {
            let file = uvllm_verilog::parse(d.source)
                .unwrap_or_else(|e| panic!("{}: parse failed: {e}", d.name));
            assert!(file.module(d.name).is_some(), "{}: top module name mismatch", d.name);
            assert!(!d.spec.is_empty());
        }
    }

    #[test]
    fn directed_vectors_are_weak_but_nonempty() {
        for d in all() {
            let v = (d.directed_vectors)();
            assert!(!v.is_empty(), "{}: needs directed vectors", d.name);
            assert!(v.len() <= 16, "{}: directed set should stay intentionally small", d.name);
        }
    }

    #[test]
    fn designs_lint_clean() {
        for d in all() {
            let report = uvllm_lint::lint(d.source);
            assert!(report.errors().is_empty(), "{}: lint errors: {:?}", d.name, report.errors());
            assert!(
                report.fixable_warnings().is_empty(),
                "{}: fixable warnings present: {}",
                d.name,
                report.render(d.source)
            );
        }
    }
}
