//! Differential equivalence suite: the event-driven and the compiled
//! levelized kernels must be **waveform-identical** on every benchmark
//! design under seeded random stimulus.
//!
//! Every design is driven through the same reset protocol and hundreds
//! of random input vectors on both kernels in lockstep; after every
//! settle, *every* signal — internal nets, registers and each memory
//! word, not just ports — is compared, and the recorded waveforms must
//! render to byte-identical VCD. This is the contract that lets the
//! campaign engine treat the backend as a pure speed knob.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use uvllm_designs::all;
use uvllm_sim::{elaborate, AnySim, Design, Logic, SignalId, SimBackend, SimControl, Waveform};
use uvllm_uvm::DutInterface;

/// Cycles of random stimulus per (design, seed) pair.
const CYCLES: usize = 150;
/// Stimulus seeds (distinct from the FR campaign seeds on purpose).
const SEEDS: [u64; 2] = [0xD1FF, 0x5EED];

fn elaborated(d: &uvllm_designs::Design) -> Arc<Design> {
    let file = uvllm_verilog::parse(d.source).unwrap();
    Arc::new(elaborate(&file, d.name).unwrap())
}

fn wide(rng: &mut StdRng) -> u128 {
    ((rng.random::<u64>() as u128) << 64) | rng.random::<u64>() as u128
}

/// Pokes both kernels and asserts complete state agreement afterwards.
fn poke_both(name: &str, v: Logic, ev: &mut AnySim, cp: &mut AnySim, ctx: &str) {
    ev.poke_by_name(name, v).unwrap_or_else(|e| panic!("{ctx}: event poke {name}: {e}"));
    cp.poke_by_name(name, v).unwrap_or_else(|e| panic!("{ctx}: compiled poke {name}: {e}"));
    assert_state_identical(ev, cp, ctx);
}

/// Compares every word of every signal between the two kernels.
fn assert_state_identical(ev: &AnySim, cp: &AnySim, ctx: &str) {
    for (i, info) in ev.design().signals().iter().enumerate() {
        let id = SignalId(i as u32);
        for word in 0..info.words as u64 {
            let a = ev.peek_word(id, word);
            let b = cp.peek_word(id, word);
            assert_eq!(a, b, "{ctx}: signal '{}' word {word}: event={a} compiled={b}", info.name);
        }
    }
}

/// Drives one design on both kernels with identical stimulus, capturing
/// and comparing waveforms cycle by cycle.
fn drive_differentially(d: &uvllm_designs::Design, seed: u64) {
    let design = elaborated(d);
    let iface: DutInterface = (d.iface)();
    let mut ev = AnySim::new(&design, SimBackend::EventDriven).unwrap();
    let mut cp = AnySim::new(&design, SimBackend::Compiled).unwrap();
    let mut wave_e = Waveform::new(&ev);
    let mut wave_c = Waveform::new(&cp);
    let ctx = format!("{}#{seed:x}", d.name);
    assert_state_identical(&ev, &cp, &ctx);

    let mut rng = StdRng::seed_from_u64(seed);

    // Reset protocol, mirroring the UVM environment's reset phase.
    for p in &iface.inputs {
        poke_both(&p.name, Logic::zeros(p.width), &mut ev, &mut cp, &ctx);
    }
    if let Some(reset) = &iface.reset {
        let assert_v = Logic::bit(!reset.active_low);
        let deassert_v = Logic::bit(reset.active_low);
        poke_both(&reset.name, assert_v, &mut ev, &mut cp, &ctx);
        if let Some(clk) = &iface.clock {
            poke_both(clk, Logic::bit(false), &mut ev, &mut cp, &ctx);
            for _ in 0..2 {
                poke_both(clk, Logic::bit(true), &mut ev, &mut cp, &ctx);
                poke_both(clk, Logic::bit(false), &mut ev, &mut cp, &ctx);
            }
        }
        poke_both(&reset.name, deassert_v, &mut ev, &mut cp, &ctx);
    } else if let Some(clk) = &iface.clock {
        poke_both(clk, Logic::bit(false), &mut ev, &mut cp, &ctx);
    }

    for cycle in 0..CYCLES {
        for p in &iface.inputs {
            let v = Logic::from_u128(p.width, wide(&mut rng));
            poke_both(&p.name, v, &mut ev, &mut cp, &ctx);
        }
        if let Some(clk) = &iface.clock {
            poke_both(clk, Logic::bit(true), &mut ev, &mut cp, &ctx);
        }
        ev.settle().unwrap();
        cp.settle().unwrap();
        let t = cycle as u64 * 10;
        ev.set_time(t);
        cp.set_time(t);
        wave_e.capture(&ev);
        wave_c.capture(&cp);
        assert_state_identical(&ev, &cp, &format!("{ctx} cycle {cycle}"));
        if let Some(clk) = &iface.clock {
            poke_both(clk, Logic::bit(false), &mut ev, &mut cp, &ctx);
        }
    }

    // The recorded waveforms render to byte-identical VCD.
    assert_eq!(wave_e.len(), CYCLES);
    assert_eq!(wave_e.to_vcd(d.name), wave_c.to_vcd(d.name), "{ctx}: VCD diverged");
}

/// The headline acceptance test: all 27 designs, every seed,
/// waveform-identical kernels.
#[test]
fn kernels_are_waveform_identical_on_all_designs() {
    for d in all() {
        for seed in SEEDS {
            drive_differentially(d, seed ^ fnv(d.name));
        }
    }
}

/// Per-design stimulus seeds stay stable across catalog reordering.
fn fnv(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Differential pin-down for the event kernel's precompiled process
/// programs: every lowering shape — nested concat targets, constant
/// part selects, dynamic bit and array-word writes, case dispatch with
/// a default arm, if/else chains, mixed blocking/non-blocking regions —
/// driven on both kernels in lockstep. Because the compiled kernel is
/// untouched by the program rework, agreement here pins the event
/// kernel's waveforms to their pre-refactor behaviour.
#[test]
fn program_lowering_corners_match_across_kernels() {
    const STRESS: &str = "module stress(input clk, input rst_n, input [3:0] idx,\n\
         input [7:0] d, output reg [7:0] a, output reg [7:0] b, output reg c,\n\
         output reg [3:0] lo, output reg [3:0] hi, output [8:0] s);\n\
         reg [7:0] mem [0:7];\n\
         assign s = a + b;\n\
         always @(*) begin\n\
         {c, {hi, lo}} = {1'b0, d} + 9'd3;\n\
         end\n\
         always @(posedge clk or negedge rst_n) begin\n\
         if (!rst_n) begin\na <= 8'd0;\nb <= 8'd0;\nend\n\
         else begin\n\
         case (idx[1:0])\n\
         2'b00: a <= a + 8'd1;\n\
         2'b01: begin\na[3:0] <= d[7:4];\nb[idx[2]] <= d[0];\nend\n\
         2'b10: mem[idx[2:0]] <= d;\n\
         default: b <= mem[idx[2:0]] ^ a;\n\
         endcase\n\
         end\nend\nendmodule\n";
    let file = uvllm_verilog::parse(STRESS).unwrap();
    let design = Arc::new(uvllm_sim::elaborate(&file, "stress").unwrap());
    let mut ev = AnySim::new(&design, SimBackend::EventDriven).unwrap();
    let mut cp = AnySim::new(&design, SimBackend::Compiled).unwrap();
    let ctx = "stress";
    assert_state_identical(&ev, &cp, ctx);
    let mut rng = StdRng::seed_from_u64(0x57E55);
    // Half the run before reset deasserts: case dispatch over an X
    // selector, NBA writes of X, dropped unknown-index writes — the
    // X-regime paths of the program interpreter.
    poke_both("clk", Logic::bit(false), &mut ev, &mut cp, ctx);
    for phase in 0..2 {
        if phase == 1 {
            poke_both("rst_n", Logic::bit(false), &mut ev, &mut cp, ctx);
            poke_both("rst_n", Logic::bit(true), &mut ev, &mut cp, ctx);
        }
        for _ in 0..200 {
            poke_both("idx", Logic::from_u128(4, wide(&mut rng)), &mut ev, &mut cp, ctx);
            poke_both("d", Logic::from_u128(8, wide(&mut rng)), &mut ev, &mut cp, ctx);
            poke_both("clk", Logic::bit(true), &mut ev, &mut cp, ctx);
            poke_both("clk", Logic::bit(false), &mut ev, &mut cp, ctx);
        }
    }
}

/// The compiled kernel also agrees with the event engine through the
/// whole UVM environment (scoreboard verdicts, pass rates, mismatch
/// counts) — on pristine and deliberately broken DUTs alike.
#[test]
fn uvm_verdicts_match_across_backends() {
    use uvllm_uvm::{CornerSequence, Environment, RandomSequence, Sequence};
    for d in all().into_iter().take(6) {
        for (label, code) in
            [("golden", d.source.to_string()), ("broken", d.source.replace("+ 4'd1", "+ 4'd2"))]
        {
            let mut summaries = Vec::new();
            for backend in SimBackend::ALL {
                let iface = (d.iface)();
                let seqs: Vec<Box<dyn Sequence>> = vec![
                    Box::new(RandomSequence::new(&iface.inputs, 120, 0xBEEF)),
                    Box::new(CornerSequence::new(&iface.inputs)),
                ];
                let env =
                    Environment::from_source_with(&code, d.name, iface, (d.model)(), seqs, backend)
                        .unwrap_or_else(|e| panic!("{}/{label}: {e}", d.name));
                summaries.push(env.run());
            }
            let (a, b) = (&summaries[0], &summaries[1]);
            assert_eq!(a.cycles, b.cycles, "{}/{label}", d.name);
            assert_eq!(a.pass_rate, b.pass_rate, "{}/{label}", d.name);
            assert_eq!(a.mismatches.len(), b.mismatches.len(), "{}/{label}", d.name);
            assert_eq!(
                a.waveform.to_vcd(d.name),
                b.waveform.to_vcd(d.name),
                "{}/{label}: environment waveforms diverged",
                d.name
            );
        }
    }
}
