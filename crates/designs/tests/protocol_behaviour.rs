//! Protocol-level behavioural tests for individual benchmark designs:
//! directed scenarios that pin down the corner semantics the golden
//! models encode (and that the weak public vectors deliberately avoid).

use uvllm_designs::by_name;
use uvllm_sim::{elaborate, Logic, Simulator};

fn sim_of(name: &str) -> Simulator {
    let d = by_name(name).unwrap();
    let file = uvllm_verilog::parse(d.source).unwrap();
    let design = elaborate(&file, d.name).unwrap();
    Simulator::new(design).unwrap()
}

fn reset(sim: &mut Simulator) {
    sim.poke_by_name("clk", Logic::bit(false)).unwrap();
    sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
    sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
}

fn tick(sim: &mut Simulator) {
    sim.poke_by_name("clk", Logic::bit(true)).unwrap();
    sim.poke_by_name("clk", Logic::bit(false)).unwrap();
}

fn get(sim: &Simulator, name: &str) -> u128 {
    sim.peek_by_name(name)
        .unwrap()
        .to_u128()
        .unwrap_or_else(|| panic!("{name} is X: {}", sim.peek_by_name(name).unwrap()))
}

#[test]
fn fifo_fills_to_exactly_eight_and_refuses_overflow() {
    let mut sim = sim_of("fifo_sync");
    reset(&mut sim);
    sim.poke_by_name("pop", Logic::bit(false)).unwrap();
    sim.poke_by_name("push", Logic::bit(true)).unwrap();
    for i in 0..10 {
        sim.poke_by_name("din", Logic::from_u128(8, 0x40 + i)).unwrap();
        tick(&mut sim);
    }
    // Depth is 8; the two extra pushes were refused.
    assert_eq!(get(&sim, "count"), 8);
    assert_eq!(get(&sim, "full"), 1);
    // Draining returns the first eight values in order.
    sim.poke_by_name("push", Logic::bit(false)).unwrap();
    sim.poke_by_name("pop", Logic::bit(true)).unwrap();
    for i in 0..8 {
        assert_eq!(get(&sim, "dout"), 0x40 + i, "FIFO order at element {i}");
        tick(&mut sim);
    }
    assert_eq!(get(&sim, "empty"), 1);
    // Pop-on-empty is a no-op.
    tick(&mut sim);
    assert_eq!(get(&sim, "count"), 0);
}

#[test]
fn lifo_returns_values_in_reverse_order() {
    let mut sim = sim_of("lifo_stack");
    reset(&mut sim);
    sim.poke_by_name("pop", Logic::bit(false)).unwrap();
    sim.poke_by_name("push", Logic::bit(true)).unwrap();
    for v in [1u128, 2, 3] {
        sim.poke_by_name("din", Logic::from_u128(8, v)).unwrap();
        tick(&mut sim);
    }
    sim.poke_by_name("push", Logic::bit(false)).unwrap();
    sim.poke_by_name("pop", Logic::bit(true)).unwrap();
    for v in [3u128, 2, 1] {
        assert_eq!(get(&sim, "dout"), v);
        tick(&mut sim);
    }
    assert_eq!(get(&sim, "empty"), 1);
    assert_eq!(get(&sim, "dout"), 0, "empty stack reads as zero");
}

#[test]
fn traffic_light_cycles_red_green_yellow_with_correct_durations() {
    let mut sim = sim_of("traffic_light");
    reset(&mut sim);
    let mut observed = Vec::new();
    for _ in 0..22 {
        tick(&mut sim);
        observed.push(get(&sim, "light"));
    }
    // red 4 (3 remaining after the first tick consumed one timer step is
    // absorbed in reset), then green 5, yellow 2, repeating. Verify by
    // run-length encoding.
    let mut rle: Vec<(u128, usize)> = Vec::new();
    for v in observed {
        match rle.last_mut() {
            Some((last, n)) if *last == v => *n += 1,
            _ => rle.push((v, 1)),
        }
    }
    // Drop the (possibly truncated) first and last runs, check the
    // middle runs have the spec durations.
    for (colour, len) in &rle[1..rle.len() - 1] {
        let expect = match colour {
            0 => 4,
            1 => 5,
            2 => 2,
            other => panic!("illegal light encoding {other}"),
        };
        assert_eq!(*len, expect, "colour {colour} duration");
    }
    // The sequence is red → green → yellow → red …
    for pair in rle.windows(2) {
        let next = match pair[0].0 {
            0 => 1,
            1 => 2,
            _ => 0,
        };
        assert_eq!(pair[1].0, next, "transition order");
    }
}

#[test]
fn seq_detector_finds_overlapping_patterns() {
    let mut sim = sim_of("seq_detector_101");
    reset(&mut sim);
    // 1 0 1 0 1 → detections after the 3rd and 5th bits (overlap).
    let bits = [1u128, 0, 1, 0, 1];
    let mut detections = Vec::new();
    for b in bits {
        sim.poke_by_name("din", Logic::from_u128(1, b)).unwrap();
        tick(&mut sim);
        detections.push(get(&sim, "det"));
    }
    assert_eq!(detections, vec![0, 0, 1, 0, 1]);
}

#[test]
fn johnson_counter_walks_the_full_ring() {
    let mut sim = sim_of("johnson_counter_4");
    reset(&mut sim);
    sim.poke_by_name("en", Logic::bit(true)).unwrap();
    let mut seq = Vec::new();
    for _ in 0..8 {
        tick(&mut sim);
        seq.push(get(&sim, "q"));
    }
    assert_eq!(seq, vec![0b0001, 0b0011, 0b0111, 0b1111, 0b1110, 0b1100, 0b1000, 0b0000]);
}

#[test]
fn gray_counter_outputs_differ_by_one_bit() {
    let mut sim = sim_of("gray_counter_4");
    reset(&mut sim);
    sim.poke_by_name("en", Logic::bit(true)).unwrap();
    let mut prev = get(&sim, "gray");
    for _ in 0..16 {
        tick(&mut sim);
        let cur = get(&sim, "gray");
        assert_eq!((prev ^ cur).count_ones(), 1, "gray property {prev:04b}->{cur:04b}");
        prev = cur;
    }
}

#[test]
fn divider_handles_divide_by_zero_contract() {
    let mut sim = sim_of("div_8bit");
    sim.poke_by_name("a", Logic::from_u128(8, 123)).unwrap();
    sim.poke_by_name("b", Logic::from_u128(8, 0)).unwrap();
    assert_eq!(get(&sim, "q"), 0xff);
    assert_eq!(get(&sim, "r"), 123);
    // And ordinary division still works afterwards.
    sim.poke_by_name("b", Logic::from_u128(8, 10)).unwrap();
    assert_eq!(get(&sim, "q"), 12);
    assert_eq!(get(&sim, "r"), 3);
}

#[test]
fn pwm_duty_fraction_matches_setting() {
    let mut sim = sim_of("pwm_8");
    reset(&mut sim);
    sim.poke_by_name("duty", Logic::from_u128(8, 64)).unwrap();
    let mut high = 0;
    for _ in 0..256 {
        tick(&mut sim);
        high += get(&sim, "pwm");
    }
    assert_eq!(high, 64, "duty/256 high fraction over one full period");
}

#[test]
fn updown_counter_wraps_both_directions() {
    let mut sim = sim_of("updown_counter_8");
    reset(&mut sim);
    sim.poke_by_name("en", Logic::bit(true)).unwrap();
    sim.poke_by_name("up", Logic::bit(false)).unwrap();
    sim.poke_by_name("load", Logic::bit(false)).unwrap();
    sim.poke_by_name("d", Logic::from_u128(8, 0)).unwrap();
    tick(&mut sim);
    assert_eq!(get(&sim, "q"), 0xff, "down-wrap from zero");
    sim.poke_by_name("up", Logic::bit(true)).unwrap();
    tick(&mut sim);
    assert_eq!(get(&sim, "q"), 0, "up-wrap back");
}

#[test]
fn regfile_reset_clears_all_registers() {
    let mut sim = sim_of("regfile");
    reset(&mut sim);
    sim.poke_by_name("we", Logic::bit(true)).unwrap();
    sim.poke_by_name("waddr", Logic::from_u128(2, 3)).unwrap();
    sim.poke_by_name("wdata", Logic::from_u128(8, 0xEE)).unwrap();
    tick(&mut sim);
    sim.poke_by_name("raddr", Logic::from_u128(2, 3)).unwrap();
    assert_eq!(get(&sim, "rdata"), 0xEE);
    // Reset mid-operation wipes it.
    sim.poke_by_name("rst_n", Logic::bit(false)).unwrap();
    sim.poke_by_name("rst_n", Logic::bit(true)).unwrap();
    assert_eq!(get(&sim, "rdata"), 0);
}
