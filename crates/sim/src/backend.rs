//! Simulation backend selection: the [`SimBackend`] enum, the
//! kernel-agnostic [`SimControl`] surface and the [`AnySim`] wrapper
//! that lets harnesses hold either kernel behind one concrete type.

use crate::cache::PooledSim;
use crate::compile::CompiledDesign;
use crate::elab::{Design, SignalId};
use crate::kernel::CompiledSim;
use crate::logic::Logic;
use crate::sched::{SimError, Simulator};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Which simulation kernel to run a design on.
///
/// Both kernels expose the same poke/settle/peek/waveform surface and
/// are kept waveform-identical by the differential equivalence suite;
/// the compiled kernel is the fast path for large campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimBackend {
    /// The event-driven delta-cycle interpreter ([`Simulator`]).
    #[default]
    EventDriven,
    /// The compiled levelized kernel ([`CompiledSim`]).
    Compiled,
}

impl SimBackend {
    /// Both backends, event-driven first.
    pub const ALL: [SimBackend; 2] = [SimBackend::EventDriven, SimBackend::Compiled];

    /// Stable label used in CLI flags and campaign JSONL rows.
    pub fn label(&self) -> &'static str {
        match self {
            SimBackend::EventDriven => "event",
            SimBackend::Compiled => "compiled",
        }
    }

    /// Parses a [`SimBackend::label`] (CLI / row decoding).
    pub fn from_label(text: &str) -> Option<SimBackend> {
        match text.trim() {
            "event" | "event-driven" => Some(SimBackend::EventDriven),
            "compiled" | "levelized" => Some(SimBackend::Compiled),
            _ => None,
        }
    }

    /// The process-wide default: `UVLLM_SIM_BACKEND` when set to a valid
    /// label, else the event-driven engine.
    pub fn from_env() -> SimBackend {
        std::env::var("UVLLM_SIM_BACKEND")
            .ok()
            .and_then(|s| SimBackend::from_label(&s))
            .unwrap_or_default()
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The kernel-agnostic simulation surface shared by [`Simulator`],
/// [`CompiledSim`] and [`AnySim`]: everything the UVM environment, the
/// waveform recorder and the campaign harnesses need.
pub trait SimControl {
    /// The elaborated design being simulated.
    fn design(&self) -> &Design;
    /// Current simulation time.
    fn time(&self) -> u64;
    /// Sets the simulation time (monotonically increased by harnesses).
    fn set_time(&mut self, time: u64);
    /// Reads the current value of `id`.
    fn peek(&self, id: SignalId) -> Logic;
    /// Reads word `index` of an array signal (all-X when out of range).
    fn peek_word(&self, id: SignalId, index: u64) -> Logic;
    /// Drives `id` to `value` and propagates events.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational oscillation.
    fn poke(&mut self, id: SignalId, value: Logic) -> Result<(), SimError>;
    /// Propagates pending activity until quiescent.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] on combinational oscillation.
    fn settle(&mut self) -> Result<(), SimError>;

    /// Reads a signal by (hierarchical) name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for unknown names.
    fn peek_by_name(&self, name: &str) -> Result<Logic, SimError> {
        let id = self
            .design()
            .signal_id(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        Ok(self.peek(id))
    }

    /// Pokes a signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] or [`SimError::Unstable`].
    fn poke_by_name(&mut self, name: &str, value: Logic) -> Result<(), SimError> {
        let id = self
            .design()
            .signal_id(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        self.poke(id, value)
    }

    /// Snapshot of all scalar (non-array) signal values in declaration
    /// order, used by the waveform recorder.
    fn scalar_values(&self) -> Vec<(SignalId, Logic)> {
        self.design()
            .signals()
            .iter()
            .enumerate()
            .filter(|(_, info)| info.words == 1)
            .map(|(i, _)| (SignalId(i as u32), self.peek(SignalId(i as u32))))
            .collect()
    }

    /// Convenience: map of signal name to current value for scalars.
    fn named_values(&self) -> HashMap<String, Logic> {
        self.design()
            .signals()
            .iter()
            .enumerate()
            .filter(|(_, info)| info.words == 1)
            .map(|(i, info)| (info.name.clone(), self.peek(SignalId(i as u32))))
            .collect()
    }
}

/// A simulation on either kernel, selected at construction time.
///
/// The compiled variant holds a [`PooledSim`]: instances checked out of
/// the process-wide pool ([`crate::cache::checkout_sim`]) park
/// themselves back on drop for state-reset reuse; instances built
/// directly wrap as [`PooledSim::detached`] and drop normally.
#[derive(Debug, Clone)]
pub enum AnySim {
    /// Event-driven delta-cycle interpreter.
    Event(Simulator),
    /// Compiled levelized kernel (possibly pool-managed).
    Compiled(PooledSim),
}

impl AnySim {
    /// Builds a simulation over a shared `design` on the chosen
    /// backend. The `Arc` is threaded straight through to the kernel —
    /// nothing on this path clones the design, so cached elaborations
    /// ([`crate::cache::elaborate_source_cached`]) are shared as-is.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unstable`] if the design oscillates at time 0.
    pub fn new(design: &Arc<Design>, backend: SimBackend) -> Result<AnySim, SimError> {
        Ok(match backend {
            SimBackend::EventDriven => AnySim::Event(Simulator::from_arc(Arc::clone(design))?),
            SimBackend::Compiled => AnySim::Compiled(PooledSim::detached(
                CompiledSim::from_compiled(Arc::new(CompiledDesign::from_arc(Arc::clone(design))))?,
            )),
        })
    }

    /// Which backend this simulation runs on.
    pub fn backend(&self) -> SimBackend {
        match self {
            AnySim::Event(_) => SimBackend::EventDriven,
            AnySim::Compiled(_) => SimBackend::Compiled,
        }
    }
}

impl SimControl for AnySim {
    fn design(&self) -> &Design {
        match self {
            AnySim::Event(s) => s.design(),
            AnySim::Compiled(s) => s.design(),
        }
    }
    fn time(&self) -> u64 {
        match self {
            AnySim::Event(s) => s.time(),
            AnySim::Compiled(s) => s.time(),
        }
    }
    fn set_time(&mut self, time: u64) {
        match self {
            AnySim::Event(s) => s.set_time(time),
            AnySim::Compiled(s) => s.set_time(time),
        }
    }
    fn peek(&self, id: SignalId) -> Logic {
        match self {
            AnySim::Event(s) => s.peek(id),
            AnySim::Compiled(s) => s.peek(id),
        }
    }
    fn peek_word(&self, id: SignalId, index: u64) -> Logic {
        match self {
            AnySim::Event(s) => s.peek_word(id, index),
            AnySim::Compiled(s) => s.peek_word(id, index),
        }
    }
    fn poke(&mut self, id: SignalId, value: Logic) -> Result<(), SimError> {
        match self {
            AnySim::Event(s) => s.poke(id, value),
            AnySim::Compiled(s) => s.poke(id, value),
        }
    }
    fn settle(&mut self) -> Result<(), SimError> {
        match self {
            AnySim::Event(s) => s.settle(),
            AnySim::Compiled(s) => s.settle(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use uvllm_verilog::parse;

    #[test]
    fn labels_round_trip_and_env_default() {
        for b in SimBackend::ALL {
            assert_eq!(SimBackend::from_label(b.label()), Some(b));
        }
        assert_eq!(SimBackend::from_label("levelized"), Some(SimBackend::Compiled));
        assert_eq!(SimBackend::from_label("nope"), None);
        assert_eq!(SimBackend::default(), SimBackend::EventDriven);
    }

    #[test]
    fn any_sim_runs_on_both_backends() {
        let file = parse(
            "module add(input [7:0] a, input [7:0] b, output [8:0] y);\n\
             assign y = a + b;\nendmodule\n",
        )
        .unwrap();
        let design = Arc::new(elaborate(&file, "add").unwrap());
        for backend in SimBackend::ALL {
            let mut sim = AnySim::new(&design, backend).unwrap();
            assert_eq!(sim.backend(), backend);
            sim.poke_by_name("a", Logic::from_u128(8, 17)).unwrap();
            sim.poke_by_name("b", Logic::from_u128(8, 25)).unwrap();
            assert_eq!(sim.peek_by_name("y").unwrap().to_u128(), Some(42), "{backend}");
            assert!(sim.named_values().contains_key("y"));
        }
    }
}
